"""Quickstart: maintain a query under updates with the IVMEngine facade.

Run:  python examples/quickstart.py

Walks through the core loop of incremental view maintenance:

1. declare relations and a query;
2. let the planner pick the maintenance strategy (Section 6's ladder);
3. feed single-tuple inserts and deletes;
4. enumerate the always-fresh output.
"""

from repro import Database, IVMEngine, parse_query, plan_maintenance


def main() -> None:
    # A tiny order-management schema: orders reference customers.
    db = Database()
    db.create("Orders", ("customer", "order_id"))
    db.create("Customers", ("customer", "segment"))

    # Count orders per customer and segment: a q-hierarchical join, so
    # the planner promises O(1) updates and O(1) enumeration delay.
    query = parse_query(
        "OrdersPerCustomer(customer, segment) = "
        "Orders(customer, order_id) * Customers(customer, segment)"
    )
    plan = plan_maintenance(query)
    print(f"plan: {plan}")

    engine = IVMEngine(query, db)

    # Inserts propagate immediately.
    engine.insert("Customers", "alice", "retail")
    engine.insert("Customers", "bob", "wholesale")
    engine.insert("Orders", "alice", 1)
    engine.insert("Orders", "alice", 2)
    engine.insert("Orders", "bob", 3)

    print("\nafter three orders:")
    for key, payload in engine.enumerate():
        customer, segment = key
        print(f"  {customer:6s} {segment:10s} orders={payload}")

    # Deletes are just negative-payload tuples (Section 2).
    engine.delete("Orders", "alice", 1)
    print("\nafter cancelling alice's first order:")
    for key, payload in engine.enumerate():
        customer, segment = key
        print(f"  {customer:6s} {segment:10s} orders={payload}")

    # The classifier in action: a non-q-hierarchical query gets a
    # different plan with honest complexity guarantees.
    risky = parse_query("Q(A) = R(A, B) * S(B)")
    print(f"\nnon-q-hierarchical example plan: {plan_maintenance(risky)}")


if __name__ == "__main__":
    main()
