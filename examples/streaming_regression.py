"""In-database machine learning over evolving data (Section 6 / F-IVM).

Run:  python examples/streaming_regression.py

The paper's Section 6 points to IVM for analytics: F-IVM maintains
machine-learning aggregates by swapping the payload ring.  Here a view
tree over the *covariance ring* keeps the degree-2 statistics (count,
sums, sums of products) of the join

    Sales(store, price) * Footfall(store, visitors)

fresh under updates.  Those statistics are exactly what least-squares
regression of price on visitors needs, so the model refits in O(1) after
every single-tuple insert or delete — no re-scan of the join.
"""

import random

from repro.data import Database, Update
from repro.query import parse_query
from repro.rings import CovarianceRing, LiftingMap, moment_lifting
from repro.viewtree import ViewTreeEngine


def fit(moments) -> tuple[float, float]:
    """Least-squares price ~ visitors from the maintained moments."""
    n = moments.count
    if n == 0:
        return 0.0, 0.0
    var = moments.quad_of("v", "v") / n - moments.mean_of("v") ** 2
    cov = moments.covariance("v", "p")
    slope = cov / var if var else 0.0
    intercept = moments.mean_of("p") - slope * moments.mean_of("v")
    return slope, intercept


def main() -> None:
    ring = CovarianceRing()
    db = Database(ring=ring)
    # One row per (store, day): daily revenue and daily visitor counts
    # live in different systems and meet only in the join.
    db.create("Sales", ("store", "day", "p"))
    db.create("Footfall", ("store", "day", "v"))

    query = parse_query("Q() = Sales(store, day, p) * Footfall(store, day, v)")
    lifting = LiftingMap(
        ring, {"p": moment_lifting("p"), "v": moment_lifting("v")}
    )
    engine = ViewTreeEngine(query, db, lifting=lifting)

    rng = random.Random(0)
    true_slope, true_intercept = 2.5, 10.0
    day_counter = [0]

    def insert_observation():
        store = rng.randrange(40)
        day = day_counter[0]
        day_counter[0] += 1
        visitors = rng.uniform(10, 100)
        price = true_intercept + true_slope * visitors + rng.gauss(0, 5.0)
        engine.apply(Update("Footfall", (store, day, round(visitors, 2)), ring.one))
        engine.apply(Update("Sales", (store, day, round(price, 2)), ring.one))

    print("streaming observations; model refits incrementally:\n")
    for batch in range(5):
        for _ in range(200):
            insert_observation()
        moments = engine.scalar()
        slope, intercept = fit(moments)
        print(
            f"  after {200 * (batch + 1):4d} obs: "
            f"price ~ {slope:5.2f} * visitors + {intercept:6.2f}  "
            f"(true: {true_slope} * visitors + {true_intercept}; "
            f"n={moments.count:.0f})"
        )

    print(
        "\nEach refit read one maintained ring payload -- the covariance "
        "matrix of the join -- updated in O(1) per tuple by the view tree."
    )


if __name__ == "__main__":
    main()
