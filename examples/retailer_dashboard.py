"""Retailer dashboard: the paper's Fig. 4 scenario as an application.

Run:  python examples/retailer_dashboard.py

A retailer continuously ingests inventory scans and weather readings,
while an analyst's dashboard repeatedly asks for the per-location,
per-day, per-item join of five relations.  The query is q-hierarchical,
so F-IVM-style view trees (the ``eager-fact`` strategy) refresh the
dashboard with constant work per scan and constant delay per row —
exactly the regime in which Fig. 4 shows factorization winning.

The script ingests a stream in batches, refreshes the dashboard after
every few batches, and reports throughput for two strategies so the
difference is visible first-hand.
"""

import time

from repro.data import batches_of
from repro.viewtree import make_strategy
from repro.workloads import (
    retailer_database,
    retailer_query,
    retailer_update_stream,
)


def run(strategy_name: str, updates, batch_size=500, enum_every=4) -> None:
    db = retailer_database(
        locations=25, dates=20, items=50, inventory_rows=1000, seed=0
    )
    query = retailer_query()
    strategy = make_strategy(strategy_name, query, db)

    start = time.perf_counter()
    rows = 0
    refreshes = 0
    for index, batch in enumerate(batches_of(updates, batch_size)):
        for update in batch:
            strategy.apply(update)
        if index % enum_every == enum_every - 1:
            refreshes += 1
            rows = sum(1 for _ in strategy.enumerate())
    elapsed = time.perf_counter() - start
    print(
        f"  {strategy_name:11s}  {len(updates) / elapsed:10,.0f} updates/s   "
        f"{refreshes} dashboard refreshes, last showed {rows} rows"
    )


def main() -> None:
    updates = retailer_update_stream(
        4000, locations=25, dates=20, items=50, seed=1, delete_fraction=0.1
    )
    print("Ingesting 4000 scan updates (10% corrections/deletes):")
    run("eager-fact", updates)   # F-IVM: factorized views
    run("lazy-list", updates)    # recompute the dashboard on demand

    print(
        "\neager-fact keeps every dashboard refresh O(output) and every "
        "scan O(1);\nlazy-list re-joins five relations per refresh."
    )


if __name__ == "__main__":
    main()
