"""A query workload maintained jointly, with automatic cascades (§4.2).

Run:  python examples/multi_query_workload.py

Analytics teams rarely maintain one view — they maintain dozens.
Section 4.2's insight: a non-q-hierarchical query can often be rewritten
over a q-hierarchical colleague and piggyback on its maintenance.  The
``MultiQueryEngine`` automates the search: it plans each query, detects
cascade opportunities, and routes updates once.

Workload: a clickstream session view (q-hierarchical), a three-way
funnel view that cascades over it, and an independent campaign view.
"""

import random

from repro.cascade import MultiQueryEngine
from repro.data import Database, Update
from repro.query import parse_query

SESSIONS = parse_query(
    "Sessions(user, page, dur) = Clicks(user, page) * Visits(page, dur)"
)
FUNNEL = parse_query(
    "Funnel(user, page, dur, cmp) = "
    "Clicks(user, page) * Visits(page, dur) * Attribution(dur, cmp)"
)
CAMPAIGNS = parse_query("Campaigns(cmp, spend) = Budget(cmp, spend)")


def main() -> None:
    db = Database()
    for name in ("Clicks", "Visits", "Attribution", "Budget"):
        db.create(name, ("x", "y"))

    engine = MultiQueryEngine([FUNNEL, SESSIONS, CAMPAIGNS], db)
    print("workload plan:")
    for line in engine.plan_report().splitlines():
        print(f"  {line}")

    rng = random.Random(1)
    for _ in range(2000):
        relation = rng.choice(["Clicks", "Visits", "Attribution", "Budget"])
        engine.apply(
            Update(relation, (rng.randrange(25), rng.randrange(25)), 1)
        )

    print("\nafter 2000 updates:")
    # Condition (ii) of Section 4.2: enumerate the host before the rider.
    sessions = sum(1 for _ in engine.enumerate("Sessions"))
    funnel = sum(1 for _ in engine.enumerate("Funnel"))
    campaigns = sum(1 for _ in engine.enumerate("Campaigns"))
    print(f"  Sessions rows:  {sessions}")
    print(f"  Funnel rows:    {funnel}   (maintained via the Sessions cascade)")
    print(f"  Campaigns rows: {campaigns}")

    print(
        "\nThe funnel query is not q-hierarchical on its own; its "
        "rewriting over Sessions is,\nso both enjoy amortized O(1) "
        "updates with the enumerate-host-first protocol."
    )


if __name__ == "__main__":
    main()
