"""Lineage auditing with provenance polynomials (Section 2's K-relations).

Run:  python examples/lineage_audit.py

The paper's data model follows K-relations over provenance semirings.
Swapping the payload ring for provenance polynomials turns every query
answer into its own audit trail: the payload of an output tuple records
*which input tuples derived it and how*.  Evaluating the polynomial
under a hypothetical assignment answers "would this result survive if
that source row were retracted?" without touching the database.

The scenario: a compliance report joins payments with account ownership;
an auditor asks why a flagged total appeared and which source rows it
hinges on.
"""

from repro.data import Database
from repro.naive import evaluate
from repro.query import parse_query
from repro.rings import PROVENANCE, Polynomial


def main() -> None:
    db = Database(ring=PROVENANCE)
    payments = db.create("Payments", ("account", "payment"))
    owners = db.create("Owners", ("account", "person"))

    rows = {
        "p1": ("acc1", "pay100"),
        "p2": ("acc1", "pay200"),
        "p3": ("acc2", "pay300"),
    }
    for identifier, key in rows.items():
        payments.add(key, Polynomial.variable(identifier))
    ownership = {
        "o1": ("acc1", "alice"),
        "o2": ("acc2", "alice"),
        "o3": ("acc2", "bob"),
    }
    for identifier, key in ownership.items():
        owners.add(key, Polynomial.variable(identifier))

    report = parse_query(
        "Report(person, payment) = "
        "Payments(account, payment) * Owners(account, person)"
    )
    out = evaluate(report, db)

    print("compliance report with lineage:")
    for key, poly in sorted(out.items()):
        person, payment = key
        print(f"  {person:6s} {payment:7s}  <-  {poly}")

    flagged = ("alice", "pay300")
    poly = out.get(flagged)
    print(f"\nwhy is {flagged} in the report?  lineage: {poly}")
    print(f"  source rows involved: {sorted(poly.variables())}")

    # Hypothetical deletion: set a source variable to 0 and re-evaluate.
    alive = {v: 1 for v in poly.variables()}
    for source in sorted(poly.variables()):
        assignment = dict(alive)
        assignment[source] = 0
        survives = poly.evaluate(assignment) > 0
        print(
            f"  retracting {source}: result "
            f"{'survives' if survives else 'DISAPPEARS'}"
        )


if __name__ == "__main__":
    main()
