"""Social-network triangle monitoring with IVM^epsilon (Section 3.3).

Run:  python examples/social_triangles.py

Counts triangles in a follow-graph under a sliding window of the most
recent edges — a classic social-network-health metric.  Real follow
graphs are heavily skewed (celebrity hubs), which is precisely the regime
where the heavy/light partitioning of IVM^epsilon earns its keep: the
worst-case O(sqrt(N)) update time beats the O(N) of plain delta queries
on the hub updates.

The script maintains the count over a Zipf-skewed stream and shows the
partition state (which accounts became "heavy") along the way.
"""

from repro.data import Update
from repro.ivme import TriangleCounter
from repro.workloads import sliding_window_stream, zipf_edges


def main() -> None:
    edges = zipf_edges(nodes=300, edges=2500, skew=1.2, seed=7)
    window = 1200
    counter = TriangleCounter(epsilon=0.5)

    print(f"streaming {len(edges)} follows, window = {window} edges\n")
    checkpoints = {len(edges) // 4, len(edges) // 2, 3 * len(edges) // 4}
    seen = 0
    for update in sliding_window_stream(edges, window):
        counter.apply(update)
        if update.relation == "R" and update.payload > 0:
            seen += 1
            if seen in checkpoints:
                hubs = sorted(counter.R.heavy_values())[:6]
                print(
                    f"  after {seen:5d} follows: triangles={counter.count:7d}  "
                    f"heavy accounts={hubs}{'...' if len(counter.R.heavy_values()) > 6 else ''}"
                )

    print(f"\nfinal window triangle count: {counter.count}")
    print(
        f"heavy/light split of R: {len(counter.R.heavy)} heavy tuples, "
        f"{len(counter.R.light)} light tuples "
        f"(threshold N^0.5 = {counter.R.threshold:.1f})"
    )
    print(
        "\nEvery single follow/unfollow was processed in amortized "
        "O(sqrt(N)) time -- worst-case optimal for triangle counting "
        "under the OuMv conjecture (Theorem 3.4)."
    )


if __name__ == "__main__":
    main()
