"""Flight search with access patterns: tractable CQAPs (Section 4.3).

Run:  python examples/flight_search.py

The paper's motivating example for queries with free access patterns: a
flight-booking interface only answers once the user supplies a date and
an airport.  We model a departures board::

    Departures(flight, gate | origin, date) =
        Schedule(origin, date, flight) * Gates(origin, date, flight, gate)

``origin`` and ``date`` are input variables; ``flight`` and ``gate`` are
outputs.  The fracture is hierarchical, free- and input-dominant, so the
CQAP is *tractable* (Theorem 4.8): O(1) per schedule update and constant
delay per returned row.

The natural-sounding one-stop connection query, by contrast, is NOT a
tractable CQAP — the intermediate ``stop`` variable dominates the input
variables, exactly like the edge-triangle-listing of Example 4.6 — and
the engine refuses it upfront rather than silently degrading.
"""

from repro import Database, parse_query
from repro.cqap import CQAPEngine, fracture, is_tractable_cqap
from repro.data import Update

SCHEDULE = [
    # (origin, date, flight)
    ("ZRH", "2026-07-10", "LX318"),
    ("ZRH", "2026-07-10", "LX14"),
    ("ZRH", "2026-07-11", "LX14"),
    ("FRA", "2026-07-10", "LH400"),
]

GATES = [
    # (origin, date, flight, gate)
    ("ZRH", "2026-07-10", "LX318", "A71"),
    ("ZRH", "2026-07-10", "LX14", "E24"),
    ("ZRH", "2026-07-11", "LX14", "E22"),
    ("FRA", "2026-07-10", "LH400", "Z50"),
]


def main() -> None:
    query = parse_query(
        "Departures(flight, gate | origin, date) = "
        "Schedule(origin, date, flight) * Gates(origin, date, flight, gate)"
    )
    print(f"query: {query}")
    print(f"tractable CQAP: {is_tractable_cqap(query)}")
    for component in fracture(query).components:
        print(f"  fracture component: {component}")

    db = Database()
    db.create("Schedule", ("origin", "date", "flight"))
    db.create("Gates", ("origin", "date", "flight", "gate"))
    engine = CQAPEngine(query, db)
    for row in SCHEDULE:
        engine.apply(Update("Schedule", row, 1))
    for row in GATES:
        engine.apply(Update("Gates", row, 1))

    def board(origin: str, date: str) -> None:
        rows = sorted(
            key for key, _ in engine.answer({"origin": origin, "date": date})
        )
        print(f"  departures {origin} on {date}:")
        if not rows:
            print("    (none)")
        for flight, gate in rows:
            print(f"    {flight:6s} gate {gate}")

    print("\nsearches (each answered with constant delay):")
    board("ZRH", "2026-07-10")
    board("ZRH", "2026-07-11")

    print("\ngate change: LX14 on 2026-07-10 moves from E24 to E26")
    engine.apply(Update("Gates", ("ZRH", "2026-07-10", "LX14", "E24"), -1))
    engine.apply(Update("Gates", ("ZRH", "2026-07-10", "LX14", "E26"), 1))
    board("ZRH", "2026-07-10")

    # The intractable contrast: one-stop connections bind origin,
    # destination, and date but expose the intermediate stop.
    connections = parse_query(
        "Connections(stop | origin, destination, date) = "
        "Flights(origin, stop, date) * Flights(stop, destination, date)"
    )
    print(
        f"\none-stop connection query tractable? "
        f"{is_tractable_cqap(connections)} "
        "(the stop variable dominates the inputs, cf. Example 4.6)"
    )


if __name__ == "__main__":
    main()
