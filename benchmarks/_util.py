"""Shared benchmark reporting: print tables and persist them to disk.

pytest captures stdout, so every bench also writes its paper-shaped table
to ``benchmarks/results/<name>.txt``; EXPERIMENTS.md points there.  Run
``pytest benchmarks/ --benchmark-only -s`` to see tables live.
"""

from __future__ import annotations

import os

from repro.bench import Table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(table: Table, filename: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = table.render()
    print()
    print(text)
    with open(os.path.join(RESULTS_DIR, filename), "w") as handle:
        handle.write(text + "\n")
