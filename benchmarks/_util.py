"""Shared benchmark reporting: print tables and persist them to disk.

pytest captures stdout, so every bench also writes its paper-shaped table
to ``benchmarks/results/<name>.txt``; EXPERIMENTS.md points there.  Run
``pytest benchmarks/ --benchmark-only -s`` to see tables live.

Alongside each text table, :func:`report` emits a machine-readable
``benchmarks/results/BENCH_<name>.json`` following the ``repro.bench/1``
schema (see EXPERIMENTS.md, "JSON output contract"), so benchmark
trajectories can be diffed and plotted across commits.
"""

from __future__ import annotations

import os

from repro.bench import Table, write_bench_json
from repro.obs import MaintenanceStats

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(
    table: Table,
    filename: str,
    stats: MaintenanceStats | None = None,
    extra_tables: list[Table] | None = None,
    meta: dict | None = None,
) -> None:
    """Print the table and persist it under benchmarks/results/.

    Writes both the fixed-width text rendering (``<filename>``) and the
    JSON record (``BENCH_<stem>.json``).  ``stats`` and ``extra_tables``
    ride along into the JSON document when a bench provides them.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = table.render()
    print()
    print(text)
    with open(os.path.join(RESULTS_DIR, filename), "w") as handle:
        handle.write(text + "\n")
    name = os.path.splitext(filename)[0]
    write_bench_json(
        RESULTS_DIR,
        name,
        [table] + list(extra_tables or []),
        stats=stats,
        meta=meta,
    )
