"""Section 4.4 end-to-end: maintaining TPC-H Q3 under its key FDs.

Q3 joins Customer, Orders, Lineitem and is not hierarchical — but its
Sigma-reduct under ``ok -> ck, ok -> odate`` is q-hierarchical, so the
FD-guided view tree (Theorem 4.11) maintains it with O(1) updates.  The
bench streams lineitem inserts and customer-segment changes against the
FD engine and the first-order delta engine; the delta engine's
customer-side updates grow with the customer's order x lineitem fan-out
while the FD engine stays flat.
"""

from __future__ import annotations

import random

from repro.bench import Table, growth_exponent
from repro.constraints import FDEngine
from repro.data import Update, counting
from repro.delta import DeltaQueryEngine
from repro.workloads.tpch import tpch_q3_database, tpch_queries

from _util import report

Q3_ITEM = next(q for q in tpch_queries() if q.name == "Q3")
SCALES = [50, 200, 800]


def _customer_updates(customers, count, seed=1):
    """Segment changes: delete the old tuple, insert the new one."""
    rng = random.Random(seed)
    updates = []
    for _ in range(count):
        ck = rng.randrange(customers)
        old_seg = f"seg{ck % 5}"
        updates.append(Update("C", (ck, old_seg), -1))
        updates.append(Update("C", (ck, old_seg), 1))
    return updates


def bench_tpch_q3_table(benchmark):
    benchmark.pedantic(_q3_table, rounds=1, iterations=1)


def _q3_table():
    table = Table(
        "TPC-H Q3 under FDs -- ops per customer-side update",
        ["customers", "FD view tree (Thm 4.11)", "delta engine"],
    )
    fd_costs, delta_costs = [], []
    for customers in SCALES:
        db = tpch_q3_database(customers=customers, seed=customers)
        probes = _customer_updates(customers, 15, seed=2)

        fd_engine = FDEngine(Q3_ITEM.query, Q3_ITEM.fds, db.copy())
        with counting() as ops:
            for probe in probes:
                fd_engine.apply(probe)
        fd_cost = ops.total() / len(probes)

        delta_engine = DeltaQueryEngine(Q3_ITEM.query, db.copy())
        with counting() as ops:
            for probe in probes:
                delta_engine.update(probe)
        delta_cost = ops.total() / len(probes)

        fd_costs.append(fd_cost)
        delta_costs.append(delta_cost)
        table.add(customers, fd_cost, delta_cost)

    table.add(
        "growth exp",
        round(growth_exponent(SCALES, fd_costs), 2),
        round(growth_exponent(SCALES, delta_costs), 2),
    )
    report(table, "tpch_q3_maintenance.txt")
    assert growth_exponent(SCALES, fd_costs) < 0.2
    assert fd_costs[-1] < delta_costs[-1]


def bench_tpch_q3_lineitem_insert(benchmark):
    """Wall-clock lineitem insert through the FD engine."""
    db = tpch_q3_database(customers=300, seed=5)
    engine = FDEngine(Q3_ITEM.query, Q3_ITEM.fds, db)
    rng = random.Random(6)

    def one_insert():
        engine.apply(
            Update("L", (rng.randrange(1500), rng.randrange(600), rng.randrange(50)), 1)
        )

    benchmark(one_insert)
