"""Ablation: per-tuple propagation vs bulk rebuild for large batches.

The paper's opening motivation — "small changes beget small changes" —
implies a crossover: once a batch is comparable to the database size,
recomputing the views beats propagating tuple by tuple.  This ablation
sweeps the batch size on the Fig. 3 query and locates the crossover of
``apply_batch(..., rebuild_factor=...)``.
"""

from __future__ import annotations

import random

from repro.bench import Table
from repro.data import Database, Update, counting
from repro.query import parse_query
from repro.viewtree import ViewTreeEngine

from _util import report

QUERY = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
BASE_ROWS = 3000
BATCHES = [30, 300, 3000, 30000]


def _engine(seed=0):
    rng = random.Random(seed)
    db = Database()
    r = db.create("R", ("Y", "X"))
    s = db.create("S", ("Y", "Z"))
    for _ in range(BASE_ROWS):
        r.insert(rng.randrange(100), rng.randrange(BASE_ROWS))
        s.insert(rng.randrange(100), rng.randrange(BASE_ROWS))
    return ViewTreeEngine(QUERY, db)


def _batch(size, seed=1):
    rng = random.Random(seed)
    return [
        Update(
            rng.choice(["R", "S"]),
            (rng.randrange(100), rng.randrange(BASE_ROWS)),
            1,
        )
        for _ in range(size)
    ]


def bench_batch_rebuild_ablation(benchmark):
    benchmark.pedantic(_ablation_table, rounds=1, iterations=1)


def _ablation_table():
    table = Table(
        f"Ablation -- batch handling on a base of {2 * BASE_ROWS} tuples: "
        "total ops per batch",
        ["batch size", "propagate per-tuple", "bulk rebuild", "winner"],
    )
    for size in BATCHES:
        batch = _batch(size)

        engine = _engine()
        with counting() as ops:
            engine.apply_batch(list(batch), rebuild_factor=None)
        propagate = ops.total()

        engine2 = _engine()
        with counting() as ops:
            engine2.apply_batch(list(batch), rebuild_factor=0.0)
        rebuild = ops.total()

        assert engine.output_relation() == engine2.output_relation()
        winner = "propagate" if propagate < rebuild else "rebuild"
        table.add(size, propagate, rebuild, winner)
    report(table, "ablation_batch_rebuild.txt")
