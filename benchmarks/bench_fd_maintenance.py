"""Example 4.12 / Fig. 6: FD-guided maintenance of a non-hierarchical
query.

``Q(Z,Y,X,W) = R(X,W) * S(X,Y) * T(Y,Z)`` with ``X -> Y, Y -> Z``: the
FD-guided view tree achieves O(1) single-tuple updates on FD-satisfying
data, while the first-order delta engine pays per matching join tuple.
"""

from __future__ import annotations

import random

from repro.bench import Table, growth_exponent
from repro.constraints import FDEngine, parse_fds
from repro.data import Database, Update, counting
from repro.delta import DeltaQueryEngine
from repro.query import parse_query

from _util import report

QUERY = parse_query("Q(Z, Y, X, W) = R(X, W) * S(X, Y) * T(Y, Z)")
FDS = parse_fds("X -> Y", "Y -> Z")
SIZES = [500, 2000, 8000]


def _database(n, seed=0):
    rng = random.Random(seed)
    db = Database()
    r = db.create("R", ("X", "W"))
    s = db.create("S", ("X", "Y"))
    t = db.create("T", ("Y", "Z"))
    x_domain = max(4, n // 8)
    y_domain = max(2, x_domain // 4)
    for x in range(x_domain):
        s.insert(x, x % y_domain)
    for y in range(y_domain):
        t.insert(y, y % max(2, y_domain // 2))
    for _ in range(n):
        r.insert(rng.randrange(x_domain), rng.randrange(n))
    return db, x_domain


def bench_fd_maintenance_table(benchmark):
    benchmark.pedantic(_fd_table, rounds=1, iterations=1)


def _fd_table():
    table = Table(
        "Example 4.12 -- ops per R-update: FD view tree vs delta queries",
        ["N", "FD engine", "delta engine"],
    )
    fd_costs, delta_costs = [], []
    for n in SIZES:
        rng = random.Random(n)
        db, x_domain = _database(n)
        fd_engine = FDEngine(QUERY, FDS, db.copy())
        with counting() as ops:
            for _ in range(30):
                fd_engine.apply(
                    Update("R", (rng.randrange(x_domain), rng.randrange(n)), 1)
                )
        fd_cost = ops.total() / 30

        delta_engine = DeltaQueryEngine(QUERY, db.copy())
        with counting() as ops:
            for _ in range(10):
                delta_engine.update(
                    Update("R", (rng.randrange(x_domain), rng.randrange(n)), 1)
                )
        delta_cost = ops.total() / 10

        fd_costs.append(fd_cost)
        delta_costs.append(delta_cost)
        table.add(n, fd_cost, delta_cost)

    table.add(
        "growth exp",
        round(growth_exponent(SIZES, fd_costs), 2),
        round(growth_exponent(SIZES, delta_costs), 2),
    )
    report(table, "fd_maintenance.txt")
    # O(1) for the FD engine; the delta engine's cost grows.
    assert growth_exponent(SIZES, fd_costs) < 0.2
    assert fd_costs[-1] < delta_costs[-1]


def bench_fd_engine_update(benchmark):
    db, x_domain = _database(4000)
    engine = FDEngine(QUERY, FDS, db)
    rng = random.Random(9)

    def one_update():
        engine.apply(Update("R", (rng.randrange(x_domain), rng.randrange(4000)), 1))

    benchmark(one_update)
