"""Section 3.1-3.3: single-tuple update cost for the triangle count.

The paper derives three regimes for maintaining
``Q = SUM R(A,B) * S(B,C) * T(C,A)`` under single-tuple updates:

* full recomputation: O(N^(3/2)) per update (worst-case optimal join);
* delta queries (Sec 3.1): O(N) per update;
* IVM^eps (Sec 3.3): amortized O(N^(1/2)) per update, worst-case
  optimal under the OuMv conjecture.

The bench measures elementary operations per update on skewed graphs of
growing size and prints the fitted growth exponents, which should order
as recompute > delta > IVM^eps with IVM^eps near 0.5.
"""

from __future__ import annotations

import random

from repro.bench import Table, growth_exponent
from repro.data import Database, Update, counting
from repro.delta import DeltaQueryEngine
from repro.ivme import TriangleCounter
from repro.naive import evaluate_scalar
from repro.query import parse_query
from repro.workloads import triangle_updates_for_edge, zipf_edges

from _util import report

TRIANGLE = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
SIZES = [400, 1600, 6400]


def _graph_updates(edges_count, seed=0):
    nodes = max(8, edges_count // 8)
    updates = []
    for edge in zipf_edges(nodes, edges_count, skew=1.1, seed=seed):
        updates.extend(triangle_updates_for_edge(edge))
    return updates, nodes


def _probe_updates(nodes, count, seed=1):
    rng = random.Random(seed)
    return [
        Update(
            rng.choice(["R", "S", "T"]),
            (min(int(rng.paretovariate(1.1)) - 1, nodes - 1), rng.randrange(nodes)),
            1,
        )
        for _ in range(count)
    ]


def bench_triangle_scaling_table(benchmark):
    benchmark.pedantic(_scaling_table, rounds=1, iterations=1)


def _scaling_table():
    table = Table(
        "Triangle count: elementary ops per single-tuple update vs N",
        ["N (edges x3)", "recompute", "delta (Sec 3.1)", "IVM^eps (Sec 3.3)"],
    )
    recompute_costs, delta_costs, ivme_costs = [], [], []
    ns = []
    for size in SIZES:
        load, nodes = _graph_updates(size)
        probes = _probe_updates(nodes, 30)

        # Full recompute baseline.
        db = Database()
        for name in ("R", "S", "T"):
            db.create(name, ("X", "Y"))
        for update in load:
            db[update.relation].add(update.key, update.payload)
        with counting() as ops:
            for probe in probes[:5]:  # recompute is expensive; sample
                db[probe.relation].add(probe.key, probe.payload)
                evaluate_scalar(TRIANGLE, db)
        recompute = ops.total() / 5

        # First-order delta queries.
        db = Database()
        for name in ("R", "S", "T"):
            db.create(name, ("X", "Y"))
        for update in load:
            db[update.relation].add(update.key, update.payload)
        delta_engine = DeltaQueryEngine(TRIANGLE, db)
        with counting() as ops:
            for probe in probes:
                delta_engine.update(probe)
        delta = ops.total() / len(probes)

        # IVM^eps.
        counter = TriangleCounter(epsilon=0.5)
        counter.apply_batch(load)
        with counting() as ops:
            for probe in probes:
                counter.apply(probe)
        ivme = ops.total() / len(probes)

        n = len(load)
        ns.append(n)
        recompute_costs.append(recompute)
        delta_costs.append(delta)
        ivme_costs.append(ivme)
        table.add(n, recompute, delta, ivme)

    table.add(
        "growth exp",
        round(growth_exponent(ns, recompute_costs), 2),
        round(growth_exponent(ns, delta_costs), 2),
        round(growth_exponent(ns, ivme_costs), 2),
    )
    report(table, "triangle_update_scaling.txt")

    # Paper shape: IVM^eps grows strictly slower than delta, which grows
    # strictly slower than recomputation.
    assert ivme_costs[-1] < delta_costs[-1] < recompute_costs[-1]
    assert growth_exponent(ns, ivme_costs) < growth_exponent(ns, delta_costs)


def bench_ivme_triangle_update(benchmark):
    """Wall-clock IVM^eps single-tuple update on the largest instance."""
    load, nodes = _graph_updates(SIZES[-1])
    counter = TriangleCounter(epsilon=0.5)
    counter.apply_batch(load)
    probes = iter(_probe_updates(nodes, 100_000, seed=3))

    def one_update():
        counter.apply(next(probes))

    benchmark(one_update)
