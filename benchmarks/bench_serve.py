"""Adaptive group commit vs per-update submission through `repro.serve`.

The serving front-end's claim: micro-batching concurrent writers into
``apply_batch`` group commits (sealed at ``max_batch`` updates or after
``max_delay`` seconds, whichever first) sustains a multiple of the
update rate of committing every submission individually — while readers
run concurrently and observe comparable staleness, because the deadline
trigger bounds how long an update can sit uncommitted.

Each configuration drives the same closed loop: 4 writer tasks split the
update stream, 2 reader tasks run point lookups non-stop, and the
reported rate is end-to-end (first submit to final drain, readers
included).  The per-update row commits with ``max_batch=1`` and no
deadline — the group-commit machinery degenerated to one engine call
per update, which is exactly what a naive serving loop would do.

Acceptance gate (asserted below): the adaptive group-commit
configuration sustains >= 2x the upd/s of per-update submission.

Latency columns are informational (bucketed upper bounds, formatted
``<=…s`` so benchdiff does not gate on scheduler noise); the ``upd/s``
and ``speedup`` columns are the benchdiff-gated metrics.
"""

from __future__ import annotations

import asyncio
import random

from repro.bench import Table
from repro.core.engine import IVMEngine
from repro.data import Database
from repro.query import parse_query
from repro.serve import AsyncIVMServer, run_load_test, value_sampler

from _util import report

QUERY = "Q(Y, X, Z) = R(Y, X) * S(Y, Z)"
UPDATES = 6000
WRITERS = 4
READERS = 2
PREFILL = 200
DOMAIN = 64
HIGH_WATER = 2048
SEED = 23

CONFIGS = (
    ("per-update", 1, 0.0),
    ("group-commit (64, 1ms)", 64, 0.001),
    ("group-commit (256, 2ms)", 256, 0.002),
)


def _fresh_engine(query):
    rng = random.Random(SEED ^ 0xBEEF)
    value = value_sampler(rng, DOMAIN, "uniform")
    db = Database()
    for atom in query.atoms:
        if atom.relation not in db:
            db.create(atom.relation, atom.variables)
            for _ in range(PREFILL):
                db[atom.relation].add(
                    tuple(value() for _ in atom.variables), 1
                )
    return IVMEngine(query, db)


def _serve(query, max_batch, max_delay):
    engine = _fresh_engine(query)
    server = AsyncIVMServer(
        engine,
        max_batch=max_batch,
        max_delay=max_delay,
        high_water=HIGH_WATER,
    )
    stats = server.attach_stats()

    async def run():
        async with server:
            return await run_load_test(
                server,
                query,
                UPDATES,
                writers=WRITERS,
                readers=READERS,
                domain=DOMAIN,
                seed=SEED,
            )

    summary = asyncio.run(run())
    summary["output"] = sorted(engine.enumerate())
    return summary, stats


def bench_serve(benchmark):
    benchmark.pedantic(_serve_table, rounds=1, iterations=1)


def _serve_table():
    query = parse_query(QUERY)
    table = Table(
        "async serving -- group commit vs per-update submission",
        [
            "configuration",
            "upd/s",
            "speedup",
            "commit latency p50",
            "commit latency p99",
            "read staleness p50",
        ],
    )

    results = {}
    gated_stats = None
    for label, max_batch, max_delay in CONFIGS:
        summary, stats = _serve(query, max_batch, max_delay)
        results[label] = summary
        if label == CONFIGS[-1][0]:
            gated_stats = stats

    # Differential gate: every configuration commits the same stream, so
    # the final views must be bit-identical.
    outputs = [summary.pop("output") for summary in results.values()]
    assert all(output == outputs[0] for output in outputs[1:])

    baseline = results[CONFIGS[0][0]]["rate_end_to_end"]
    for label, _, _ in CONFIGS:
        summary = results[label]
        rate = summary["rate_end_to_end"]
        table.add(
            label,
            f"{rate:,.0f}",
            f"{rate / baseline:.2f}x",
            f"<={summary['commit_p50']:.2g}s",
            f"<={summary['commit_p99']:.2g}s",
            f"<={summary['staleness_p50']:.2g}s",
        )

    adaptive = results[CONFIGS[-1][0]]
    report(
        table,
        "serve.txt",
        stats=gated_stats,
        meta={
            "query": QUERY,
            "updates": UPDATES,
            "writers": WRITERS,
            "readers": READERS,
            "prefill": PREFILL,
            "domain": DOMAIN,
            "high_water": HIGH_WATER,
            "seed": SEED,
            "configs": [
                {"label": label, "max_batch": batch, "max_delay": delay}
                for label, batch, delay in CONFIGS
            ],
            "rates": {
                label: {
                    "rate_end_to_end": summary["rate_end_to_end"],
                    "rate_maintenance": summary["rate_maintenance"],
                    "commits": summary["commits"],
                    "reads": summary["reads"],
                    "backpressure_waits": summary["backpressure_waits"],
                }
                for label, summary in results.items()
            },
        },
    )

    # Acceptance gate: adaptive group commit sustains >= 2x per-update
    # submission under the same concurrent reader load.
    speedup = adaptive["rate_end_to_end"] / baseline
    assert speedup >= 2.0, {
        label: summary["rate_end_to_end"]
        for label, summary in results.items()
    }
