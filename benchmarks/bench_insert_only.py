"""Section 4.6: insert-only vs insert-delete for acyclic joins.

The path join ``R(A,B) * S(B,C) * T(C,D)`` is alpha-acyclic but not
q-hierarchical: under insert-delete streams its maintenance is
conditionally Omega(N^(1/2)) per update, but under insert-only streams
the monotone-activation engine achieves amortized O(1) inserts with
constant-delay enumeration.  The bench shows the amortized insert cost
staying flat with N while the eager view-tree engine on the same query
(which also supports deletes) pays growing per-update costs.
"""

from __future__ import annotations

import random

from repro.bench import Table, growth_exponent
from repro.data import Database, Update, counting
from repro.insertonly import InsertOnlyEngine
from repro.query import parse_query, search_order
from repro.viewtree import ViewTreeEngine

from _util import report

PATH3 = parse_query("Qp(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)")
SIZES = [1000, 4000, 16000]


DOMAIN = 30  # fixed join-key domain: per-key degrees grow with N


def _inserts(n, seed=0):
    """Distinct endpoint ids, small join-key domain.

    R(A,B) and T(C,D) get fresh endpoint values (i), so R's per-B groups
    grow linearly with N — which is what a delete-capable engine must
    traverse on S-updates, while the monotone engine touches each tuple
    O(1) times in total.
    """
    rng = random.Random(seed)
    result = []
    for i in range(n):
        roll = rng.random()
        if roll < 1 / 3:
            result.append(("R", (i, rng.randrange(DOMAIN))))
        elif roll < 2 / 3:
            result.append(("S", (rng.randrange(DOMAIN), rng.randrange(DOMAIN))))
        else:
            result.append(("T", (rng.randrange(DOMAIN), i)))
    return result


def bench_insert_only_table(benchmark):
    benchmark.pedantic(_insert_only_table, rounds=1, iterations=1)


def _insert_only_table():
    table = Table(
        "Section 4.6 -- path join: amortized ops per insert vs N",
        ["N inserts", "insert-only engine", "insert-delete view tree"],
    )
    mono_costs, tree_costs = [], []
    for n in SIZES:
        inserts = _inserts(n)
        engine = InsertOnlyEngine(PATH3)
        with counting() as ops:
            for name, key in inserts:
                engine.insert(name, key)
        mono = ops.total() / n

        db = Database()
        for name in ("R", "S", "T"):
            db.create(name, ("X", "Y"))
        tree = ViewTreeEngine(
            PATH3, db, search_order(PATH3, require_free_top=True)
        )
        with counting() as ops:
            for name, key in inserts[: n // 4]:  # view tree is costly
                tree.apply(Update(name, key, 1))
        tree_cost = ops.total() / (n // 4)

        mono_costs.append(mono)
        tree_costs.append(tree_cost)
        table.add(n, mono, tree_cost)

    table.add(
        "growth exp",
        round(growth_exponent(SIZES, mono_costs), 2),
        round(growth_exponent(SIZES, tree_costs), 2),
    )
    report(table, "insert_only.txt")
    # Amortized O(1) for the monotone engine; the general engine grows.
    assert growth_exponent(SIZES, mono_costs) < 0.2
    assert growth_exponent(SIZES, tree_costs) > 0.3


def bench_insert_only_insert(benchmark):
    engine = InsertOnlyEngine(PATH3)
    inserts = iter(_inserts(2_000_000, seed=2))

    def one_insert():
        name, key = next(inserts)
        engine.insert(name, key)

    benchmark(one_insert)
