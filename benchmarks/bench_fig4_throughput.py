"""Fig. 4: throughput of the four IVM strategies vs enumeration interval.

The paper runs a q-hierarchical five-relation Retailer join under update
batches of 1000 single-tuple inserts, issuing a full-enumeration request
after every INTVAL batches, and reports throughput (updates/second).

Paper shape to reproduce: the factorized approaches (eager-fact,
lazy-fact) dominate; eager-list trails them; lazy-list collapses once
enumerations are frequent (the paper's lazy-list did not even finish in
50 hours at INTVAL=10).  At very sparse enumeration the representation
stops mattering and the gap narrows.

Scaled down for pure Python: 6000 updates in batches of 200.
"""

from __future__ import annotations

import pytest

from repro.bench import Table, run_throughput
from repro.viewtree import STRATEGIES, make_strategy
from repro.workloads import (
    retailer_database,
    retailer_query,
    retailer_update_stream,
)

from _util import report

QUERY = retailer_query()
UPDATES = 6000
BATCH = 200
INTERVALS = [1, 4, 16, 0]  # 0 = never enumerate
#: Per-run wall-clock cutoff mirroring the paper's 50-hour budget.
TIME_BUDGET = 20.0


def _fresh_setup():
    db = retailer_database(
        locations=30, dates=25, items=60, inventory_rows=1500, seed=0
    )
    stream = retailer_update_stream(
        UPDATES, locations=30, dates=25, items=60, seed=1
    )
    return db, stream


def bench_fig4_throughput_table(benchmark):
    benchmark.pedantic(_throughput_table, rounds=1, iterations=1)


def _throughput_table():
    table = Table(
        "Fig. 4 -- throughput (updates/s) vs enumeration interval INTVAL",
        ["strategy"] + [f"INTVAL={i}" if i else "no enum" for i in INTERVALS],
    )
    results = {}
    for name in ("eager-fact", "lazy-fact", "eager-list", "lazy-list"):
        row = [name]
        for interval in INTERVALS:
            db, stream = _fresh_setup()
            strategy = make_strategy(name, QUERY, db)
            outcome = run_throughput(
                name,
                strategy.apply,
                strategy.enumerate,
                stream,
                BATCH,
                interval,
                time_budget=TIME_BUDGET,
            )
            throughput = outcome.throughput
            if outcome.updates < len(stream):
                row.append(f"{throughput:,.0f}*")  # hit the time budget
            else:
                row.append(f"{throughput:,.0f}")
            results[(name, interval)] = outcome
        table.add(*row)
    report(table, "fig4_throughput.txt")

    # Paper-shape check: with frequent enumeration the factorized eager
    # strategy beats the list-based ones.
    frequent = INTERVALS[0]
    fact = results[("eager-fact", frequent)]
    lazy_list = results[("lazy-list", frequent)]
    assert fact.throughput > lazy_list.throughput


@pytest.mark.parametrize("name", sorted(STRATEGIES))
def bench_fig4_update_cost(benchmark, name):
    """Per-update cost of each strategy (no enumeration pressure)."""
    db, stream = _fresh_setup()
    strategy = make_strategy(name, QUERY, db)
    iterator = iter(stream * 50)

    def one_update():
        strategy.apply(next(iterator))

    benchmark(one_update)
