"""Sliding-window triangle counting: sustained insert-delete throughput.

The motivating streaming workload for Section 3.3's insert-*delete*
machinery: maintain the triangle count over the most recent W edges of a
skewed stream.  Every step is one insert plus (once the window is full)
one delete, so techniques restricted to insert-only streams do not apply;
the comparison is IVM^eps against first-order delta queries.
"""

from __future__ import annotations

from repro.bench import Table, time_call
from repro.data import Database
from repro.delta import DeltaQueryEngine
from repro.ivme import TriangleCounter
from repro.query import parse_query
from repro.workloads import sliding_window_stream, zipf_edges

from _util import report

TRIANGLE = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
EDGES = 1500
WINDOW = 600


def _stream():
    edges = zipf_edges(nodes=250, edges=EDGES, skew=1.2, seed=4)
    return list(sliding_window_stream(edges, WINDOW))


def bench_sliding_window_table(benchmark):
    benchmark.pedantic(_window_table, rounds=1, iterations=1)


def _window_table():
    stream = _stream()

    counter = TriangleCounter(epsilon=0.5)
    ivme_seconds, _ = time_call(lambda: counter.apply_batch(stream))

    db = Database()
    for name in ("R", "S", "T"):
        db.create(name, ("X", "Y"))
    delta_engine = DeltaQueryEngine(TRIANGLE, db)
    delta_seconds, _ = time_call(
        lambda: [delta_engine.update(u) for u in stream]
    )
    assert counter.count == delta_engine.scalar()

    table = Table(
        f"Sliding window (W = {WINDOW}) triangle count over a skewed "
        f"stream of {EDGES} edges",
        ["engine", "updates/s", "final count"],
    )
    table.add("IVM^eps (Sec 3.3)", len(stream) / ivme_seconds, counter.count)
    table.add(
        "delta queries (Sec 3.1)",
        len(stream) / delta_seconds,
        delta_engine.scalar(),
    )
    report(table, "sliding_window_triangles.txt")
    assert ivme_seconds < delta_seconds


def bench_window_step(benchmark):
    """One insert+delete window step on a warm IVM^eps counter."""
    stream = _stream()
    counter = TriangleCounter(epsilon=0.5)
    counter.apply_batch(stream)
    replay = iter(stream * 50)

    def one_step():
        counter.apply(next(replay))

    benchmark(one_step)
