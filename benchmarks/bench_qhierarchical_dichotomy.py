"""Theorem 4.1's dichotomy, measured.

* q-hierarchical query (the Fig. 3 query): single-tuple update cost and
  per-tuple enumeration delay stay flat as the database grows.
* the simplest non-q-hierarchical query Q(A) = SUM_B R(A,B) * S(B),
  maintained eagerly with a free-top view tree: worst-case update cost
  grows linearly with N (heavy B-value updates) — the lower-bound side
  says no algorithm can push both update and delay below N^(1/2).
"""

from __future__ import annotations

import random

from repro.bench import Table, growth_exponent
from repro.data import Database, Update, counting
from repro.query import parse_query, search_order
from repro.viewtree import ViewTreeEngine

from _util import report

QH = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
NON_QH = parse_query("Q(A) = R(A, B) * S(B)")
SIZES = [500, 2000, 8000]


def bench_dichotomy_table(benchmark):
    benchmark.pedantic(_dichotomy_table, rounds=1, iterations=1)


def _dichotomy_table():
    table = Table(
        "Theorem 4.1 -- measured update cost and delay vs N",
        [
            "N",
            "q-hier ops/update",
            "q-hier ops/tuple",
            "non-q-hier ops/update (heavy B)",
        ],
    )
    qh_updates, qh_delays, non_updates = [], [], []
    for n in SIZES:
        rng = random.Random(n)
        # --- q-hierarchical engine
        db = Database()
        r = db.create("R", ("Y", "X"))
        s = db.create("S", ("Y", "Z"))
        for _ in range(n):
            r.insert(rng.randrange(n // 4), rng.randrange(n))
            s.insert(rng.randrange(n // 4), rng.randrange(n))
        engine = ViewTreeEngine(QH, db)
        with counting() as ops:
            for _ in range(50):
                engine.apply(
                    Update("R", (rng.randrange(n // 4), rng.randrange(n)), 1)
                )
        per_update = ops.total() / 50
        out_size = sum(1 for _ in engine.enumerate())
        with counting() as ops:
            for _ in engine.enumerate():
                pass
        per_tuple = ops.total() / max(out_size, 1)

        # --- non-q-hierarchical engine, heavy B updates
        db2 = Database()
        r2 = db2.create("R", ("A", "B"))
        s2 = db2.create("S", ("B",))
        for a in range(n):
            r2.insert(a, 0)  # B = 0 heavy
        s2.insert(0)
        engine2 = ViewTreeEngine(NON_QH, db2, search_order(NON_QH, require_free_top=True))
        with counting() as ops:
            engine2.apply(Update("S", (0,), 1))
        non_update = ops.total()

        qh_updates.append(per_update)
        qh_delays.append(per_tuple)
        non_updates.append(non_update)
        table.add(n, per_update, per_tuple, non_update)

    table.add(
        "growth exp",
        round(growth_exponent(SIZES, qh_updates), 2),
        round(growth_exponent(SIZES, qh_delays), 2),
        round(growth_exponent(SIZES, non_updates), 2),
    )
    report(table, "qhierarchical_dichotomy.txt")

    # Flat for q-hierarchical (exponent ~0), linear for the other side.
    assert growth_exponent(SIZES, qh_updates) < 0.2
    assert growth_exponent(SIZES, non_updates) > 0.8


def bench_qhierarchical_update(benchmark):
    rng = random.Random(5)
    db = Database()
    r = db.create("R", ("Y", "X"))
    s = db.create("S", ("Y", "Z"))
    for _ in range(5000):
        r.insert(rng.randrange(800), rng.randrange(5000))
        s.insert(rng.randrange(800), rng.randrange(5000))
    engine = ViewTreeEngine(QH, db)

    def one_update():
        engine.apply(Update("R", (rng.randrange(800), rng.randrange(5000)), 1))

    benchmark(one_update)
