"""Maintained reads via output change streams vs per-epoch full drains.

The tentpole claim of the change-stream model: a reader that keeps a
:class:`~repro.viewtree.changes.MaterializedView` pays O(|delta|) per
epoch — ``refresh()`` pulls the composed output delta since its last
epoch and patches its dict in place — while a reader that re-drains
``enumerate_snapshot()`` pays O(|output|) for the same freshness, even
when the commit touched a handful of tuples.

Both read styles serve the identical loop: after every publish, answer
``READS`` point reads against up-to-date state.  The maintained reader
refreshes (a patch on the first read of the epoch, an O(1) epoch check
after) and probes its dict; the drain reader rebuilds its dict from
``enumerate_snapshot()`` once per epoch and probes that.  Per-read cost
is the whole block over ``READS``, so each style's per-epoch freshness
work is amortized exactly once.

Construction keeps the arithmetic honest: ``S`` holds every join key
and ``R`` only ever gains distinct ``(X, Y)`` pairs, so |output| == |R|
exactly and each batch of ``BATCH`` inserts is exactly ``BATCH`` output
delta tuples — the delta/state ratio shrinks from ~0.5% to ~0.05% as
the state grows 10x under a fixed write batch.

Differential gate (asserted below): after the final epoch the
delta-maintained dict is bit-identical to a fresh full drain, with zero
full-refresh fallbacks (every epoch stayed under the ratio threshold).

Acceptance gates (asserted below):

* maintained reads are >= 5x cheaper than drain-backed reads at every
  size (delta/state <= 1% throughout);
* the maintained per-read cost stays flat — <= 1.3x — as the state
  grows 10x, because patching scales with the delta while the drain
  reader's per-read cost grows ~10x with the state.
"""

from __future__ import annotations

import time

from repro.bench import Table
from repro.data import Database, Update
from repro.query import parse_query
from repro.viewtree import ViewTreeEngine

from _util import report

QUERY = "Q(X, Y) = R(X, Y) * S(X)"
DOMAIN = 64
BATCH = 64
READS = 8000
EPOCHS = 20
WARMUP_EPOCHS = 4
STATE_SIZES = (12000, 40000, 120000)


def _fresh_engine(query, prefill):
    db = Database()
    db.create("R", ("X", "Y"))
    db.create("S", ("X",))
    for x in range(DOMAIN):
        db["S"].add((x,), 1)
    # Distinct (X, Y) pairs: |Q| == |R| == prefill, exactly.
    for i in range(prefill):
        db["R"].add((i % DOMAIN, i // DOMAIN), 1)
    return ViewTreeEngine(query, db)


def _median(samples):
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def _drive(query, prefill):
    engine = _fresh_engine(query, prefill)
    stats = engine.attach_stats()
    view = engine.subscribe()
    next_y = prefill // DOMAIN + 1
    patch_times: list[float] = []
    drain_times: list[float] = []
    maintained_reads: list[float] = []
    drain_reads: list[float] = []
    drained: dict = {}
    for epoch in range(EPOCHS):
        base = next_y
        batch = [
            Update("R", (i % DOMAIN, base + i // DOMAIN), 1)
            for i in range(BATCH)
        ]
        next_y = base + (BATCH - 1) // DOMAIN + 1
        engine.apply_batch(batch)
        engine.publish_epoch()
        # Readers probe a hot set of freshly-changed keys — the natural
        # pattern for a subscriber reacting to an epoch's changes (and a
        # probe working set whose cache footprint is size-independent,
        # so the flatness gate measures the patch path, not the memory
        # hierarchy).
        probe_keys = [update.key for update in batch[:16]]
        n_keys = len(probe_keys)

        start = time.perf_counter()
        view.refresh()  # the one O(delta) patch this epoch
        patch = time.perf_counter() - start
        for i in range(READS - 1):
            view.refresh()  # O(1): already at the published epoch
            view.get(probe_keys[i % n_keys])
        maintained = time.perf_counter() - start

        start = time.perf_counter()
        drained = dict(engine.enumerate_snapshot())  # O(n) re-drain
        drain = time.perf_counter() - start
        for i in range(READS - 1):
            drained.get(probe_keys[i % n_keys])
        drain_backed = time.perf_counter() - start

        # The first publishes pay one-off costs (guard index builds,
        # shape-cache warmup); keep the steady-state samples.
        if epoch >= WARMUP_EPOCHS:
            patch_times.append(patch)
            drain_times.append(drain)
            maintained_reads.append(maintained / READS)
            drain_reads.append(drain_backed / READS)

    # Differential gate: the delta-maintained dict must be bit-identical
    # to a fresh drain, and it must have got there purely via patches.
    state = dict(view.items())
    assert state == drained, "maintained view diverged from full drain"
    assert view.full_refreshes == 0, "ratio threshold tripped; bench invalid"
    assert len(drained) == prefill + EPOCHS * BATCH

    maintained_read = _median(maintained_reads)
    drain_read = _median(drain_reads)
    return {
        "entries": len(drained),
        "delta_tuples": BATCH,
        "delta_ratio": BATCH / len(drained),
        "patch_median": _median(patch_times),
        "drain_median": _median(drain_times),
        "maintained_read": maintained_read,
        "drain_read": drain_read,
        "speedup": drain_read / maintained_read,
    }, stats


def bench_changes(benchmark):
    benchmark.pedantic(_changes_table, rounds=1, iterations=1)


def _changes_table():
    query = parse_query(QUERY)
    table = Table(
        "output change streams -- maintained reads vs full drains",
        [
            "output entries",
            "delta/state",
            "patched read time (us)",
            "drained read time (us)",
            "read speedup",
            "patch latency",
            "drain latency",
        ],
    )

    results = {}
    gated_stats = None
    for prefill in STATE_SIZES:
        summary, stats = _drive(query, prefill)
        results[prefill] = summary
        gated_stats = stats
        # The ratio and raw per-epoch latency cells are informational
        # (the "<=" prefix keeps them out of benchdiff's numeric
        # comparison, and "latency" column names keep them out of the
        # row label); the per-read costs and the speedup are the gated
        # trajectory.
        table.add(
            f"{summary['entries']:,}",
            f"<={summary['delta_ratio']:.2%}",
            f"{summary['maintained_read'] * 1e6:.3f}",
            f"{summary['drain_read'] * 1e6:.3f}",
            f"{summary['speedup']:.1f}x",
            f"<={summary['patch_median'] * 1e6:.0f}us",
            f"<={summary['drain_median'] * 1e3:.1f}ms",
        )

    report(
        table,
        "changes.txt",
        stats=gated_stats,
        meta={
            "query": QUERY,
            "domain": DOMAIN,
            "batch": BATCH,
            "reads": READS,
            "epochs": EPOCHS,
            "warmup_epochs": WARMUP_EPOCHS,
            "state_sizes": list(STATE_SIZES),
            "results": {
                str(prefill): summary for prefill, summary in results.items()
            },
        },
    )

    # Acceptance gate 1: at delta/state <= 1%, maintained reads beat
    # drain-backed reads by >= 5x (every configured size qualifies).
    for prefill, summary in results.items():
        assert summary["delta_ratio"] <= 0.01, summary
        assert summary["speedup"] >= 5.0, (prefill, summary)

    # Acceptance gate 2: maintained reads scale with the delta, not the
    # state — per-read cost stays within 1.3x across 10x state growth,
    # while the drain reader's per-read cost grows with the state.
    small = results[STATE_SIZES[0]]["maintained_read"]
    large = results[STATE_SIZES[-1]]["maintained_read"]
    assert large <= 1.3 * small, {
        "read_small": small,
        "read_large": large,
        "ratio": large / small,
    }
