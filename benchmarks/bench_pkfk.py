"""Example 4.13: PK-FK joins under valid update batches.

The JOB-style star join Title x Movie_Companies x Company_Name is not
q-hierarchical, yet valid batches are processed in amortized O(1) per
single-tuple update: the expensive dimension updates (touching all
referencing facts) are paid for by the cheap fact updates that reference
them.  The bench measures the amortized per-update cost across growing
batch sizes — it should stay flat — and separates the fact/dimension
cost profile.
"""

from __future__ import annotations

from repro.bench import Table, growth_exponent
from repro.data import counting
from repro.workloads import job_star_counter, valid_insert_batch

from _util import report

BATCHES = [500, 2000, 8000]


def bench_pkfk_amortized_table(benchmark):
    benchmark.pedantic(_amortized_table, rounds=1, iterations=1)


def _amortized_table():
    table = Table(
        "Example 4.13 -- JOB star join: amortized ops per update "
        "(valid out-of-order batches)",
        ["batch size", "ops/update", "final count", "consistent"],
    )
    costs = []
    for size in BATCHES:
        movies = max(4, size // 20)
        companies = max(4, size // 25)
        facts = size - movies - companies
        batch = valid_insert_batch(movies, companies, facts, seed=size)
        counter = job_star_counter()
        with counting() as ops:
            counter.apply_batch(batch)
        per_update = ops.total() / len(batch)
        costs.append(per_update)
        table.add(len(batch), per_update, counter.count, counter.is_consistent())

    table.add("growth exp", round(growth_exponent(BATCHES, costs), 2), "", "")
    report(table, "pkfk_amortized.txt")
    assert growth_exponent(BATCHES, costs) < 0.25  # amortized O(1)


def bench_pkfk_batch(benchmark):
    batch = valid_insert_batch(100, 80, 1800, seed=1)

    def run_batch():
        counter = job_star_counter()
        counter.apply_batch(batch)
        return counter.count

    benchmark(run_batch)
