"""Example 4.14 / Section 4.5: static relations unlock O(1) updates.

``Q(A,B,C) = SUM_D R^d(A,D) * S^d(A,B) * T^s(B,C)`` is not
q-hierarchical, so in the all-dynamic setting no engine can give O(1)
updates and delay (Theorem 4.1).  Declaring T static makes the mixed
view tree of Example 4.14 constant-time per dynamic update.  The bench
grows the static relation and shows the dynamic update cost staying
flat, against the first-order delta engine whose S-updates grow.
"""

from __future__ import annotations

import random

from repro.bench import Table, growth_exponent
from repro.data import Database, Update, counting
from repro.delta import DeltaQueryEngine
from repro.query import parse_query
from repro.staticdyn import StaticDynamicEngine

from _util import report

QUERY = parse_query("Q(A,B,C) = R(A,D) * S(A,B) * T@s(B,C)")
ALL_DYNAMIC = parse_query("Q(A,B,C) = R(A,D) * S(A,B) * T(B,C)")
SIZES = [500, 2000, 8000]


def _database(t_rows, seed=0):
    rng = random.Random(seed)
    db = Database()
    r = db.create("R", ("A", "D"))
    s = db.create("S", ("A", "B"))
    t = db.create("T", ("B", "C"))
    # Fixed B domain: T's per-B groups grow linearly with |T|, which is
    # what makes naive S-deltas expensive.
    b_domain = 20
    for i in range(t_rows):
        t.insert(rng.randrange(b_domain), i)
    for i in range(200):
        r.insert(i % 40, i)
        s.insert(i % 40, rng.randrange(b_domain))
    return db, b_domain


def bench_static_dynamic_table(benchmark):
    benchmark.pedantic(_static_dynamic_table, rounds=1, iterations=1)


def _static_dynamic_table():
    table = Table(
        "Example 4.14 -- ops per dynamic update vs static |T|",
        ["|T|", "static/dynamic tree", "all-dynamic delta engine"],
    )
    tree_costs, delta_costs = [], []
    for t_rows in SIZES:
        rng = random.Random(t_rows)
        db, b_domain = _database(t_rows)
        engine = StaticDynamicEngine(QUERY, db)
        with counting() as ops:
            for i in range(30):
                engine.apply(Update("S", (i % 10, rng.randrange(b_domain)), 1))
                engine.apply(Update("R", (i % 10, i), 1))
        tree_cost = ops.total() / 60

        db2, b_domain2 = _database(t_rows)
        delta_engine = DeltaQueryEngine(ALL_DYNAMIC, db2)
        with counting() as ops:
            for i in range(10):
                delta_engine.update(Update("S", (i % 10, rng.randrange(b_domain2)), 1))
        delta_cost = ops.total() / 10

        tree_costs.append(tree_cost)
        delta_costs.append(delta_cost)
        table.add(t_rows, tree_cost, delta_cost)

    table.add(
        "growth exp",
        round(growth_exponent(SIZES, tree_costs), 2),
        round(growth_exponent(SIZES, delta_costs), 2),
    )
    report(table, "static_dynamic.txt")
    assert growth_exponent(SIZES, tree_costs) < 0.25
    assert growth_exponent(SIZES, delta_costs) > 0.5


def bench_static_dynamic_update(benchmark):
    db, b_domain = _database(5000)
    engine = StaticDynamicEngine(QUERY, db)
    rng = random.Random(4)

    def one_update():
        engine.apply(Update("S", (rng.randrange(50), rng.randrange(b_domain)), 1))

    benchmark(one_update)
