"""Ablation: hysteresis in the heavy/light partition (Section 3.3).

The paper's rebalancing argument requires that a value's migrations be
paid for by the updates that moved its degree.  With a single threshold
(no hysteresis), an adversarial insert/delete oscillation around the
boundary migrates the value's whole group on *every* step; the factor-2
hysteresis band restores amortization.  The ablation measures exactly
that adversary.
"""

from __future__ import annotations

from repro.bench import Table
from repro.data import counting
from repro.ivme import PartitionedRelation

from _util import report

GROUP = 200  # tuples sharing the oscillating partition value
STEPS = 300


def _oscillate(hysteresis: float) -> tuple[float, int]:
    """Run the adversary; return (ops/step, migrations)."""
    part = PartitionedRelation(
        "R", ("A", "B"), "A", threshold=GROUP, hysteresis=hysteresis
    )
    migrations = [0]
    part.add_listener(lambda *_args: migrations.__setitem__(0, migrations[0] + 1))
    # Fill the group to just below the threshold.
    for b in range(GROUP - 1):
        part.add((0, b), 1)
    with counting() as ops:
        for step in range(STEPS):
            # One insert crosses the threshold, one delete crosses back.
            part.add((0, GROUP + step), 1)
            part.add((0, GROUP + step), -1)
    return ops.total() / STEPS, migrations[0]


def bench_hysteresis_ablation(benchmark):
    benchmark.pedantic(_hysteresis_table, rounds=1, iterations=1)


def _hysteresis_table():
    table = Table(
        "Ablation -- partition hysteresis under threshold oscillation "
        f"(group of {GROUP}, {STEPS} insert/delete pairs)",
        ["hysteresis", "ops/step", "migrations"],
    )
    results = {}
    for hysteresis in (1.001, 2.0, 4.0):
        per_step, migrations = _oscillate(hysteresis)
        results[hysteresis] = (per_step, migrations)
        table.add(hysteresis, per_step, migrations)
    report(table, "ablation_hysteresis.txt")

    # Without a band the adversary forces a migration per oscillation;
    # with the paper-style band it forces at most the initial promotion.
    assert results[1.001][1] >= STEPS
    assert results[2.0][1] <= 2
    assert results[2.0][0] * 10 < results[1.001][0]
