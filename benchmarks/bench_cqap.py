"""Section 4.3 / Example 4.6: tractable CQAP access requests.

The triangle-detection CQAP ("do these three nodes form a triangle?") is
maintained with O(1) updates; an access request costs O(1) regardless of
the graph size.  The bench grows the graph and compares the CQAP
engine's access cost with re-running the Boolean triangle query filtered
to the probe (the no-IVM alternative).
"""

from __future__ import annotations

import random

from repro.bench import Table, growth_exponent
from repro.cqap import CQAPEngine
from repro.data import Database, Update, counting
from repro.query import parse_query
from repro.workloads import random_edges

from _util import report

QUERY = parse_query("Q(. | A, B, C) = E(A,B) * E(B,C) * E(C,A)")
SIZES = [1000, 4000, 16000]


def bench_cqap_access_table(benchmark):
    benchmark.pedantic(_access_table, rounds=1, iterations=1)


def _access_table():
    table = Table(
        "Example 4.6 -- triangle-check CQAP: ops per access request vs |E|",
        ["|E|", "ops/update", "ops/access"],
    )
    update_costs, access_costs = [], []
    for size in SIZES:
        nodes = max(10, size // 10)
        edges = random_edges(nodes, size, seed=size)
        db = Database()
        db.create("E", ("X", "Y"))
        engine = CQAPEngine(QUERY, db)
        for edge in edges[:-50]:
            engine.apply(Update("E", edge, 1))
        with counting() as ops:
            for edge in edges[-50:]:
                engine.apply(Update("E", edge, 1))
        per_update = ops.total() / 50

        rng = random.Random(size)
        probes = [
            {"A": rng.randrange(nodes), "B": rng.randrange(nodes), "C": rng.randrange(nodes)}
            for _ in range(100)
        ]
        with counting() as ops:
            for probe in probes:
                engine.answer_boolean(probe)
        per_access = ops.total() / 100

        update_costs.append(per_update)
        access_costs.append(per_access)
        table.add(size, per_update, per_access)

    table.add(
        "growth exp",
        round(growth_exponent(SIZES, update_costs), 2),
        round(growth_exponent(SIZES, access_costs), 2),
    )
    report(table, "cqap_access.txt")
    assert growth_exponent(SIZES, update_costs) < 0.2
    assert growth_exponent(SIZES, access_costs) < 0.2


def bench_cqap_access(benchmark):
    edges = random_edges(400, 4000, seed=1)
    db = Database()
    db.create("E", ("X", "Y"))
    engine = CQAPEngine(QUERY, db)
    for edge in edges:
        engine.apply(Update("E", edge, 1))
    rng = random.Random(2)

    def one_access():
        engine.answer_boolean(
            {"A": rng.randrange(400), "B": rng.randrange(400), "C": rng.randrange(400)}
        )

    benchmark(one_access)
