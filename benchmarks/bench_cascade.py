"""Section 4.2: cascading q-hierarchical queries.

Example 4.5 / Fig. 5: the path query Q1 is not q-hierarchical, but its
rewriting over the q-hierarchical Q2 is.  The experiments cited by the
paper show the cascading Q1' achieving higher throughput than standalone
Q1, provided both outputs are enumerated with Q2 first.

The bench replays one update+enumeration workload through (a) the
cascade engine and (b) a standalone first-order delta engine for Q1, and
reports throughput.
"""

from __future__ import annotations

import random

from repro.bench import Table, time_call
from repro.cascade import CascadeEngine
from repro.data import Database, Update
from repro.delta import DeltaQueryEngine
from repro.query import parse_query

from _util import report

Q1 = parse_query("Q1(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)")
Q2 = parse_query("Q2(A,B,C) = R(A,B) * S(B,C)")
UPDATES = 1500
ENUM_EVERY = 250


def _stream(seed=0, domain=40):
    rng = random.Random(seed)
    return [
        Update(
            rng.choice(["R", "S", "T"]),
            (rng.randrange(domain), rng.randrange(domain)),
            1,
        )
        for _ in range(UPDATES)
    ]


def _fresh_db():
    db = Database()
    for name in ("R", "S", "T"):
        db.create(name, ("X", "Y"))
    return db


def bench_cascade_table(benchmark):
    benchmark.pedantic(_cascade_table, rounds=1, iterations=1)


def _cascade_table():
    stream = _stream()

    def run_cascade():
        engine = CascadeEngine(Q1, Q2, _fresh_db())
        tuples = 0
        for i, update in enumerate(stream):
            engine.apply(update)
            if i % ENUM_EVERY == ENUM_EVERY - 1:
                tuples += sum(1 for _ in engine.enumerate_q2())
                tuples += sum(1 for _ in engine.enumerate_q1())
        return tuples

    def run_standalone():
        db = _fresh_db()
        q1_engine = DeltaQueryEngine(Q1, db)
        db2 = _fresh_db()
        q2_engine = DeltaQueryEngine(Q2, db2)
        tuples = 0
        for i, update in enumerate(stream):
            q1_engine.update(update)
            if update.relation in ("R", "S"):
                q2_engine.update(update)
            if i % ENUM_EVERY == ENUM_EVERY - 1:
                tuples += sum(1 for _ in q2_engine.enumerate())
                tuples += sum(1 for _ in q1_engine.enumerate())
        return tuples

    cascade_seconds, cascade_tuples = time_call(run_cascade)
    standalone_seconds, standalone_tuples = time_call(run_standalone)
    assert cascade_tuples == standalone_tuples  # same outputs enumerated

    table = Table(
        "Section 4.2 -- cascading Q1' vs standalone Q1 (+ standalone Q2)",
        ["approach", "updates/s", "tuples enumerated"],
    )
    table.add("cascade (Fig. 5 view tree)", UPDATES / cascade_seconds, cascade_tuples)
    table.add("standalone delta engines", UPDATES / standalone_seconds, standalone_tuples)
    report(table, "cascade.txt")

    # Paper shape: the cascade achieves higher throughput.
    assert UPDATES / cascade_seconds > UPDATES / standalone_seconds


def bench_cascade_update(benchmark):
    engine = CascadeEngine(Q1, Q2, _fresh_db())
    rng = random.Random(3)

    def one_update():
        engine.apply(
            Update(
                rng.choice(["R", "S", "T"]),
                (rng.randrange(40), rng.randrange(40)),
                1,
            )
        )

    benchmark(one_update)
