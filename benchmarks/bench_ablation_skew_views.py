"""Ablation: the IVM^eps skew views (Section 3.3's V_ST / V_TR / V_RS).

The paper materializes one auxiliary view per relation to serve the
heavy-light combination (``dQ_HL``) with a single lookup.  This ablation
removes the view and answers that combination by iterating the heavy
group instead — showing the O(1)-lookup view is what caps the update
time at O(N^max(eps,1-eps)).
"""

from __future__ import annotations

import random

from repro.bench import Table, growth_exponent
from repro.data import Update, counting
from repro.ivme import TriangleCounter
from repro.workloads import triangle_updates_for_edge, zipf_edges

from _util import report

SIZES = [500, 2000, 8000]


class NoSkewViewTriangleCounter(TriangleCounter):
    """TriangleCounter with the skew views disabled (ablation).

    The H x L combination is computed by iterating the *heavy* side's
    group and probing the light side — O(heavy group) instead of O(1).
    The views (and their maintenance) are skipped entirely.
    """

    def _count_delta(self, first, second, skew_view, left_key, right_key):
        total = 0
        first_group_vars = (first.schema.variables[0],)
        for key in first.light.group(first_group_vars, (left_key,)):
            middle = key[1]
            partner = second.get((middle, right_key))
            if partner:
                total += first.light.get(key) * partner
        second_group_vars = (second.schema.variables[1],)
        for key in second.heavy.group(second_group_vars, (right_key,)):
            middle = key[0]
            mine = first.heavy.get((left_key, middle))
            if mine:
                total += mine * second.heavy.get(key)
        # Ablated H x L: iterate first's heavy group for left_key.
        for key in first.heavy.group(first_group_vars, (left_key,)):
            middle = key[1]
            partner = second.light.get((middle, right_key))
            if partner:
                total += first.heavy.get(key) * partner
        return total

    # Views are never maintained in the ablation.
    def _on_migrate_r(self, value, moved, became_heavy):
        pass

    def _on_migrate_s(self, value, moved, became_heavy):
        pass

    def _on_migrate_t(self, value, moved, became_heavy):
        pass

    def _rebuild_views(self):
        pass

    def _update_r(self, key, payload):
        a, b = key
        self.count += payload * self._count_delta(self.S, self.T, None, b, a)
        self.R.add(key, payload)

    def _update_s(self, key, payload):
        b, c = key
        self.count += payload * self._count_delta(self.T, self.R, None, c, b)
        self.S.add(key, payload)

    def _update_t(self, key, payload):
        c, a = key
        self.count += payload * self._count_delta(self.R, self.S, None, a, c)
        self.T.add(key, payload)


def _load(size, seed=0):
    nodes = max(8, size // 8)
    updates = []
    for edge in zipf_edges(nodes, size, skew=1.3, seed=seed):
        updates.extend(triangle_updates_for_edge(edge))
    return updates, nodes


def _hub_probes(nodes, count):
    """Probes whose H x L combination hits a hub.

    For dR(a, b) the combination iterates S's heavy group of ``b`` (when
    ablated), so the second key component targets the hub node 0; same by
    rotation for S and T.
    """
    rng = random.Random(9)
    return [
        Update(rng.choice(["R", "S", "T"]), (rng.randrange(nodes), 0), 1)
        for _ in range(count)
    ]


def bench_skew_view_ablation(benchmark):
    benchmark.pedantic(_ablation_table, rounds=1, iterations=1)


def _ablation_table():
    table = Table(
        "Ablation -- IVM^eps skew views: ops per hub update",
        ["N", "with views (paper)", "without views (ablated)"],
    )
    with_costs, without_costs = [], []
    for size in SIZES:
        load, nodes = _load(size)
        probes = _hub_probes(nodes, 30)

        full = TriangleCounter(epsilon=0.5)
        full.apply_batch(load)
        with counting() as ops:
            for probe in probes:
                full.apply(probe)
        with_cost = ops.total() / len(probes)

        ablated = NoSkewViewTriangleCounter(epsilon=0.5)
        ablated.apply_batch(load)
        with counting() as ops:
            for probe in probes:
                ablated.apply(probe)
        without_cost = ops.total() / len(probes)

        # Both remain correct — the ablation only changes the cost.
        assert full.count == ablated.count
        with_costs.append(with_cost)
        without_costs.append(without_cost)
        table.add(size * 3, with_cost, without_cost)

    table.add(
        "growth exp",
        round(growth_exponent(SIZES, with_costs), 2),
        round(growth_exponent(SIZES, without_costs), 2),
    )
    report(table, "ablation_skew_views.txt")
    assert without_costs[-1] > with_costs[-1]
