"""Compiled delta kernels vs the generic propagation path.

``repro.viewtree.compile`` pre-compiles, for every (relation, anchor)
pair, the leaf-to-root propagation path into a :class:`DeltaPlan` —
precomputed sibling lists, position tuples, resolved group indexes, and
pre-bound ring ops — so a single-tuple update runs with zero Relation
allocations and zero schema re-derivation.  The asymptotics are
untouched (Theorem 4.1's O(1) per update for q-hierarchical queries);
the constant factor is the whole point.

This bench replays identical single-tuple update streams through the
compiled and the generic (``compile_plans=False``) engine on:

* a q-hierarchical query (``Q(Y,X,Z) = R(Y,X) * S(Y,Z)``) — the
  Theorem 4.1 fast case, where per-update work is a handful of dict
  probes and the compiled win is largest;
* a hierarchical, non-q-hierarchical query
  (``Q(A,C) = R(A,B) * S(B,C)``) under a searched free-top order —
  per-update deltas grow with data, so fixed-cost savings dilute;

and through the two eager Fig. 4 strategies (``eager-fact`` compiled
and generic, ``eager-list`` for context).  Every compiled run is
differential-checked bit-identical against its generic twin.

A third table covers the batch kernel: the same streams sliced into
batches of 64 and 256 and replayed through ``apply_batch``, which
coalesces same-key deltas and shares sibling probes per group push
(``DeltaPlan.push_batch``), against per-tuple compiled ``apply``.

Acceptance gates: compiled >= 2x generic on the q-hierarchical
single-tuple apply path, and batch-compiled ``apply_batch`` >= 2x
per-tuple compiled ``apply`` at batch size >= 64 on the q-hierarchical
kernel (both asserted below).
"""

from __future__ import annotations

import bisect
import itertools
import random
import time

from repro.bench import Table
from repro.data import Database, Update
from repro.query import parse_query
from repro.query.variable_order import search_order
from repro.viewtree import ViewTreeEngine
from repro.viewtree.strategies import make_strategy

from _util import report

UPDATES = 20000
PREFILL = 500
DOMAIN = 400
DELETE_FRACTION = 0.25
ZIPF_S = 1.2
BATCH_SIZES = (64, 256)

QUERIES = (
    ("q-hierarchical", "Q(Y, X, Z) = R(Y, X) * S(Y, Z)"),
    ("hierarchical", "Q(A, C) = R(A, B) * S(B, C)"),
)


def _sampler(rng, workload):
    if workload == "uniform":
        return lambda: rng.randrange(DOMAIN)
    weights = list(
        itertools.accumulate(1.0 / (k + 1) ** ZIPF_S for k in range(DOMAIN))
    )
    total = weights[-1]
    return lambda: min(
        bisect.bisect_left(weights, rng.random() * total), DOMAIN - 1
    )


def _stream(query, workload, seed):
    """A valid mixed insert/delete stream over the query's relations."""
    rng = random.Random(seed)
    value = _sampler(rng, workload)
    names = sorted({a.relation for a in query.atoms})
    arity = {a.relation: len(a.variables) for a in query.atoms}
    live = {name: [] for name in names}
    stream = []
    for _ in range(UPDATES):
        name = names[rng.randrange(len(names))]
        keys = live[name]
        if keys and rng.random() < DELETE_FRACTION:
            key = keys.pop(rng.randrange(len(keys)))
            stream.append(Update(name, key, -1))
        else:
            key = tuple(value() for _ in range(arity[name]))
            keys.append(key)
            stream.append(Update(name, key, 1))
    return stream


def _fresh_db(query, workload, seed=99):
    rng = random.Random(seed)
    value = _sampler(rng, workload)
    db = Database()
    for atom in query.atoms:
        if atom.relation not in db.relations:
            db.create(atom.relation, atom.variables)
    for name, relation in db.relations.items():
        arity = len(relation.schema.variables)
        for _ in range(PREFILL):
            relation.add(tuple(value() for _ in range(arity)), 1)
    return db


def _order_for(query):
    from repro.query.properties import is_q_hierarchical

    if is_q_hierarchical(query):
        return None
    return search_order(query, require_free_top=True)


def _replay(engine, stream):
    """Single-tuple apply throughput (updates/s) plus one final drain."""
    apply = engine.apply
    start = time.perf_counter()
    for update in stream:
        apply(update)
    seconds = time.perf_counter() - start
    for _ in engine.enumerate():
        pass
    return len(stream) / seconds


def _replay_batched(engine, stream, batch_size):
    """``apply_batch`` throughput over ``batch_size`` slices of the stream."""
    apply_batch = engine.apply_batch
    start = time.perf_counter()
    for at in range(0, len(stream), batch_size):
        apply_batch(stream[at : at + batch_size])
    seconds = time.perf_counter() - start
    for _ in engine.enumerate():
        pass
    return len(stream) / seconds


def bench_delta_kernel(benchmark):
    benchmark.pedantic(_kernel_table, rounds=1, iterations=1)


def _kernel_table():
    table = Table(
        "compiled delta kernels -- single-tuple apply throughput (upd/s)",
        ["query", "workload", "generic upd/s", "compiled upd/s", "speedup"],
    )
    strategy_table = Table(
        "eager Fig. 4 strategies -- apply throughput (upd/s)",
        ["strategy", "q-hier upd/s", "vs eager-fact generic"],
    )
    batch_table = Table(
        "batch-compiled delta kernels -- apply_batch throughput (upd/s)",
        ["query", "batch size", "per-tuple upd/s", "batch upd/s",
         "batch speedup"],
    )

    speedups = {}
    for label, text in QUERIES:
        query = parse_query(text)
        order = _order_for(query)
        for workload in ("uniform", "zipf"):
            stream = _stream(query, workload, 7)
            generic = ViewTreeEngine(
                query, _fresh_db(query, workload), order, compile_plans=False
            )
            generic_rate = _replay(generic, stream)
            compiled = ViewTreeEngine(
                query, _fresh_db(query, workload), order, compile_plans=True
            )
            compiled_rate = _replay(compiled, stream)
            # differential gate: the kernels must be invisible semantically
            assert (
                compiled.output_relation().to_dict()
                == generic.output_relation().to_dict()
            )
            speedup = compiled_rate / generic_rate
            speedups[(label, workload)] = speedup
            table.add(
                label,
                workload,
                f"{generic_rate:,.0f}",
                f"{compiled_rate:,.0f}",
                f"{speedup:.2f}x",
            )

    # The batch kernel against the per-tuple compiled path, on the same
    # uniform streams.  rebuild_factor=None keeps the crossover heuristic
    # out of the timing; the coalesce + group-push win is what's measured.
    batch_speedups = {}
    for label, text in QUERIES:
        query = parse_query(text)
        order = _order_for(query)
        stream = _stream(query, "uniform", 7)
        per_tuple = ViewTreeEngine(
            query, _fresh_db(query, "uniform"), order, compile_plans=True
        )
        per_tuple_rate = _replay(per_tuple, stream)
        for batch_size in BATCH_SIZES:
            batched = ViewTreeEngine(
                query, _fresh_db(query, "uniform"), order, compile_plans=True
            )
            start = time.perf_counter()
            for at in range(0, len(stream), batch_size):
                batched.apply_batch(
                    stream[at : at + batch_size], rebuild_factor=None
                )
            seconds = time.perf_counter() - start
            for _ in batched.enumerate():
                pass
            batched_rate = len(stream) / seconds
            # differential gate: batching must be invisible semantically
            assert (
                batched.output_relation().to_dict()
                == per_tuple.output_relation().to_dict()
            )
            speedup = batched_rate / per_tuple_rate
            batch_speedups[(label, batch_size)] = speedup
            batch_table.add(
                label,
                str(batch_size),
                f"{per_tuple_rate:,.0f}",
                f"{batched_rate:,.0f}",
                f"{speedup:.2f}x",
            )

    # The eager strategies from Fig. 4, on the q-hierarchical query.
    query = parse_query(QUERIES[0][1])
    stream = _stream(query, "uniform", 7)
    rates = {}
    for name, kwargs in (
        ("eager-fact (compiled)", {"compile_plans": True}),
        ("eager-fact (generic)", {"compile_plans": False}),
        ("eager-list", {}),
    ):
        strategy = make_strategy(
            name.split(" ")[0], query, _fresh_db(query, "uniform"), **kwargs
        )
        rates[name] = _replay(strategy, stream)
    baseline = rates["eager-fact (generic)"]
    for name, rate in rates.items():
        strategy_table.add(name, f"{rate:,.0f}", f"{rate / baseline:.2f}x")

    report(
        table,
        "delta_kernel.txt",
        extra_tables=[strategy_table, batch_table],
        meta={
            "queries": {label: text for label, text in QUERIES},
            "updates": UPDATES,
            "prefill": PREFILL,
            "domain": DOMAIN,
            "delete_fraction": DELETE_FRACTION,
            "zipf_s": ZIPF_S,
            "batch_sizes": list(BATCH_SIZES),
        },
    )

    # Acceptance gates: >=2x on the q-hierarchical single-tuple hot path
    # (bare engine and eager-fact strategy), and >=2x again from batching
    # that compiled path at batch sizes >= 64.
    assert speedups[("q-hierarchical", "uniform")] >= 2.0, speedups
    assert rates["eager-fact (compiled)"] >= 2.0 * baseline, rates
    for batch_size in BATCH_SIZES:
        assert (
            batch_speedups[("q-hierarchical", batch_size)] >= 2.0
        ), batch_speedups
