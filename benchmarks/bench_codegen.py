"""Source-generated kernels vs the interpreted delta/enum plans.

``repro.viewtree.codegen`` compiles each :class:`DeltaPlan` and
:class:`EnumPlan` one rung further than PR 3-5's interpreted step lists:
it emits Python source with the step loop fully unrolled (ring ops
inlined, projections as literal index tuples, sinks fused in place) and
``exec``\\ s it into specialized ``push`` / ``push_batch`` / ``iterate``
functions, cached per plan *shape*.  The interpreted plans stay wired in
as the bit-identical differential-testing oracle; this bench measures
what the extra compilation rung buys.

Four tables:

* **single-tuple push** — ``kernel.push`` vs ``plan.push`` on identical
  mixed insert/delete streams, kernel-level (leaf bookkeeping excluded
  from both sides identically);
* **columnar push_batch** — ``kernel.push_batch`` over coalesced
  columnar key/payload lists vs ``plan.push_batch`` over the coalesced
  delta dicts it consumes, at batch sizes 64 and 256;
* **engine-level apply (context)** — the same comparison through
  ``ViewTreeEngine.apply`` / ``apply_batch``, where leaf writes and
  dispatch dilute the kernel win;
* **enumeration (context)** — full output drains through the generated
  read-path kernel vs the interpreted enumeration plan.

Every generated run is differential-checked against its interpreted
twin before any rate is reported.

Acceptance gates: generated >= 2x interpreted on the q-hierarchical
single-tuple push path for both workloads (typical: 2.8-3.4x), and
hard floors on the batch path -- >= 1.5x per configuration and >= 1.8x
geometric mean over the q-hierarchical configurations (typical: 2.0-2.25x
per configuration, geomean ~2.1x; the floors sit below typical so shared
CI runners don't flake, while the benchdiff band against the committed
baseline catches regressions).
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
import time

from repro.bench import Table
from repro.data import Database, Update
from repro.data.columnar import coalesce_columnar
from repro.data.update import coalesce_grouped
from repro.query import parse_query
from repro.query.variable_order import search_order
from repro.viewtree import ViewTreeEngine

from _util import report

UPDATES = 20000
PREFILL = 500
DOMAIN = 400
DELETE_FRACTION = 0.25
ZIPF_S = 1.2
BATCH_SIZES = (64, 256)
REPEATS = 3

QUERIES = (
    ("q-hierarchical", "Q(Y, X, Z) = R(Y, X) * S(Y, Z)"),
    ("hierarchical", "Q(A, C) = R(A, B) * S(B, C)"),
)


def _sampler(rng, workload):
    if workload == "uniform":
        return lambda: rng.randrange(DOMAIN)
    weights = list(
        itertools.accumulate(1.0 / (k + 1) ** ZIPF_S for k in range(DOMAIN))
    )
    total = weights[-1]
    return lambda: min(
        bisect.bisect_left(weights, rng.random() * total), DOMAIN - 1
    )


def _stream(query, workload, seed):
    """A valid mixed insert/delete stream over the query's relations."""
    rng = random.Random(seed)
    value = _sampler(rng, workload)
    names = sorted({a.relation for a in query.atoms})
    arity = {a.relation: len(a.variables) for a in query.atoms}
    live = {name: [] for name in names}
    stream = []
    for _ in range(UPDATES):
        name = names[rng.randrange(len(names))]
        keys = live[name]
        if keys and rng.random() < DELETE_FRACTION:
            key = keys.pop(rng.randrange(len(keys)))
            stream.append(Update(name, key, -1))
        else:
            key = tuple(value() for _ in range(arity[name]))
            keys.append(key)
            stream.append(Update(name, key, 1))
    return stream


def _fresh_db(query, workload, seed=99):
    rng = random.Random(seed)
    value = _sampler(rng, workload)
    db = Database()
    for atom in query.atoms:
        if atom.relation not in db.relations:
            db.create(atom.relation, atom.variables)
    for name, relation in db.relations.items():
        arity = len(relation.schema.variables)
        for _ in range(PREFILL):
            relation.add(tuple(value() for _ in range(arity)), 1)
    return db


def _order_for(query):
    from repro.query.properties import is_q_hierarchical

    if is_q_hierarchical(query):
        return None
    return search_order(query, require_free_top=True)


def _engine(query, workload, order, codegen):
    return ViewTreeEngine(
        query, _fresh_db(query, workload), order, codegen=codegen
    )


def _kernel_rows(engine, codegen):
    """relation -> push targets: generated kernels or interpreted plans."""
    if not codegen:
        return engine._plans
    return {
        name: [
            kernel if kernel is not None else plan
            for kernel, plan in zip(row, engine._plans[name])
        ]
        for name, row in engine._kernels.items()
    }


def _push_seconds(query, workload, order, stream, codegen):
    """One single-tuple kernel replay; returns (seconds, engine)."""
    engine = _engine(query, workload, order, codegen)
    rows = _kernel_rows(engine, codegen)
    start = time.perf_counter()
    for update in stream:
        for target in rows[update.relation]:
            target.push(update.key, update.payload, None)
    return time.perf_counter() - start, engine


def _batch_seconds(query, workload, order, slices, codegen):
    """One columnar/grouped batch replay; returns (seconds, engine)."""
    engine = _engine(query, workload, order, codegen)
    rows = _kernel_rows(engine, codegen)
    start = time.perf_counter()
    if codegen:
        for grouped in slices:
            for name, (keys, pays) in grouped.items():
                for target in rows[name]:
                    target.push_batch(keys, pays, None)
    else:
        for grouped in slices:
            for name, delta in grouped.items():
                for target in rows[name]:
                    target.push_batch(delta, None)
    return time.perf_counter() - start, engine


def _ab_best(trial_interp, trial_gen, repeats=REPEATS):
    """Interleaved best-of-N for both sides; returns (s_interp, s_gen)
    plus the last engines for the differential check."""
    best_i = best_g = float("inf")
    engine_i = engine_g = None
    for _ in range(repeats):
        seconds, engine_i = trial_interp()
        best_i = min(best_i, seconds)
        seconds, engine_g = trial_gen()
        best_g = min(best_g, seconds)
    return best_i, best_g, engine_i, engine_g


def _assert_same_output(engine_interp, engine_gen):
    # Differential gate: generated kernels must be invisible semantically.
    assert (
        engine_gen.output_relation().to_dict()
        == engine_interp.output_relation().to_dict()
    )


def bench_codegen(benchmark):
    benchmark.pedantic(_codegen_table, rounds=1, iterations=1)


def _codegen_table():
    push_table = Table(
        "generated delta kernels -- single-tuple push throughput (upd/s)",
        ["query", "workload", "interpreted upd/s", "generated upd/s",
         "speedup"],
    )
    batch_table = Table(
        "generated batch kernels -- columnar push_batch throughput (upd/s)",
        ["query", "workload", "batch size", "interpreted upd/s",
         "generated upd/s", "speedup"],
    )
    engine_table = Table(
        "engine-level apply with generated kernels (context)",
        ["path", "interpreted upd/s", "generated upd/s", "speedup"],
    )
    enum_table = Table(
        "generated enumeration kernels -- full drain (context)",
        ["query", "interpreted tuples/s", "generated tuples/s", "speedup"],
    )

    push_speedups = {}
    batch_speedups = {}
    codegen_meta = {}

    for label, text in QUERIES:
        query = parse_query(text)
        order = _order_for(query)
        ring = _fresh_db(query, "uniform").ring
        for workload in ("uniform", "zipf"):
            stream = _stream(query, workload, 7)

            # -- single-tuple kernel push ------------------------------
            s_interp, s_gen, e_interp, e_gen = _ab_best(
                lambda: _push_seconds(query, workload, order, stream, False),
                lambda: _push_seconds(query, workload, order, stream, True),
            )
            _assert_same_output(e_interp, e_gen)
            if not codegen_meta and e_gen._codegen_info is not None:
                codegen_meta = dict(e_gen._codegen_info)
            rate_i = len(stream) / s_interp
            rate_g = len(stream) / s_gen
            speedup = rate_g / rate_i
            push_speedups[(label, workload)] = speedup
            push_table.add(
                label,
                workload,
                f"{rate_i:,.0f}",
                f"{rate_g:,.0f}",
                f"{speedup:.2f}x",
            )

            # -- columnar batch push ----------------------------------
            for batch_size in BATCH_SIZES:
                grouped_slices = [
                    coalesce_grouped(stream[at : at + batch_size], ring)
                    for at in range(0, len(stream), batch_size)
                ]
                columnar_slices = [
                    coalesce_columnar(stream[at : at + batch_size], ring)
                    for at in range(0, len(stream), batch_size)
                ]
                s_interp, s_gen, e_interp, e_gen = _ab_best(
                    lambda: _batch_seconds(
                        query, workload, order, grouped_slices, False
                    ),
                    lambda: _batch_seconds(
                        query, workload, order, columnar_slices, True
                    ),
                )
                _assert_same_output(e_interp, e_gen)
                rate_i = len(stream) / s_interp
                rate_g = len(stream) / s_gen
                speedup = rate_g / rate_i
                batch_speedups[(label, workload, batch_size)] = speedup
                batch_table.add(
                    label,
                    workload,
                    str(batch_size),
                    f"{rate_i:,.0f}",
                    f"{rate_g:,.0f}",
                    f"{speedup:.2f}x",
                )

    # -- engine-level context (q-hierarchical, uniform) ----------------
    query = parse_query(QUERIES[0][1])
    stream = _stream(query, "uniform", 7)

    def _apply_seconds(codegen):
        engine = _engine(query, "uniform", None, codegen)
        apply = engine.apply
        start = time.perf_counter()
        for update in stream:
            apply(update)
        return time.perf_counter() - start, engine

    def _apply_batch_seconds(codegen):
        engine = _engine(query, "uniform", None, codegen)
        start = time.perf_counter()
        for at in range(0, len(stream), 256):
            engine.apply_batch(stream[at : at + 256], rebuild_factor=None)
        return time.perf_counter() - start, engine

    for path, fn in (
        ("apply", _apply_seconds),
        ("apply_batch (256)", _apply_batch_seconds),
    ):
        s_interp, s_gen, e_interp, e_gen = _ab_best(
            lambda: fn(False), lambda: fn(True)
        )
        _assert_same_output(e_interp, e_gen)
        rate_i = len(stream) / s_interp
        rate_g = len(stream) / s_gen
        engine_table.add(
            path,
            f"{rate_i:,.0f}",
            f"{rate_g:,.0f}",
            f"{rate_g / rate_i:.2f}x",
        )

    # -- enumeration context -------------------------------------------
    for label, text in QUERIES:
        query = parse_query(text)
        order = _order_for(query)
        stream = _stream(query, "uniform", 7)[:4000]

        def _drain_seconds(codegen):
            engine = _engine(query, "uniform", order, codegen)
            for update in stream:
                engine.apply(update)
            best = float("inf")
            count = 0
            for _ in range(REPEATS):
                start = time.perf_counter()
                count = sum(1 for _ in engine.enumerate())
                best = min(best, time.perf_counter() - start)
            return best, count

        s_interp, count_i = _drain_seconds(False)
        s_gen, count_g = _drain_seconds(True)
        assert count_i == count_g, (count_i, count_g)
        rate_i = count_i / s_interp
        rate_g = count_g / s_gen
        enum_table.add(
            label,
            f"{rate_i:,.0f}",
            f"{rate_g:,.0f}",
            f"{rate_g / rate_i:.2f}x",
        )

    qhier_batch = [
        speedup
        for (label, _, _), speedup in batch_speedups.items()
        if label == "q-hierarchical"
    ]
    batch_geomean = math.prod(qhier_batch) ** (1 / len(qhier_batch))

    report(
        push_table,
        "codegen.txt",
        extra_tables=[batch_table, engine_table, enum_table],
        meta={
            "queries": {label: text for label, text in QUERIES},
            "updates": UPDATES,
            "prefill": PREFILL,
            "domain": DOMAIN,
            "delete_fraction": DELETE_FRACTION,
            "zipf_s": ZIPF_S,
            "batch_sizes": list(BATCH_SIZES),
            "repeats": REPEATS,
            "qhier_batch_geomean": round(batch_geomean, 3),
            "codegen": codegen_meta,
        },
    )

    # Acceptance gates (see the module docstring for the floor rationale).
    for workload in ("uniform", "zipf"):
        assert push_speedups[("q-hierarchical", workload)] >= 2.0, (
            push_speedups
        )
    for (label, workload, batch_size), speedup in batch_speedups.items():
        if label == "q-hierarchical":
            assert speedup >= 1.5, batch_speedups
    assert batch_geomean >= 1.8, (batch_geomean, batch_speedups)
