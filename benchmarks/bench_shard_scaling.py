"""Shard scaling: sharded view-tree maintenance vs shard count.

View-tree maintenance is key-partitioned group work, so hash shards of
the join variable maintain disjoint view slices independently
(``repro.shard``).  This bench replays the same batched update stream
through the plain engine and through ``ShardedEngine`` at increasing
shard counts, under two workload shapes:

* ``uniform`` — join-key values drawn uniformly, so shards balance;
* ``zipf``    — a few hot keys dominate, so one shard soaks up most of
  the stream and the parallel speedup collapses (the skew argument that
  motivates IVM^eps-style heavy/light treatment, seen from the
  partitioning side).

Expected shape: serial sharding costs a little coordination overhead
(the split plus N smaller engines); the thread executor only helps to
the extent the interpreter releases the GIL, so treat these numbers as
an upper bound on coordination cost rather than a parallelism win — the
load-balance table is the interesting output.  A final differential
check asserts every configuration produced the bit-identical output.

The process executor (persistent delta-IPC workers, ``repro.shard
.worker``) rides along in its own rows, plus a state-growth table that
gates the whole point of the worker redesign: per-commit time must stay
flat as resident view state grows (the old ship-the-engine path
regressed linearly in state — see ``bench_ipc`` for the head-to-head).
"""

from __future__ import annotations

import bisect
import itertools
import random
import time

from repro.bench import Table
from repro.data import Database
from repro.query import parse_query
from repro.shard import ShardedEngine
from repro.viewtree import ViewTreeEngine

from _util import report

QUERY = parse_query("Q(B, A) = R(B, A) * S(B)")
UPDATES = 4000
BATCH = 250
PREFILL = 300
DOMAIN = 500
SHARD_COUNTS = (1, 2, 4)
EXECUTOR = "thread"
WORKLOADS = ("uniform", "zipf")
ZIPF_S = 1.2
PROCESS_SHARD_COUNTS = (2, 4)
#: State-growth gate: per-commit time at ~5x resident state must stay
#: within this factor of the small-state time (process/delta workers).
GROWTH_FLAT_BOUND = 1.3
GROWTH_BATCH = 250
GROWTH_PROBES = 5


def _sampler(rng, workload):
    if workload == "uniform":
        return lambda: rng.randrange(DOMAIN)
    weights = list(
        itertools.accumulate(1.0 / (k + 1) ** ZIPF_S for k in range(DOMAIN))
    )
    total = weights[-1]
    return lambda: min(
        bisect.bisect_left(weights, rng.random() * total), DOMAIN - 1
    )


def _stream(workload, seed):
    from repro.data import Update

    rng = random.Random(seed)
    value = _sampler(rng, workload)
    stream = []
    for _ in range(UPDATES):
        if rng.random() < 0.5:
            stream.append(Update("R", (value(), value()), 1))
        else:
            stream.append(Update("S", (value(),), 1))
    return stream


def _fresh_db(workload, seed=99):
    rng = random.Random(seed)
    value = _sampler(rng, workload)
    db = Database()
    db.create("R", ("B", "A"))
    db.create("S", ("B",))
    for _ in range(PREFILL):
        db["R"].insert(value(), value())
        db["S"].insert(value())
    return db


def _replay(engine, stream):
    start = time.perf_counter()
    for offset in range(0, len(stream), BATCH):
        engine.apply_batch(list(stream[offset : offset + BATCH]))
    for _ in engine.enumerate():
        pass
    return len(stream) / (time.perf_counter() - start)


def _state_growth_table():
    """Process-executor throughput vs resident state (the tentpole gate).

    Disjoint-key batches grow the resident views between two probe
    levels; identical fixed-size probe batches are timed at each level
    (min over GROWTH_PROBES, noise-robust).  Under the persistent
    delta-IPC workers the per-commit time stays flat; the old
    pickle-engine path regressed linearly in state.
    """
    from repro.data import Update

    table = Table(
        "process/delta per-commit time vs resident state "
        f"(batch fixed at {GROWTH_BATCH} updates, 4 shards)",
        ["state (rows)", "per-commit ms", "upd/s"],
    )
    next_key = 0

    def batch(rows):
        nonlocal next_key
        start, next_key = next_key, next_key + rows
        out = []
        for i in range(start, start + rows):
            out.append(Update("R", (i, i), 1))
            out.append(Update("S", (i,), 1))
        return out

    def probe_level(engine):
        best = float("inf")
        for _ in range(GROWTH_PROBES):
            probe = batch(GROWTH_BATCH // 2)
            started = time.perf_counter()
            engine.apply_batch(probe)
            best = min(best, time.perf_counter() - started)
        return best

    db = Database()
    db.create("R", ("B", "A"))
    db.create("S", ("B",))
    with ShardedEngine(QUERY, db, shards=4, executor="process") as engine:
        engine.apply_batch(batch(2_000))
        engine.apply_batch(batch(GROWTH_BATCH // 2))  # warmup: pool spawn
        small = probe_level(engine)
        table.add(f"{engine.total_view_size():,}", f"{small * 1e3:,.2f}",
                  f"{GROWTH_BATCH / small:,.0f}")
        engine.apply_batch(batch(8_000))
        grown = probe_level(engine)
        table.add(f"{engine.total_view_size():,}", f"{grown * 1e3:,.2f}",
                  f"{GROWTH_BATCH / grown:,.0f}")
    assert grown <= GROWTH_FLAT_BOUND * small, (
        f"process-executor per-commit time regressed {grown / small:.2f}x "
        f"as view state grew (bound {GROWTH_FLAT_BOUND}x)"
    )
    return table


def bench_shard_scaling(benchmark):
    benchmark.pedantic(_scaling_table, rounds=1, iterations=1)


def _scaling_table():
    table = Table(
        "sharded view-tree maintenance -- throughput (updates/s)",
        ["configuration"] + [f"{w} upd/s" for w in WORKLOADS],
    )
    balance = Table(
        "per-shard load balance (updates routed, incl. broadcasts)",
        ["workload", "shards"]
        + [f"shard{i}" for i in range(max(SHARD_COUNTS))],
    )

    outputs: dict[str, dict] = {}
    merged_stats = None
    plain_row = ["plain viewtree"]
    for workload in WORKLOADS:
        db = _fresh_db(workload)
        engine = ViewTreeEngine(QUERY, db)
        plain_row.append(f"{_replay(engine, _stream(workload, 7)):,.0f}")
        outputs[workload] = engine.output_relation().to_dict()
    table.add(*plain_row)

    for shards in SHARD_COUNTS:
        row = [f"{shards} shard(s), {EXECUTOR}"]
        for workload in WORKLOADS:
            stream = _stream(workload, 7)
            with ShardedEngine(
                QUERY, _fresh_db(workload), shards=shards, executor=EXECUTOR
            ) as engine:
                engine.attach_stats()
                row.append(f"{_replay(engine, stream):,.0f}")
                # every configuration must agree with the plain engine
                assert engine.output_relation().to_dict() == outputs[workload]
                if shards == max(SHARD_COUNTS):
                    merged_stats = engine.merged_stats()
                counts = [len(part) for part in engine.router.split(stream)]
            counts += [""] * (max(SHARD_COUNTS) - len(counts))
            balance.add(workload, str(shards), *[str(c) for c in counts])
        table.add(*row)

    for shards in PROCESS_SHARD_COUNTS:
        row = [f"{shards} shard(s), process/delta"]
        for workload in WORKLOADS:
            stream = _stream(workload, 7)
            with ShardedEngine(
                QUERY, _fresh_db(workload), shards=shards, executor="process"
            ) as engine:
                row.append(f"{_replay(engine, stream):,.0f}")
                assert engine.output_relation().to_dict() == outputs[workload]
        table.add(*row)

    growth = _state_growth_table()

    report(
        table,
        "shard_scaling.txt",
        stats=merged_stats,
        extra_tables=[balance, growth],
        meta={
            "query": str(QUERY),
            "updates": UPDATES,
            "batch": BATCH,
            "prefill": PREFILL,
            "domain": DOMAIN,
            "shard_counts": list(SHARD_COUNTS),
            "process_shard_counts": list(PROCESS_SHARD_COUNTS),
            "executor": EXECUTOR,
            "workloads": list(WORKLOADS),
            "zipf_s": ZIPF_S,
            "growth_flat_bound": GROWTH_FLAT_BOUND,
        },
    )

    # Skew shape: under zipf the heaviest shard carries strictly more
    # than a balanced share of the partitioned updates.
    zipf_stream = _stream("zipf", 7)
    with ShardedEngine(
        QUERY, _fresh_db("zipf"), shards=4, executor="serial"
    ) as probe:
        counts = [len(part) for part in probe.router.split(zipf_stream)]
    assert max(counts) > len(zipf_stream) / 4
