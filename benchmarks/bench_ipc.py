"""Shard IPC: delta-only worker protocol vs ship-the-engine pickling.

The point of the persistent shard workers (``repro.shard.worker``): with
``executor="process"`` the per-commit cost must scale with the *batch*,
not with the accumulated view state.  The old path
(``ipc="pickle-engine"``, kept as the differential oracle) pickles each
shard's entire engine through the process pool every batch, so its
per-commit time grows linearly with resident state; the delta protocol
ships only the coalesced sub-batch out and a stats delta back, so its
per-commit time — and its bytes on the pipe — stay flat.

Method: grow the resident view state with batches of disjoint keys,
then time identical fixed-size probe batches at small state and after
growing state 10x.  Gates (the issue's acceptance criteria):

* delta per-commit time at 10x state within 1.3x of small-state time;
* pickle-engine per-commit time degraded by >= 5x over the same growth;
* delta bytes-per-commit flat across the growth (batch-only scaling).
"""

from __future__ import annotations

import time

from repro.bench import Table
from repro.data import Database, Update
from repro.query import parse_query
from repro.shard import ShardedEngine

from _util import report

QUERY = parse_query("Q(B, A) = R(B, A) * S(B)")
SHARDS = 2
BATCH = 200  # updates per probe commit, fixed throughout
PROBES = 7  # timed commits per state level (min taken: noise-robust)
STATE_SMALL = 2_000  # resident R+S rows at the "small" level
GROWTH = 10  # state multiplier between the two levels
FILLER_BATCH = 2_000

#: Gates from the issue's acceptance criteria.
DELTA_FLAT_BOUND = 1.3
PICKLE_DEGRADATION_FLOOR = 5.0
BYTES_FLAT_BOUND = 1.5


class _Keys:
    """Disjoint key ranges: state only ever grows, probes never join
    against filler state, so per-probe maintenance work is constant."""

    def __init__(self):
        self.next = 0

    def take(self, count: int) -> int:
        start = self.next
        self.next += count
        return start


def _fresh_db() -> Database:
    db = Database()
    db.create("R", ("B", "A"))
    db.create("S", ("B",))
    return db


def _filler(keys: _Keys, rows: int) -> list[Update]:
    start = keys.take(rows)
    batch = []
    for i in range(start, start + rows):
        batch.append(Update("R", (i, i), 1))
        batch.append(Update("S", (i,), 1))
    return batch


def _probe(keys: _Keys) -> list[Update]:
    start = keys.take(BATCH // 2)
    batch = []
    for i in range(start, start + BATCH // 2):
        batch.append(Update("R", (i, i), 1))
        batch.append(Update("S", (i,), 1))
    return batch


def _grow(engine, keys: _Keys, rows: int) -> None:
    for _ in range(rows // FILLER_BATCH):
        engine.apply_batch(_filler(keys, FILLER_BATCH))


def _ipc_bytes(stats) -> int:
    if stats is None:
        return 0
    return stats.ipc_bytes_sent + stats.ipc_bytes_received


def _time_probes(engine, keys: _Keys, stats=None):
    """Min per-commit seconds over PROBES probe batches (plus the pipe
    bytes each probe commit moved, when ``stats`` is the recorder)."""
    best = float("inf")
    bytes_per_commit = []
    for _ in range(PROBES):
        batch = _probe(keys)
        before = _ipc_bytes(stats)
        started = time.perf_counter()
        engine.apply_batch(batch)
        best = min(best, time.perf_counter() - started)
        if stats is not None:
            bytes_per_commit.append(_ipc_bytes(stats) - before)
    return best, bytes_per_commit


def _measure(ipc: str):
    keys = _Keys()
    with ShardedEngine(
        QUERY, _fresh_db(), shards=SHARDS, executor="process", ipc=ipc
    ) as engine:
        stats = engine.attach_stats() if ipc == "delta" else None
        _grow(engine, keys, STATE_SMALL)
        engine.apply_batch(_probe(keys))  # warmup: pool spawn, kernels
        small_s, small_bytes = _time_probes(engine, keys, stats)
        _grow(engine, keys, STATE_SMALL * (GROWTH - 1))
        grown_s, grown_bytes = _time_probes(engine, keys, stats)
        state = engine.total_view_size()
    return {
        "small_s": small_s,
        "grown_s": grown_s,
        "ratio": grown_s / small_s,
        "bytes": small_bytes + grown_bytes,
        "state": state,
    }


def bench_ipc(benchmark):
    benchmark.pedantic(_ipc_table, rounds=1, iterations=1)


def _ipc_table():
    delta = _measure("delta")
    pickle_engine = _measure("pickle-engine")

    table = Table(
        "process-executor per-commit cost vs resident view state "
        f"(batch fixed at {BATCH} updates)",
        [
            "ipc mode",
            f"small state ({STATE_SMALL:,} rows) ms",
            f"grown state ({STATE_SMALL * GROWTH:,} rows) ms",
            "grown/small",
        ],
    )
    for name, row in (("delta", delta), ("pickle-engine", pickle_engine)):
        table.add(
            name,
            f"{row['small_s'] * 1e3:,.2f}",
            f"{row['grown_s'] * 1e3:,.2f}",
            f"{row['ratio']:.2f}x",
        )

    wire = Table(
        "delta protocol bytes per probe commit (both state levels)",
        ["probe", "bytes"],
    )
    for index, count in enumerate(delta["bytes"]):
        level = "small" if index < PROBES else "grown"
        wire.add(f"{level} #{index % PROBES}", f"{count:,}")

    report(
        table,
        "ipc.txt",
        extra_tables=[wire],
        meta={
            "query": str(QUERY),
            "shards": SHARDS,
            "batch": BATCH,
            "probes": PROBES,
            "state_small": STATE_SMALL,
            "growth": GROWTH,
            "delta_flat_bound": DELTA_FLAT_BOUND,
            "pickle_degradation_floor": PICKLE_DEGRADATION_FLOOR,
            "bytes_flat_bound": BYTES_FLAT_BOUND,
        },
    )

    # Gate 1: the delta protocol's per-commit time is flat in state.
    assert delta["ratio"] <= DELTA_FLAT_BOUND, (
        f"delta per-commit time grew {delta['ratio']:.2f}x with state "
        f"(bound {DELTA_FLAT_BOUND}x)"
    )
    # Gate 2: the old path demonstrably degrades with state (if it ever
    # stops degrading, the oracle comparison below has lost its point).
    assert pickle_engine["ratio"] >= PICKLE_DEGRADATION_FLOOR, (
        f"pickle-engine per-commit time grew only "
        f"{pickle_engine['ratio']:.2f}x; expected >= "
        f"{PICKLE_DEGRADATION_FLOOR}x — did the oracle path change?"
    )
    # Gate 3: bytes per commit scale with the batch only.
    low, high = min(delta["bytes"]), max(delta["bytes"])
    assert high <= BYTES_FLAT_BOUND * low, (
        f"delta bytes per commit ranged {low:,}..{high:,} across a "
        f"{GROWTH}x state growth (bound {BYTES_FLAT_BOUND}x)"
    )
    assert delta["state"] == pickle_engine["state"]  # same workload
