"""Epoch snapshot reads vs commit-lock reads under sustained writes.

The tentpole claim of the epoch read model: because ``lookup`` answers
from the last *published* epoch instead of serializing on the commit
lock, read tail latency decouples from commit duration.  Under a
sustained group-commit write load with large batches (each commit holds
the lock for a macroscopic stretch), a lock-serialized reader's p99 is
the commit duration itself, while a snapshot reader's p99 stays at
in-memory probe cost.

Both configurations drive the identical closed loop — writer tasks
split one update stream, reader tasks run point lookups non-stop until
the final drain — differing only in the server's ``snapshot_reads``
flag.  Read latencies are *measured samples* (``perf_counter`` around
each awaited lookup), not histogram buckets, so the p99s below are
exact order statistics.

Differential gate (asserted below): both configurations commit the same
stream, so their final enumerations must be bit-identical — and the
snapshot run's served reads must match a serial replay of the committed
prefix at every probe (enforced tuple-by-tuple in tests/test_snapshot.py).

Acceptance gate (asserted below): snapshot-mode p99 point-lookup
latency is >= 5x lower than commit-lock-mode p99 under the same write
load.
"""

from __future__ import annotations

import asyncio
import random
import time

from repro.bench import Table
from repro.core.engine import IVMEngine
from repro.data import Database
from repro.query import parse_query
from repro.serve import AsyncIVMServer, update_stream, value_sampler

from _util import report

QUERY = "Q(Y, X, Z) = R(Y, X) * S(Y, Z)"
UPDATES = 24000
WRITERS = 2
READERS = 2
PREFILL = 2000
DOMAIN = 64
MAX_BATCH = 512
MAX_DELAY = 0.004
HIGH_WATER = 8192
SEED = 29

CONFIGS = (
    ("commit-lock reads", False),
    ("snapshot reads", True),
)


def _fresh_engine(query):
    rng = random.Random(SEED ^ 0xBEEF)
    value = value_sampler(rng, DOMAIN, "uniform")
    db = Database()
    for atom in query.atoms:
        if atom.relation not in db:
            db.create(atom.relation, atom.variables)
            for _ in range(PREFILL):
                db[atom.relation].add(
                    tuple(value() for _ in atom.variables), 1
                )
    return IVMEngine(query, db)


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(int(q * (len(ordered) - 1)), len(ordered) - 1)]


def _drive(query, snapshot_reads):
    engine = _fresh_engine(query)
    server = AsyncIVMServer(
        engine,
        max_batch=MAX_BATCH,
        max_delay=MAX_DELAY,
        high_water=HIGH_WATER,
        snapshot_reads=snapshot_reads,
    )
    stats = server.attach_stats()
    updates = list(update_stream(query, UPDATES, domain=DOMAIN, seed=SEED))
    head_width = len(query.head)
    samples: list[float] = []

    async def run():
        done = False

        async def writer(chunk):
            for update in chunk:
                await server.submit(update)

        async def reader(index):
            rng = random.Random(SEED + 101 * index)
            while not done:
                key = tuple(
                    rng.randrange(DOMAIN) for _ in range(head_width)
                )
                start = time.perf_counter()
                await server.lookup(key)
                samples.append(time.perf_counter() - start)
                await asyncio.sleep(0)

        async with server:
            readers = [
                asyncio.get_running_loop().create_task(reader(i))
                for i in range(READERS)
            ]
            start = time.perf_counter()
            await asyncio.gather(
                *(writer(updates[i::WRITERS]) for i in range(WRITERS))
            )
            await server.drain()
            elapsed = time.perf_counter() - start
            done = True
            await asyncio.gather(*readers)
            return elapsed

    elapsed = asyncio.run(run())
    # A lock-serialized reader only lands ~one sample per commit cycle
    # (that is the pathology being measured), so the floor is modest.
    assert len(samples) >= 50, "reader loop barely ran; bench is broken"
    return {
        "rate": UPDATES / elapsed,
        "reads": len(samples),
        "read_p50": _percentile(samples, 0.50),
        "read_p99": _percentile(samples, 0.99),
        "read_max": max(samples),
        "commits": stats.commits,
        "output": sorted(engine.enumerate()),
    }, stats


def bench_snapshot(benchmark):
    benchmark.pedantic(_snapshot_table, rounds=1, iterations=1)


def _snapshot_table():
    query = parse_query(QUERY)
    table = Table(
        "epoch snapshot reads -- read tail latency vs commit-lock reads",
        [
            "configuration",
            "read p99 latency (ms)",
            "p99 speedup",
            "read p50 latency",
            "read max latency",
            "upd/s",
        ],
    )

    results = {}
    gated_stats = None
    for label, snapshot_reads in CONFIGS:
        summary, stats = _drive(query, snapshot_reads)
        results[label] = summary
        if snapshot_reads:
            gated_stats = stats

    # Differential gate: both configurations commit the same stream, so
    # the final views must be bit-identical.
    outputs = [summary.pop("output") for summary in results.values()]
    assert all(output == outputs[0] for output in outputs[1:])

    lock_p99 = results[CONFIGS[0][0]]["read_p99"]
    for label, _ in CONFIGS:
        summary = results[label]
        # The p50/max cells are informational: the "<=" prefix keeps
        # them out of benchdiff's numeric comparison (and their
        # "latency" column names keep them out of the row label), so
        # only p99 (ms), the speedup ratio, and upd/s are gated.
        table.add(
            label,
            f"{summary['read_p99'] * 1e3:.3f}",
            f"{lock_p99 / summary['read_p99']:.1f}x",
            f"<={summary['read_p50']:.2g}s",
            f"<={summary['read_max']:.2g}s",
            f"{summary['rate']:,.0f}",
        )

    report(
        table,
        "snapshot.txt",
        stats=gated_stats,
        meta={
            "query": QUERY,
            "updates": UPDATES,
            "writers": WRITERS,
            "readers": READERS,
            "prefill": PREFILL,
            "domain": DOMAIN,
            "max_batch": MAX_BATCH,
            "max_delay": MAX_DELAY,
            "high_water": HIGH_WATER,
            "seed": SEED,
            "results": {
                label: {
                    key: value
                    for key, value in summary.items()
                }
                for label, summary in results.items()
            },
        },
    )

    # Acceptance gate: decoupling reads from the commit lock cuts p99
    # point-lookup latency by >= 5x under the same sustained write load.
    snap_p99 = results[CONFIGS[1][0]]["read_p99"]
    assert lock_p99 / snap_p99 >= 5.0, {
        label: summary["read_p99"] for label, summary in results.items()
    }
