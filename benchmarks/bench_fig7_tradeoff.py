"""Fig. 7 / Example 5.1: the IVM^eps preprocessing/update/delay trade-off.

For ``Q(A) = SUM_B R(A,B) * S(B)`` — the simplest non-q-hierarchical
query — IVM^eps achieves O(N) preprocessing, O(N^eps) update time and
O(N^(1-eps)) enumeration delay, tracing the line between the eager
(eps=1) and lazy (eps=0) extremes in Fig. 7's trade-off space.

The bench sweeps eps on a skewed instance and reports measured elementary
operations: per-update cost should *rise* with eps while per-tuple delay
*falls*, crossing near eps = 1/2 — the weakly Pareto optimal point.
"""

from __future__ import annotations

import random

from repro.bench import Table, growth_exponent, time_call
from repro.data import Update, counting
from repro.ivme import TradeoffEngine

from _util import report

EPSILONS = [0.0, 0.25, 0.5, 0.75, 1.0]
N = 4000


def _skewed_updates(n, seed=0):
    """R tuples with Zipf-ish B degrees plus S tuples over the B domain."""
    rng = random.Random(seed)
    updates = []
    b_domain = max(4, int(n**0.6))
    for _ in range(n):
        # Low B values are heavy.
        b = min(int(rng.paretovariate(1.1)) - 1, b_domain - 1)
        updates.append(Update("R", (rng.randrange(n), b), 1))
    for b in range(b_domain):
        updates.append(Update("S", (b,), 1))
    return updates, b_domain


def bench_fig7_tradeoff_table(benchmark):
    benchmark.pedantic(_tradeoff_table, rounds=1, iterations=1)


def _tradeoff_table():
    load, b_domain = _skewed_updates(N)
    rng = random.Random(1)
    probes = [
        Update("S", (rng.randrange(b_domain),), 1) for _ in range(200)
    ] + [Update("R", (rng.randrange(N), rng.randrange(b_domain)), 1) for _ in range(200)]

    table = Table(
        "Fig. 7 -- IVM^eps trade-off for Q(A) = SUM_B R(A,B) * S(B)   (N = %d)" % N,
        ["eps", "preprocess s", "ops/update", "ops/output tuple", "output size"],
    )
    update_costs = []
    delays = []
    for eps in EPSILONS:
        engine = TradeoffEngine(epsilon=eps)
        seconds, _ = time_call(lambda: engine.apply_batch(load))
        with counting() as ops:
            for probe in probes:
                engine.apply(probe)
        per_update = ops.total() / len(probes)
        with counting() as ops:
            output_size = sum(1 for _ in engine.enumerate())
        per_tuple = ops.total() / max(output_size, 1)
        update_costs.append(per_update)
        delays.append(per_tuple)
        table.add(eps, seconds, per_update, per_tuple, output_size)
    report(table, "fig7_tradeoff.txt")

    # Paper shape: update cost grows with eps, delay falls with eps.
    assert update_costs[-1] > update_costs[0]
    assert delays[0] > delays[-1]


def bench_fig7_update_eps_half(benchmark):
    """Wall-clock single-tuple update at the Pareto point eps = 1/2."""
    load, b_domain = _skewed_updates(N // 2)
    engine = TradeoffEngine(epsilon=0.5)
    engine.apply_batch(load)
    rng = random.Random(2)

    def one_update():
        engine.apply(Update("S", (rng.randrange(b_domain),), 1))

    benchmark(one_update)
