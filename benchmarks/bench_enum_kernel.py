"""Compiled enumeration kernels vs the generic factorized walk.

``repro.viewtree.enumplan`` pre-compiles the constant-delay enumeration
of Section 4.1 (Theorem 4.1, Example 4.4) into an :class:`EnumPlan` —
a flat step schedule over slot arrays with itemgetter key assembly,
resolved group indexes, inlined zero tests, and an iterative
explicit-stack driver — the read-side twin of the write path's
``DeltaPlan``.  The asymptotics are untouched; the constant factor per
output tuple is the whole point.

This bench populates identical databases and drains full enumerations
through the compiled and the generic (``compile_enum=False``) engine on:

* a q-hierarchical query (``Q(Y,X,Z) = R(Y,X) * S(Y,Z)``) — the
  Theorem 4.1 constant-delay case, guard buckets plus one leaf probe
  per candidate;
* a hierarchical, non-q-hierarchical query
  (``Q(A,C) = R(A,B) * S(B,C)``) under a searched free-top order —
  deeper walk, bound-view probes on the inner step;

each under uniform and Zipf value distributions.  A second table times
prebound point lookups — the CQAP access-request shape of Section 4.3,
where every step is one O(1) guard probe.  Every compiled run is
differential-checked bit-identical against its generic twin (contents
for the full drains, per-request tuple lists for the prebound probes).

Acceptance gate: compiled >= 2x generic enumeration throughput on the
q-hierarchical workload (asserted below).
"""

from __future__ import annotations

import bisect
import itertools
import random
import time

from repro.bench import Table
from repro.data import Database
from repro.query import parse_query
from repro.query.variable_order import search_order
from repro.viewtree import ViewTreeEngine

from _util import report

#: Tuples loaded per relation before the engines are built.
RELATION_SIZE = 6000
DOMAIN = 400
ZIPF_S = 1.2
#: Full-enumeration drains per engine; the best rate is reported.
ROUNDS = 3
#: Prebound point lookups per engine (one per top-variable value).
LOOKUPS = DOMAIN

QUERIES = (
    ("q-hierarchical", "Q(Y, X, Z) = R(Y, X) * S(Y, Z)"),
    ("hierarchical", "Q(A, C) = R(A, B) * S(B, C)"),
)


def _sampler(rng, workload):
    if workload == "uniform":
        return lambda: rng.randrange(DOMAIN)
    weights = list(
        itertools.accumulate(1.0 / (k + 1) ** ZIPF_S for k in range(DOMAIN))
    )
    total = weights[-1]
    return lambda: min(
        bisect.bisect_left(weights, rng.random() * total), DOMAIN - 1
    )


def _fresh_db(query, workload, seed=13):
    rng = random.Random(seed)
    value = _sampler(rng, workload)
    db = Database()
    for atom in query.atoms:
        if atom.relation not in db.relations:
            db.create(atom.relation, atom.variables)
    for relation in db.relations.values():
        arity = len(relation.schema.variables)
        for _ in range(RELATION_SIZE):
            relation.add(tuple(value() for _ in range(arity)), 1)
    return db


def _order_for(query):
    from repro.query.properties import is_q_hierarchical

    if is_q_hierarchical(query):
        return None
    return search_order(query, require_free_top=True)


def _drain_rate(engine):
    """Best full-enumeration throughput (tuples/s) over ROUNDS drains."""
    best = 0.0
    for _ in range(ROUNDS):
        count = 0
        start = time.perf_counter()
        for _ in engine.enumerate():
            count += 1
        seconds = time.perf_counter() - start
        best = max(best, count / seconds if seconds > 0 else 0.0)
    return best


def _lookup_rate(engine, variable):
    """Prebound point-lookup throughput (requests/s) over the domain."""
    start = time.perf_counter()
    for value in range(LOOKUPS):
        for _ in engine.enumerate(prebound={variable: value}):
            pass
    seconds = time.perf_counter() - start
    return LOOKUPS / seconds if seconds > 0 else 0.0


def bench_enum_kernel(benchmark):
    benchmark.pedantic(_kernel_table, rounds=1, iterations=1)


def _kernel_table():
    table = Table(
        "compiled enumeration kernels -- full-drain throughput (tuples/s)",
        ["query", "workload", "tuples", "generic tuples/s",
         "compiled tuples/s", "speedup"],
    )
    lookup_table = Table(
        "compiled prebound point lookups -- access requests (req/s)",
        ["query", "variable", "generic req/s", "compiled req/s", "speedup"],
    )

    speedups = {}
    for label, text in QUERIES:
        query = parse_query(text)
        order = _order_for(query)
        for workload in ("uniform", "zipf"):
            db = _fresh_db(query, workload)
            generic = ViewTreeEngine(query, db, order, compile_enum=False)
            compiled = ViewTreeEngine(query, db, order)
            assert compiled.enum_compiled and not generic.enum_compiled
            # differential gate: the kernel must be invisible semantically
            # (same contents AND the same enumeration order)
            assert list(compiled.enumerate()) == list(generic.enumerate())
            generic_rate = _drain_rate(generic)
            compiled_rate = _drain_rate(compiled)
            tuples = sum(1 for _ in compiled.enumerate())
            speedup = compiled_rate / generic_rate
            speedups[(label, workload)] = speedup
            table.add(
                label,
                workload,
                f"{tuples:,}",
                f"{generic_rate:,.0f}",
                f"{compiled_rate:,.0f}",
                f"{speedup:.2f}x",
            )

    # Prebound point lookups (the CQAP access-request shape): bind the
    # top free variable and answer one request per domain value.
    lookup_speedups = {}
    for label, text in QUERIES:
        query = parse_query(text)
        order = _order_for(query)
        db = _fresh_db(query, "uniform")
        generic = ViewTreeEngine(query, db, order, compile_enum=False)
        compiled = ViewTreeEngine(query, db, order)
        top = (compiled.order.roots[0].variable
               if order is None else order.roots[0].variable)
        # differential gate, per access request
        for value in range(0, LOOKUPS, 37):
            assert list(compiled.enumerate(prebound={top: value})) == list(
                generic.enumerate(prebound={top: value})
            )
        generic_rate = _lookup_rate(generic, top)
        compiled_rate = _lookup_rate(compiled, top)
        speedup = compiled_rate / generic_rate
        lookup_speedups[label] = speedup
        lookup_table.add(
            label,
            top,
            f"{generic_rate:,.0f}",
            f"{compiled_rate:,.0f}",
            f"{speedup:.2f}x",
        )

    report(
        table,
        "enum_kernel.txt",
        extra_tables=[lookup_table],
        meta={
            "queries": {label: text for label, text in QUERIES},
            "relation_size": RELATION_SIZE,
            "domain": DOMAIN,
            "zipf_s": ZIPF_S,
            "rounds": ROUNDS,
            "lookups": LOOKUPS,
        },
    )

    # Acceptance gate: >=2x on the q-hierarchical read path.
    assert speedups[("q-hierarchical", "uniform")] >= 2.0, speedups
