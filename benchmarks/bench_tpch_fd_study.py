"""Section 4.4's classification tables.

Table 1: the TPC-H study — how many of the 22 queries (Boolean and
non-Boolean skeletons) are hierarchical, and how many more become
hierarchical under the key FDs.  Paper numbers: 8 -> 12 Boolean,
13 -> 17 non-Boolean (on the original study's query set; our skeletons
drop nested subqueries, shifting the base counts but preserving the
+4/+4 FD increment).

Table 2: the RelationalAI observation — the fraction of a BI-style
workload that becomes q-hierarchical under FDs (76% in the paper's
project; measured here on the synthetic snowflake-chain workload).
"""

from __future__ import annotations

from repro.bench import Table
from repro.workloads import classify_tpch, fd_impact, random_workload

from _util import report


def bench_tpch_classification(benchmark):
    benchmark.pedantic(_tpch_table, rounds=1, iterations=1)


def _tpch_table():
    study = classify_tpch()
    table = Table(
        "Section 4.4 -- TPC-H skeletons: hierarchical without / with FDs",
        ["variant", "hierarchical", "+ FDs", "FD gains"],
    )
    for (variant, plain, with_fds), gains in zip(
        study.summary_rows(),
        [study.fd_gain_boolean, study.fd_gain_non_boolean],
    ):
        table.add(variant, plain, with_fds, ", ".join(gains))
    report(table, "tpch_fd_study.txt")
    # Paper shape: FDs add exactly four queries per variant.
    assert len(study.fd_gain_boolean) == 4
    assert len(study.fd_gain_non_boolean) == 4


def bench_workload_fd_impact(benchmark):
    benchmark.pedantic(_impact_table, rounds=1, iterations=1)


def _impact_table():
    impact = fd_impact(random_workload(2000, seed=42))
    table = Table(
        "Section 4.4 -- synthetic BI workload: q-hierarchical under FDs",
        ["total", "plain", "with FDs", "flipped", "flip fraction"],
    )
    table.add(
        impact.total,
        impact.q_hierarchical_plain,
        impact.q_hierarchical_with_fds,
        impact.flipped,
        f"{impact.flipped_fraction:.0%}",
    )
    report(table, "workload_fd_impact.txt")
    # Paper shape: a large majority flips (76% in the cited project).
    assert impact.flipped_fraction > 0.5
