"""Theorem 3.4: the OuMv -> triangle-detection reduction.

Algorithm B solves an OuMv round with O(n) updates to a triangle-IVM
engine plus one detection request.  With the IVM^eps engine's
O(N^(1/2)) = O(n) update time, a round costs ~O(n^2) — the same order as
the naive recomputation, which is exactly the point: a *sub*-O(N^(1/2))
engine would break the conjecture.  The bench verifies agreement and
reports per-round costs; the reduction's growth should track the naive
solver's (quadratic per round), not beat it.
"""

from __future__ import annotations

from repro.bench import Table, growth_exponent, time_call
from repro.lowerbounds import OuMvInstance, solve_oumv_via_ivm

from _util import report

SIZES = [8, 16, 32]
ROUNDS = 6


def bench_oumv_table(benchmark):
    benchmark.pedantic(_oumv_table, rounds=1, iterations=1)


def _oumv_table():
    table = Table(
        "Theorem 3.4 -- OuMv: naive O(n^3) vs the IVM triangle reduction",
        ["n", "naive s/round", "reduction s/round", "answers agree"],
    )
    naive_times, reduction_times, ns = [], [], []
    for n in SIZES:
        # Sparse matrix + dense vectors: mostly-negative answers force
        # the naive solver through its full O(n^2) scan per round.
        instance = OuMvInstance.random(
            n, density=1.0 / n, seed=n, rounds=ROUNDS, vector_density=0.6
        )
        naive_seconds, naive_answers = time_call(instance.solve_naive)
        red_seconds, red_answers = time_call(lambda: solve_oumv_via_ivm(instance))
        agree = naive_answers == red_answers
        table.add(n, naive_seconds / ROUNDS, red_seconds / ROUNDS, agree)
        ns.append(n)
        naive_times.append(max(naive_seconds, 1e-9))
        reduction_times.append(max(red_seconds, 1e-9))
        assert agree
    table.add(
        "growth exp",
        round(growth_exponent(ns, naive_times), 2),
        round(growth_exponent(ns, reduction_times), 2),
        "",
    )
    report(table, "oumv_reduction.txt")


def bench_oumv_round(benchmark):
    """One OuMv round through the reduction (n = 24)."""
    instance = OuMvInstance.random(24, density=0.2, seed=7, rounds=1)

    def one_round():
        solve_oumv_via_ivm(instance)

    benchmark(one_round)
