"""Command-line interface: classify queries and explain maintenance plans.

Usage::

    python -m repro classify "Q(Y,X,Z) = R(Y,X) * S(Y,Z)"
    python -m repro classify "Q(Z,Y,X,W) = R(X,W) * S(X,Y) * T(Y,Z)" \
        --fd "X -> Y" --fd "Y -> Z"
    python -m repro demo

``classify`` runs every syntactic classifier from the paper on the query
and prints the planner's chosen strategy with its complexity guarantees —
the Section 6 "effective guide" as a tool.
"""

from __future__ import annotations

import argparse
import sys

from .constraints.fds import FunctionalDependency, sigma_reduct
from .core.planner import plan_maintenance
from .cqap.fracture import is_tractable_cqap
from .query.hypergraph import is_alpha_acyclic, is_free_connex
from .query.parser import parse_query
from .query.properties import is_hierarchical, is_q_hierarchical
from .staticdyn.analysis import is_static_dynamic_tractable


def _yesno(value: bool) -> str:
    return "yes" if value else "no"


def classify(text: str, fd_texts: list[str], insert_only: bool) -> int:
    query = parse_query(text)
    fds = tuple(FunctionalDependency.parse(t) for t in fd_texts)
    print(f"query: {query}")
    print()
    print(f"  self-join free:        {_yesno(query.is_self_join_free())}")
    print(f"  alpha-acyclic:         {_yesno(is_alpha_acyclic(query))}")
    print(f"  free-connex:           {_yesno(is_free_connex(query))}")
    print(f"  hierarchical:          {_yesno(is_hierarchical(query))}")
    print(f"  q-hierarchical:        {_yesno(is_q_hierarchical(query))}")
    if fds:
        reduct = sigma_reduct(query, fds)
        print(f"  Sigma-reduct:          {reduct}")
        print(f"  q-hier. under FDs:     {_yesno(is_q_hierarchical(reduct))}")
    if query.input_variables:
        print(f"  tractable CQAP:        {_yesno(is_tractable_cqap(query))}")
    if query.static_atoms:
        print(
            f"  static/dyn tractable:  "
            f"{_yesno(is_static_dynamic_tractable(query))}"
        )
    print()
    plan = plan_maintenance(query, fds, insert_only)
    print(f"plan: {plan.strategy}")
    print(f"  because:       {plan.reason}")
    print(f"  preprocessing: {plan.preprocessing_time}")
    print(f"  update time:   {plan.update_time}")
    print(f"  enum. delay:   {plan.enumeration_delay}")

    # Static per-relation analysis of the default view-tree order.
    try:
        from .query.analysis import analyse_order
        from .query.variable_order import order_for

        analysis = analyse_order(order_for(query))
    except Exception:  # cyclic orders etc. still work; be permissive here
        analysis = None
    if analysis is not None:
        print()
        print(analysis.render())
    return 0


def demo() -> int:
    """Replay the paper's Fig. 2 / Example 3.1 worked example."""
    from .data.database import Database
    from .data.update import Update
    from .delta.engine import DeltaQueryEngine

    db = Database()
    r = db.create("R", ("A", "B"))
    s = db.create("S", ("B", "C"))
    t = db.create("T", ("C", "A"))
    for relation, rows in (
        (r, {("a1", "b1"): 1, ("a2", "b1"): 3}),
        (s, {("b1", "c1"): 2, ("b1", "c2"): 1}),
        (t, {("c1", "a1"): 1, ("c2", "a2"): 2, ("c2", "a1"): 1}),
    ):
        for key, payload in rows.items():
            relation.add(key, payload)

    query = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
    engine = DeltaQueryEngine(query, db)
    print("Fig. 2 -- the triangle count example")
    print()
    for relation in (r, s, t):
        print(relation.pretty())
        print()
    print(f"Q = {engine.scalar()}")
    print()
    print("update dR = {(a2, b1) -> -2}  (a delete of two copies)")
    engine.update(Update("R", ("a2", "b1"), -2))
    print(f"R(a2, b1) is now {r.get(('a2', 'b1'))}  (3 - 2 = 1)")
    print(f"Q = {engine.scalar()}  (was 9, delta = -4)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IVM query classification and maintenance planning",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    classify_parser = subparsers.add_parser(
        "classify", help="classify a query and print its maintenance plan"
    )
    classify_parser.add_argument("query", help='e.g. "Q(A) = R(A,B) * S(B)"')
    classify_parser.add_argument(
        "--fd",
        action="append",
        default=[],
        metavar="'X -> Y'",
        help="functional dependency (repeatable)",
    )
    classify_parser.add_argument(
        "--insert-only",
        action="store_true",
        help="assume an insert-only update stream (Section 4.6)",
    )

    subparsers.add_parser("demo", help="replay the Fig. 2 worked example")

    args = parser.parse_args(argv)
    if args.command == "classify":
        return classify(args.query, args.fd, args.insert_only)
    if args.command == "demo":
        return demo()
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
