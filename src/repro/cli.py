"""Command-line interface: classify queries and explain maintenance plans.

Usage::

    python -m repro classify "Q(Y,X,Z) = R(Y,X) * S(Y,Z)"
    python -m repro classify "Q(Z,Y,X,W) = R(X,W) * S(X,Y) * T(Y,Z)" \
        --fd "X -> Y" --fd "Y -> Z"
    python -m repro demo
    python -m repro stats "Q(A) = R(A,B) * S(B)" --updates 2000 \
        --json stats.json
    python -m repro stats "Q(A) = R(A,B) * S(B)" \
        --workload sliding-window --window 128 --batch-size 64
    python -m repro benchplot benchmarks/results/BENCH_*.json -o plots/
    python -m repro benchdiff OLD.json NEW.json --band 0.2

``classify`` runs every syntactic classifier from the paper on the query
and prints the planner's chosen strategy with its complexity guarantees —
the Section 6 "effective guide" as a tool.

``stats`` replays a synthetic workload against the planner's chosen
engine with a :class:`repro.obs.MaintenanceStats` recorder attached and
prints (or dumps as JSON) per-update latency, enumeration delay, delta
sizes, memory, and rebalance events — the observability layer as a tool.
``--no-compile`` forces the generic interpreted delta path for A/B runs
against the compiled kernels; ``--no-compile-enum`` does the same for
the read path (generic recursive enumeration instead of the compiled
EnumPlan kernel); ``--no-codegen`` keeps the compiled plans but runs
them interpreted instead of as exec-generated source kernels.

``explain`` prints the chosen plan, and with ``--kernel-source`` dumps
the generated Python source of every delta/enumeration kernel the plan
would run — the ground truth for what the codegen layer executes.

``benchplot`` renders ``repro.bench/1`` JSON records as grouped bar
charts — PNG when matplotlib is available, ASCII bar tables otherwise,
so the plotting layer works in the dependency-free CI container.

``benchdiff`` compares two ``repro.bench/1`` JSON records (the
``benchmarks/results/BENCH_*.json`` files) and exits non-zero when a
throughput or ops metric regresses beyond the noise band — the CI
regression gate.
"""

from __future__ import annotations

import argparse
import sys

from .constraints.fds import FunctionalDependency, sigma_reduct
from .core.planner import plan_maintenance
from .cqap.fracture import is_tractable_cqap
from .query.hypergraph import is_alpha_acyclic, is_free_connex
from .query.parser import parse_query
from .query.properties import is_hierarchical, is_q_hierarchical
from .staticdyn.analysis import is_static_dynamic_tractable


def _yesno(value: bool) -> str:
    return "yes" if value else "no"


def classify(text: str, fd_texts: list[str], insert_only: bool) -> int:
    query = parse_query(text)
    fds = tuple(FunctionalDependency.parse(t) for t in fd_texts)
    print(f"query: {query}")
    print()
    print(f"  self-join free:        {_yesno(query.is_self_join_free())}")
    print(f"  alpha-acyclic:         {_yesno(is_alpha_acyclic(query))}")
    print(f"  free-connex:           {_yesno(is_free_connex(query))}")
    print(f"  hierarchical:          {_yesno(is_hierarchical(query))}")
    print(f"  q-hierarchical:        {_yesno(is_q_hierarchical(query))}")
    if fds:
        reduct = sigma_reduct(query, fds)
        print(f"  Sigma-reduct:          {reduct}")
        print(f"  q-hier. under FDs:     {_yesno(is_q_hierarchical(reduct))}")
    if query.input_variables:
        print(f"  tractable CQAP:        {_yesno(is_tractable_cqap(query))}")
    if query.static_atoms:
        print(
            f"  static/dyn tractable:  "
            f"{_yesno(is_static_dynamic_tractable(query))}"
        )
    print()
    plan = plan_maintenance(query, fds, insert_only)
    print(f"plan: {plan.strategy}")
    print(f"  because:       {plan.reason}")
    print(f"  preprocessing: {plan.preprocessing_time}")
    print(f"  update time:   {plan.update_time}")
    print(f"  enum. delay:   {plan.enumeration_delay}")

    # Static per-relation analysis of the default view-tree order.
    try:
        from .query.analysis import analyse_order
        from .query.variable_order import order_for

        analysis = analyse_order(order_for(query))
    except Exception:  # cyclic orders etc. still work; be permissive here
        analysis = None
    if analysis is not None:
        print()
        print(analysis.render())
    return 0


def demo() -> int:
    """Replay the paper's Fig. 2 / Example 3.1 worked example."""
    from .data.database import Database
    from .data.update import Update
    from .delta.engine import DeltaQueryEngine

    db = Database()
    r = db.create("R", ("A", "B"))
    s = db.create("S", ("B", "C"))
    t = db.create("T", ("C", "A"))
    for relation, rows in (
        (r, {("a1", "b1"): 1, ("a2", "b1"): 3}),
        (s, {("b1", "c1"): 2, ("b1", "c2"): 1}),
        (t, {("c1", "a1"): 1, ("c2", "a2"): 2, ("c2", "a1"): 1}),
    ):
        for key, payload in rows.items():
            relation.add(key, payload)

    query = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
    engine = DeltaQueryEngine(query, db)
    print("Fig. 2 -- the triangle count example")
    print()
    for relation in (r, s, t):
        print(relation.pretty())
        print()
    print(f"Q = {engine.scalar()}")
    print()
    print("update dR = {(a2, b1) -> -2}  (a delete of two copies)")
    engine.update(Update("R", ("a2", "b1"), -2))
    print(f"R(a2, b1) is now {r.get(('a2', 'b1'))}  (3 - 2 = 1)")
    print(f"Q = {engine.scalar()}  (was 9, delta = -4)")
    return 0


def _make_value_sampler(rng, domain: int, workload: str, zipf_s: float):
    """A ``() -> int`` attribute-value sampler for the chosen workload.

    Shared with the serving load generator — see
    :func:`repro.serve.loadgen.value_sampler` for the shapes.
    """
    from .serve.loadgen import value_sampler

    return value_sampler(rng, domain, workload, zipf_s)


def run_stats(
    text: str,
    fd_texts: list[str],
    insert_only: bool,
    updates: int,
    prefill: int,
    domain: int,
    seed: int,
    batch: int,
    enum_interval: int,
    json_path: str | None,
    shards: int = 1,
    shard_executor: str = "thread",
    shard_ipc: str = "delta",
    workload: str = "uniform",
    zipf_s: float = 1.2,
    compile_plans: bool = True,
    compile_enum: bool = True,
    codegen: bool = True,
    window: int = 256,
) -> int:
    """Replay a synthetic workload and print/dump the stats recorder."""
    import random
    import time
    from collections import deque

    from .constraints.fds import FunctionalDependency
    from .core.engine import IVMEngine
    from .data.database import Database
    from .data.update import Update
    from .obs import write_stats_json
    from .shard.engine import ShardedEngine

    query = parse_query(text)
    fds = tuple(FunctionalDependency.parse(t) for t in fd_texts)
    rng = random.Random(seed)
    value = _make_value_sampler(
        rng,
        domain,
        "uniform" if workload == "sliding-window" else workload,
        zipf_s,
    )

    db = Database()
    static_names = {atom.relation for atom in getattr(query, "static_atoms", ())}
    arities: dict[str, int] = {}
    dynamic: list[str] = []
    for atom in query.atoms:
        if atom.relation not in arities:
            db.create(atom.relation, atom.variables)
            arities[atom.relation] = len(atom.variables)
            if atom.relation not in static_names:
                dynamic.append(atom.relation)
    if not dynamic:
        print("query has no dynamic relations; nothing to replay")
        return 1

    def random_key(relation: str) -> tuple:
        return tuple(value() for _ in range(arities[relation]))

    for name in arities:
        for _ in range(prefill):
            db[name].add(random_key(name), 1)

    plan = plan_maintenance(
        query,
        fds,
        insert_only,
        shards=shards,
        compile_plans=compile_plans,
        compile_enum=compile_enum,
        codegen=codegen,
    )
    engine = IVMEngine(
        query,
        db,
        fds,
        insert_only,
        plan=plan,
        shards=shards,
        shard_executor=shard_executor,
        shard_ipc=shard_ipc,
        compile_plans=compile_plans,
        compile_enum=compile_enum,
        codegen=codegen,
    )
    stats = engine.attach_stats()
    deletes_ok = not insert_only and plan.strategy != "insert-only"
    can_enumerate = not query.input_variables
    sharded = isinstance(engine.backend, ShardedEngine)
    # Batches of ``--batch`` go through ``apply_batch``: the sharded
    # coordinator splits once and runs shards in parallel, the view-tree
    # family coalesces and runs the compiled batch kernel.  ``--batch 1``
    # forces the per-update path (except for sharded plans, where the
    # per-update path would serialize the coordinator).
    batched = sharded or batch > 1

    if workload == "sliding-window" and not deletes_ok:
        print("--workload sliding-window needs deletes (drop --insert-only)")
        return 1

    enum_seconds = 0.0

    def drain() -> None:
        nonlocal enum_seconds
        begin = time.perf_counter()
        for _ in engine.enumerate():
            pass
        enum_seconds += time.perf_counter() - begin

    # A valid update stream: deletes only retract still-live insertions,
    # so multiplicities stay non-negative and enumeration stays sound.
    # ``sliding-window`` keeps a FIFO of the last ``--window`` insertions
    # and emits the matching delete as each tuple falls out of the window
    # — the paired insert/delayed-delete shape that rewards batch
    # coalescing whenever the window wraps within one batch.
    live: dict[str, list[tuple]] = {name: [] for name in dynamic}
    fifo: deque[tuple[str, tuple]] = deque()
    pending: list[Update] = []
    start = time.perf_counter()
    try:
        for index in range(updates):
            relation = dynamic[rng.randrange(len(dynamic))]
            if workload == "sliding-window":
                if len(fifo) >= max(window, 1):
                    relation, key = fifo.popleft()
                    update = Update(relation, key, -1)
                else:
                    key = random_key(relation)
                    fifo.append((relation, key))
                    update = Update(relation, key, 1)
            else:
                keys = live[relation]
                if deletes_ok and keys and rng.random() < 0.25:
                    key = keys.pop(rng.randrange(len(keys)))
                    update = Update(relation, key, -1)
                else:
                    key = random_key(relation)
                    keys.append(key)
                    update = Update(relation, key, 1)
            if batched:
                pending.append(update)
                if len(pending) >= max(batch, 1):
                    engine.apply_batch(pending)
                    pending.clear()
            else:
                engine.apply(update)
            if (
                can_enumerate
                and enum_interval
                and (index + 1) % (max(batch, 1) * enum_interval) == 0
            ):
                if pending:
                    engine.apply_batch(pending)
                    pending.clear()
                drain()
        if pending:
            engine.apply_batch(pending)
            pending.clear()
        if can_enumerate:
            drain()
        seconds = time.perf_counter() - start
        if sharded:
            stats = engine.backend.merged_stats()
    finally:
        # Close unconditionally: an exception mid-replay must not leak
        # the sharded backend's process-pool workers.
        close = getattr(engine.backend, "close", None)
        if close is not None:
            close()

    print(f"query: {query}")
    print(f"plan:  {plan}")
    shape = ""
    if workload == "zipf":
        shape = f" (s={zipf_s})"
    elif workload == "sliding-window":
        shape = f" (window={window})"
    print(f"workload: {workload}{shape}")
    print()
    print(stats.render())
    print()
    # ``seconds`` includes the periodic drain() enumerations, so the
    # end-to-end rate undersells pure maintenance throughput; report
    # both so benchdiff compares like with like.
    maintenance_seconds = max(seconds - enum_seconds, 0.0)
    rate_maintenance = (
        updates / maintenance_seconds if maintenance_seconds > 0 else 0.0
    )
    rate_end_to_end = updates / seconds if seconds > 0 else 0.0
    print(
        f"replayed {updates} updates in {seconds:.3f}s "
        f"({rate_maintenance:,.0f} upd/s maintenance-only, "
        f"{rate_end_to_end:,.0f} upd/s end-to-end incl. "
        f"{enum_seconds:.3f}s enumeration)"
    )
    if json_path:
        written = write_stats_json(
            json_path,
            stats,
            meta={
                "query": str(query),
                "plan": plan.strategy,
                "updates": updates,
                "prefill": prefill,
                "domain": domain,
                "seed": seed,
                "seconds": seconds,
                "seconds_maintenance": maintenance_seconds,
                "seconds_enumeration": enum_seconds,
                "rate_maintenance": rate_maintenance,
                "rate_end_to_end": rate_end_to_end,
                "shards": shards,
                "shard_executor": shard_executor if shards > 1 else None,
                "shard_ipc": (
                    shard_ipc
                    if shards > 1 and shard_executor == "process"
                    else None
                ),
                "workload": workload,
                "zipf_s": zipf_s if workload == "zipf" else None,
                "window": window if workload == "sliding-window" else None,
                "batch": batch,
                "compiled": plan.compiled,
                "enum_compiled": plan.enum_kernel,
                "codegen": plan.codegen,
            },
        )
        print(f"stats written to {written}")
    return 0


def run_explain(
    text: str,
    fd_texts: list[str],
    insert_only: bool,
    kernel_source: bool,
) -> int:
    """Print the maintenance plan, optionally with generated kernel source.

    Kernel source is a pure function of the plan *shape* (step structure
    plus ring identity), so the dump over empty relations is exactly the
    code a populated engine of the same shape executes — deterministic
    output that tests pin.
    """
    from .constraints.fds import FunctionalDependency
    from .core.engine import IVMEngine
    from .cqap.engine import CQAPEngine
    from .data.database import Database
    from .shard.engine import ShardedEngine
    from .viewtree.engine import ViewTreeEngine

    query = parse_query(text)
    fds = tuple(FunctionalDependency.parse(t) for t in fd_texts)
    plan = plan_maintenance(query, fds, insert_only)
    print(f"query: {query}")
    print(f"plan:  {plan}")
    if not kernel_source:
        return 0
    if not plan.codegen:
        print()
        print("no generated kernels: the plan runs without codegen")
        return 0

    db = Database()
    for atom in query.atoms:
        if atom.relation not in db:
            db.create(atom.relation, atom.variables)
    engine = IVMEngine(query, db, fds, insert_only, plan=plan)
    backend = engine.backend
    # One tree is enough: shards and fracture components share kernel
    # shapes, so the first engine's source is the whole story.
    if isinstance(backend, ShardedEngine):
        trees = backend.engines[:1]
    elif isinstance(backend, CQAPEngine):
        trees = backend.engines
    elif isinstance(backend, ViewTreeEngine):
        trees = [backend]
    else:
        trees = []
    dumped = 0
    for index, tree in enumerate(trees):
        prefix = f"component {index} " if len(trees) > 1 else ""
        for name in sorted(tree._kernels):
            for anchor, kernel in enumerate(tree._kernels[name]):
                if kernel is None:
                    continue
                print()
                print(f"-- {prefix}delta kernel {name}[{anchor}] --")
                print(kernel.source.rstrip("\n"))
                dumped += 1
        if tree._enum_kernel is not None:
            print()
            print(f"-- {prefix}enum kernel --")
            print(tree._enum_kernel.source.rstrip("\n"))
            dumped += 1
    if not dumped:
        print()
        print("no generated kernels: every plan fell back to the interpreter")
    return 0


def run_serve(
    text: str,
    fd_texts: list[str],
    updates: int,
    writers: int,
    readers: int,
    prefill: int,
    domain: int,
    seed: int,
    max_batch: int,
    max_delay_ms: float,
    high_water: int,
    json_path: str | None,
    shards: int = 1,
    shard_executor: str = "thread",
    shard_ipc: str = "delta",
    workload: str = "uniform",
    zipf_s: float = 1.2,
    window: int = 256,
    per_update: bool = False,
    smoke: bool = False,
    snapshot_reads: bool | None = None,
    codegen: bool = True,
    change_feed: bool = False,
) -> int:
    """Closed-loop load test against the async serving front-end."""
    import asyncio

    from .constraints.fds import FunctionalDependency
    from .core.engine import IVMEngine
    from .data.database import Database
    from .obs import write_stats_json
    from .serve import AsyncIVMServer, run_load_test
    from .shard.engine import ShardedEngine

    query = parse_query(text)
    fds = tuple(FunctionalDependency.parse(t) for t in fd_texts)
    if query.input_variables:
        print("serve needs an enumerable query (no input variables)")
        return 1
    if smoke:
        updates = min(updates, 500)

    import random

    rng = random.Random(seed ^ 0xF111)
    value = _make_value_sampler(
        rng,
        domain,
        "uniform" if workload == "sliding-window" else workload,
        zipf_s,
    )
    db = Database()
    static_names = {atom.relation for atom in getattr(query, "static_atoms", ())}
    dynamic = []
    for atom in query.atoms:
        if atom.relation not in db:
            db.create(atom.relation, atom.variables)
            if atom.relation not in static_names:
                dynamic.append(atom.relation)
            for _ in range(prefill):
                db[atom.relation].add(
                    tuple(value() for _ in atom.variables), 1
                )
    if not dynamic:
        print("query has no dynamic relations; nothing to serve")
        return 1

    plan = plan_maintenance(query, fds, shards=shards, codegen=codegen)
    engine = IVMEngine(
        query,
        db,
        fds,
        plan=plan,
        shards=shards,
        shard_executor=shard_executor,
        shard_ipc=shard_ipc,
        codegen=codegen,
    )
    if per_update:
        max_batch, max_delay_ms = 1, 0.0
    server = AsyncIVMServer(
        engine,
        max_batch=max_batch,
        max_delay=max_delay_ms / 1000.0,
        high_water=high_water,
        snapshot_reads=snapshot_reads,
    )
    stats = server.attach_stats()

    async def run() -> dict:
        async with server:
            return await run_load_test(
                server,
                query,
                updates,
                writers=writers,
                readers=readers,
                domain=domain,
                seed=seed,
                workload=workload,
                zipf_s=zipf_s,
                window=window,
                deletes_ok=plan.strategy != "insert-only",
                change_feed=change_feed,
            )

    sharded = isinstance(engine.backend, ShardedEngine)
    try:
        summary = asyncio.run(run())
        if sharded:
            stats = engine.backend.merged_stats()
    finally:
        close = getattr(engine.backend, "close", None)
        if close is not None:
            close()

    print(f"query: {query}")
    print(f"plan:  {plan}")
    shape = ""
    if workload == "zipf":
        shape = f" (s={zipf_s})"
    elif workload == "sliding-window":
        shape = f" (window={window})"
    print(f"workload: {workload}{shape}")
    reads_mode = "epoch snapshots" if server.snapshot_reads else "commit lock"
    print(
        f"serving:  {writers} writers + {readers} readers, "
        f"max_batch={max_batch} max_delay={max_delay_ms:g}ms "
        f"high_water={high_water} reads={reads_mode}"
    )
    print()
    print(stats.render())
    print()
    print(
        f"served {updates} updates in {summary['seconds']:.3f}s "
        f"({summary['rate_maintenance']:,.0f} upd/s maintenance-only, "
        f"{summary['rate_end_to_end']:,.0f} upd/s end-to-end)"
    )
    print(
        f"commit latency p50<={summary['commit_p50']:.2g}s "
        f"p99<={summary['commit_p99']:.2g}s; "
        f"read staleness p50<={summary['staleness_p50']:.2g}s "
        f"p99<={summary['staleness_p99']:.2g}s "
        f"over {summary['reads']} reads"
    )
    if "feed_deltas" in summary:
        verdict = "identical" if summary["maintained_ok"] else "MISMATCH"
        print(
            f"change feed: {summary['feed_deltas']} deltas "
            f"({summary['feed_tuples']} tuples, "
            f"{summary['feed_gaps']} gaps); maintained state of "
            f"{summary['maintained_entries']} entries {verdict} "
            f"to a fresh drain"
        )
        if not summary["maintained_ok"]:
            return 1
    if json_path:
        written = write_stats_json(
            json_path,
            stats,
            meta={
                "mode": "serve",
                "query": str(query),
                "plan": plan.strategy,
                "shards": shards,
                "shard_executor": shard_executor if shards > 1 else None,
                "shard_ipc": (
                    shard_ipc
                    if shards > 1 and shard_executor == "process"
                    else None
                ),
                "workload": workload,
                "zipf_s": zipf_s if workload == "zipf" else None,
                "window": window if workload == "sliding-window" else None,
                "prefill": prefill,
                "domain": domain,
                "seed": seed,
                "max_batch": max_batch,
                "max_delay_ms": max_delay_ms,
                "high_water": high_water,
                "per_update": per_update,
                "snapshot_reads": server.snapshot_reads,
                "codegen": plan.codegen,
                **summary,
            },
        )
        print(f"stats written to {written}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IVM query classification and maintenance planning",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    classify_parser = subparsers.add_parser(
        "classify", help="classify a query and print its maintenance plan"
    )
    classify_parser.add_argument("query", help='e.g. "Q(A) = R(A,B) * S(B)"')
    classify_parser.add_argument(
        "--fd",
        action="append",
        default=[],
        metavar="'X -> Y'",
        help="functional dependency (repeatable)",
    )
    classify_parser.add_argument(
        "--insert-only",
        action="store_true",
        help="assume an insert-only update stream (Section 4.6)",
    )

    subparsers.add_parser("demo", help="replay the Fig. 2 worked example")

    stats_parser = subparsers.add_parser(
        "stats",
        help="replay a synthetic workload and report maintenance statistics",
    )
    stats_parser.add_argument("query", help='e.g. "Q(A) = R(A,B) * S(B)"')
    stats_parser.add_argument(
        "--fd", action="append", default=[], metavar="'X -> Y'",
        help="functional dependency (repeatable)",
    )
    stats_parser.add_argument(
        "--insert-only", action="store_true",
        help="generate an insert-only update stream",
    )
    stats_parser.add_argument(
        "--updates", type=int, default=2000, help="stream length (default 2000)"
    )
    stats_parser.add_argument(
        "--prefill", type=int, default=50,
        help="tuples preloaded per relation before planning (default 50)",
    )
    stats_parser.add_argument(
        "--domain", type=int, default=10,
        help="attribute value domain size (default 10)",
    )
    stats_parser.add_argument("--seed", type=int, default=0)
    stats_parser.add_argument(
        "--batch", "--batch-size", dest="batch", type=int, default=100,
        help="batch size routed through apply_batch; 1 forces the "
        "per-update path (default 100)",
    )
    stats_parser.add_argument(
        "--enum-interval", type=int, default=4,
        help="full enumeration every N batches; 0 disables (default 4)",
    )
    stats_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also dump the recorder as repro.obs/1 JSON",
    )
    stats_parser.add_argument(
        "--shards", type=int, default=1,
        help="hash-partition view-tree maintenance across N shards "
        "(default 1 = unsharded)",
    )
    stats_parser.add_argument(
        "--shard-executor",
        choices=("serial", "thread", "process"),
        default="thread",
        help="shard executor: in-process serial/thread pools, or "
        "persistent worker processes (default thread)",
    )
    stats_parser.add_argument(
        "--ipc",
        choices=("delta", "pickle-engine"),
        default="delta",
        help="process-executor wire protocol: delta-only persistent "
        "workers, or the legacy ship-the-engine-per-batch oracle "
        "(default delta)",
    )
    stats_parser.add_argument(
        "--workload",
        choices=("uniform", "zipf", "sliding-window"),
        default="uniform",
        help="stream shape: uniform / zipf value distributions, or "
        "sliding-window insert+delayed-delete pairs (default uniform)",
    )
    stats_parser.add_argument(
        "--zipf-s", type=float, default=1.2,
        help="Zipf skew exponent for --workload zipf (default 1.2)",
    )
    stats_parser.add_argument(
        "--window", type=int, default=256,
        help="tuples kept live by --workload sliding-window (default 256)",
    )
    stats_parser.add_argument(
        "--no-compile", action="store_true",
        help="disable the compiled delta-plan fast path (A/B against the "
        "generic interpreter)",
    )
    stats_parser.add_argument(
        "--no-compile-enum", action="store_true",
        help="disable the compiled enumeration kernel (A/B against the "
        "generic recursive walk)",
    )
    stats_parser.add_argument(
        "--no-codegen", action="store_true",
        help="run the compiled plans interpreted instead of as "
        "exec-generated source kernels (A/B against codegen)",
    )

    explain_parser = subparsers.add_parser(
        "explain",
        help="print the maintenance plan; --kernel-source dumps the "
        "generated kernel code",
    )
    explain_parser.add_argument("query", help='e.g. "Q(A) = R(A,B) * S(B)"')
    explain_parser.add_argument(
        "--fd", action="append", default=[], metavar="'X -> Y'",
        help="functional dependency (repeatable)",
    )
    explain_parser.add_argument(
        "--insert-only", action="store_true",
        help="assume an insert-only update stream (Section 4.6)",
    )
    explain_parser.add_argument(
        "--kernel-source", action="store_true",
        help="dump the generated Python source of every delta/enum kernel",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="closed-loop load test of the async group-commit serving "
        "front-end (concurrent writers + readers)",
    )
    serve_parser.add_argument("query", help='e.g. "Q(A) = R(A,B) * S(B)"')
    serve_parser.add_argument(
        "--fd", action="append", default=[], metavar="'X -> Y'",
        help="functional dependency (repeatable)",
    )
    serve_parser.add_argument(
        "--updates", type=int, default=5000,
        help="total updates across all writers (default 5000)",
    )
    serve_parser.add_argument(
        "--writers", type=int, default=4,
        help="concurrent writer tasks (default 4)",
    )
    serve_parser.add_argument(
        "--readers", type=int, default=2,
        help="concurrent point-lookup reader tasks (default 2)",
    )
    serve_parser.add_argument(
        "--prefill", type=int, default=50,
        help="tuples preloaded per relation (default 50)",
    )
    serve_parser.add_argument(
        "--domain", type=int, default=16,
        help="attribute value domain size (default 16)",
    )
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--max-batch", type=int, default=256,
        help="group-commit size trigger (default 256)",
    )
    serve_parser.add_argument(
        "--max-delay", type=float, default=2.0, metavar="MS",
        help="group-commit latency trigger in milliseconds (default 2)",
    )
    serve_parser.add_argument(
        "--high-water", type=int, default=4096,
        help="queue depth at which submit() blocks (default 4096)",
    )
    serve_parser.add_argument(
        "--shards", type=int, default=1,
        help="hash-partition maintenance across N shards (default 1)",
    )
    serve_parser.add_argument(
        "--shard-executor",
        choices=("serial", "thread", "process"),
        default="thread",
        help="shard executor: in-process serial/thread pools, or "
        "persistent worker processes (default thread)",
    )
    serve_parser.add_argument(
        "--ipc",
        choices=("delta", "pickle-engine"),
        default="delta",
        help="process-executor wire protocol: delta-only persistent "
        "workers, or the legacy ship-the-engine-per-batch oracle "
        "(default delta)",
    )
    serve_parser.add_argument(
        "--workload",
        choices=("uniform", "zipf", "sliding-window"),
        default="uniform",
        help="stream shape (default uniform)",
    )
    serve_parser.add_argument("--zipf-s", type=float, default=1.2)
    serve_parser.add_argument("--window", type=int, default=256)
    serve_parser.add_argument(
        "--per-update", action="store_true",
        help="commit every update individually (max_batch=1, no "
        "deadline) — the group-commit A/B baseline",
    )
    serve_parser.add_argument(
        "--no-codegen", action="store_true",
        help="run the compiled plans interpreted instead of as "
        "exec-generated source kernels (A/B against codegen)",
    )
    serve_parser.add_argument(
        "--no-snapshot-reads", action="store_true",
        help="serialize reads against commits instead of answering from "
        "the last published epoch (the pre-epoch read model)",
    )
    serve_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="dump the recorder (with the serving block) as repro.obs/1 "
        "JSON",
    )
    serve_parser.add_argument(
        "--smoke", action="store_true",
        help="clamp to a short CI-sized run (at most 500 updates)",
    )
    serve_parser.add_argument(
        "--change-feed", action="store_true",
        help="attach a change-feed subscriber that applies every "
        "per-epoch output delta and verifies the maintained state "
        "against a fresh drain (exit 1 on mismatch)",
    )

    plot_parser = subparsers.add_parser(
        "benchplot",
        help="render repro.bench/1 JSON records as charts (PNG, or ASCII "
        "when matplotlib is unavailable)",
    )
    plot_parser.add_argument(
        "records", nargs="+", metavar="BENCH.json",
        help="one or more repro.bench/1 JSON records",
    )
    plot_parser.add_argument(
        "-o", "--out", default="plots",
        help="output directory (default plots/)",
    )
    plot_parser.add_argument(
        "--ascii", action="store_true",
        help="force the ASCII renderer even when matplotlib is installed",
    )

    diff_parser = subparsers.add_parser(
        "benchdiff",
        help="diff two repro.bench/1 JSON records; exit 1 on regressions",
    )
    diff_parser.add_argument("old", help="baseline BENCH_*.json")
    diff_parser.add_argument("new", help="candidate BENCH_*.json")
    diff_parser.add_argument(
        "--band", type=float, default=0.2,
        help="relative noise band before a bad move counts as a "
        "regression (default 0.2 = ±20%%)",
    )

    args = parser.parse_args(argv)
    if args.command == "classify":
        return classify(args.query, args.fd, args.insert_only)
    if args.command == "demo":
        return demo()
    if args.command == "stats":
        return run_stats(
            args.query,
            args.fd,
            args.insert_only,
            args.updates,
            args.prefill,
            args.domain,
            args.seed,
            args.batch,
            args.enum_interval,
            args.json,
            args.shards,
            args.shard_executor,
            args.ipc,
            args.workload,
            args.zipf_s,
            compile_plans=not args.no_compile,
            compile_enum=not args.no_compile_enum,
            codegen=not args.no_codegen,
            window=args.window,
        )
    if args.command == "explain":
        return run_explain(
            args.query, args.fd, args.insert_only, args.kernel_source
        )
    if args.command == "serve":
        return run_serve(
            args.query,
            args.fd,
            args.updates,
            args.writers,
            args.readers,
            args.prefill,
            args.domain,
            args.seed,
            args.max_batch,
            args.max_delay,
            args.high_water,
            args.json,
            args.shards,
            args.shard_executor,
            args.ipc,
            args.workload,
            args.zipf_s,
            args.window,
            per_update=args.per_update,
            smoke=args.smoke,
            snapshot_reads=False if args.no_snapshot_reads else None,
            codegen=not args.no_codegen,
            change_feed=args.change_feed,
        )
    if args.command == "benchplot":
        from .bench.plot import benchplot

        return benchplot(args.records, args.out, ascii_only=args.ascii)
    if args.command == "benchdiff":
        from .bench.diff import benchdiff

        return benchdiff(args.old, args.new, band=args.band)
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
