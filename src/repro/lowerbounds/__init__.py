"""Lower-bound machinery: OuMv and the Theorem 3.4 reduction (§3.4)."""

from .oumv import OuMvInstance, paper_example_instance, solve_oumv_via_ivm

__all__ = ["OuMvInstance", "paper_example_instance", "solve_oumv_via_ivm"]
