"""The OuMv problem and its reduction to IVM triangle detection (§3.4).

The Online Vector-Matrix-Vector multiplication problem (Definition 3.3):
given a Boolean n x n matrix M and an online sequence of n vector pairs
(u_r, v_r), output ``u_r^T M v_r`` after seeing each pair.  The OuMv
conjecture states no algorithm solves it in O(n^(3-gamma)) total time.

Theorem 3.4's reduction turns a fast triangle-detection IVM algorithm
into a fast OuMv algorithm: encode M into S once, then per round encode
u_r into R and v_r into T with O(n) updates and read off the Boolean
query value.  This module implements

* :class:`OuMvInstance` — generation and a naive O(n^3) solver;
* :func:`solve_oumv_via_ivm` — the reduction of Theorem 3.4, driving any
  triangle-count maintenance engine (the IVM^epsilon counter by default).

The benchmark compares the reduction (with the O(sqrt(N)) = O(n) update
counter) against the naive per-round O(n^2) recomputation, exhibiting the
sub-cubic vs cubic separation on which the lower bound rests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from ..data.update import Update
from ..ivme.triangle import TriangleCounter


@dataclass
class OuMvInstance:
    """One OuMv instance: matrix M and the online pair sequence."""

    n: int
    matrix: list[list[bool]]
    pairs: list[tuple[list[bool], list[bool]]]

    @classmethod
    def random(
        cls,
        n: int,
        density: float = 0.3,
        seed: int = 0,
        rounds: int | None = None,
        vector_density: float | None = None,
    ) -> "OuMvInstance":
        """A random instance; ``vector_density`` defaults to ``density``.

        Hard instances for the naive solver pair sparse matrices (mostly
        negative answers, no early exit) with dense vectors (full scans).
        """
        rng = random.Random(seed)
        if vector_density is None:
            vector_density = density
        matrix = [[rng.random() < density for _ in range(n)] for _ in range(n)]
        pairs = []
        for _ in range(rounds if rounds is not None else n):
            u = [rng.random() < vector_density for _ in range(n)]
            v = [rng.random() < vector_density for _ in range(n)]
            pairs.append((u, v))
        return cls(n, matrix, pairs)

    def solve_naive(self) -> list[bool]:
        """Per round, compute u^T M v directly: O(n^2) per round, O(n^3)
        total — the baseline the conjecture says cannot be beaten by a
        polynomial factor."""
        answers = []
        for u, v in self.pairs:
            hit = False
            for i in range(self.n):
                if not u[i]:
                    continue
                row = self.matrix[i]
                for j in range(self.n):
                    if row[j] and v[j]:
                        hit = True
                        break
                if hit:
                    break
            answers.append(hit)
        return answers


class TriangleMaintainer(Protocol):
    """Anything that maintains the triangle count under updates."""

    def apply(self, update: Update) -> None: ...

    def detect(self) -> bool: ...


def solve_oumv_via_ivm(
    instance: OuMvInstance,
    make_engine: Callable[[], TriangleMaintainer] | None = None,
) -> list[bool]:
    """Algorithm B of Theorem 3.4: solve OuMv with a triangle-IVM engine.

    Construction: ``S(i, j) = M[i, j]``; per round ``r``,
    ``R(a, i) = u_r[i]`` and ``T(j, a) = v_r[j]`` for one constant ``a``.
    Then ``u_r^T M v_r`` equals the Boolean triangle query.  Each round
    performs at most 4n updates; with an engine whose update time is
    O(N^(1/2)) = O(n), total time is O(n^3) in this pure-Python setting
    but O(n^(3 - 2*gamma)) for any O(N^(1/2 - gamma)) engine — the
    contradiction the conjecture forbids.
    """
    if make_engine is None:
        make_engine = lambda: TriangleCounter(epsilon=0.5)
    engine = make_engine()
    anchor = "a"

    # Step 1: encode the matrix into S (at most n^2 inserts).
    for i in range(instance.n):
        row = instance.matrix[i]
        for j in range(instance.n):
            if row[j]:
                engine.apply(Update("S", (i, j), 1))

    answers = []
    previous_u: list[bool] = [False] * instance.n
    previous_v: list[bool] = [False] * instance.n
    for u, v in instance.pairs:
        # Steps 2a/2b: delete the old vectors, insert the new ones (at
        # most 4n updates; we only touch changed positions).
        for i in range(instance.n):
            if previous_u[i] and not u[i]:
                engine.apply(Update("R", (anchor, i), -1))
            elif u[i] and not previous_u[i]:
                engine.apply(Update("R", (anchor, i), 1))
        for j in range(instance.n):
            if previous_v[j] and not v[j]:
                engine.apply(Update("T", (j, anchor), -1))
            elif v[j] and not previous_v[j]:
                engine.apply(Update("T", (j, anchor), 1))
        previous_u, previous_v = list(u), list(v)
        # Step 2c: one detection request.
        answers.append(engine.detect())
    return answers


def paper_example_instance() -> tuple[OuMvInstance, bool]:
    """The worked 3x3 example from Section 3.4 (single round).

    u = (0,1,0), M = [[0,1,0],[1,0,0],[0,0,1]], v = (1,0,0); the answer
    is True, witnessed by R(a,2), S(2,1), T(1,a).
    """
    matrix = [
        [False, True, False],
        [True, False, False],
        [False, False, True],
    ]
    u = [False, True, False]
    v = [True, False, False]
    instance = OuMvInstance(3, matrix, [(u, v)])
    return instance, True
