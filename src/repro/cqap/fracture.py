"""Fractures of queries with free access patterns (Definition 4.7).

The fracture rewires a CQAP so that each connected component gets its own
copy of every input variable:

1. replace every *occurrence* of an input variable by a fresh variable;
2. compute the connected components of the modified query;
3. within each component, merge the fresh variables that originate from
   the same input variable into one fresh input variable.

The CQAP is *tractable* iff its fracture is hierarchical, free-dominant,
and input-dominant (Theorem 4.8).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..query.ast import Atom, Query
from ..query.properties import (
    is_free_dominant,
    is_hierarchical,
    is_input_dominant,
)


@dataclass(frozen=True)
class Fracture:
    """A fractured CQAP: one component query per connected component.

    ``input_origin`` maps each fresh input variable (e.g. ``A__2``) back
    to the original input variable it copies (``A``); output variables
    keep their names.
    """

    original: Query
    components: tuple[Query, ...]
    input_origin: dict[str, str]

    def combined(self) -> Query:
        """All components as one (disconnected) query, for classification."""
        atoms: list[Atom] = []
        head: list[str] = []
        inputs: list[str] = []
        for component in self.components:
            atoms.extend(component.atoms)
            head.extend(component.head)
            inputs.extend(component.input_variables)
        return Query(
            f"{self.original.name}_fracture",
            tuple(head),
            tuple(atoms),
            tuple(inputs),
        )


def fracture(query: Query) -> Fracture:
    """Compute the fracture of a CQAP (Definition 4.7)."""
    inputs = set(query.input_variables)
    # Step 1: a fresh variable per occurrence of each input variable.
    fresh_atoms: list[Atom] = []
    occurrence_origin: dict[str, str] = {}
    counter = 0
    for atom in query.atoms:
        new_vars = []
        for var in atom.variables:
            if var in inputs:
                counter += 1
                fresh = f"{var}__o{counter}"
                occurrence_origin[fresh] = var
                new_vars.append(fresh)
            else:
                new_vars.append(var)
        fresh_atoms.append(Atom(atom.relation, tuple(new_vars), atom.static))

    # Step 2: connected components of the modified query.
    modified = Query(query.name, (), tuple(fresh_atoms))
    component_queries = modified.connected_components()

    # Step 3: within each component, merge occurrences of the same input
    # variable into a single fresh input variable.
    components: list[Query] = []
    input_origin: dict[str, str] = {}
    for index, component in enumerate(component_queries):
        renaming: dict[str, str] = {}
        merged_inputs: list[str] = []
        for var in sorted(component.variables()):
            origin = occurrence_origin.get(var)
            if origin is None:
                continue
            merged = f"{origin}__c{index}"
            renaming[var] = merged
            if merged not in input_origin:
                input_origin[merged] = origin
                merged_inputs.append(merged)
        atoms = tuple(
            Atom(
                a.relation,
                tuple(renaming.get(v, v) for v in a.variables),
                a.static,
            )
            for a in component.atoms
        )
        component_vars = {v for a in atoms for v in a.variables}
        outputs = tuple(
            v for v in query.output_variables if v in component_vars
        )
        head = outputs + tuple(merged_inputs)
        components.append(
            Query(
                f"{query.name}_f{index}",
                head,
                atoms,
                tuple(merged_inputs),
            )
        )
    return Fracture(query, tuple(components), input_origin)


def is_tractable_cqap(query: Query) -> bool:
    """Theorem 4.8's syntactic criterion for CQAP tractability."""
    fractured = fracture(query).combined()
    return (
        is_hierarchical(fractured)
        and is_free_dominant(fractured)
        and is_input_dominant(fractured)
    )
