"""Conjunctive queries with free access patterns (Section 4.3)."""

from .engine import CQAPEngine
from .fracture import Fracture, fracture, is_tractable_cqap

__all__ = ["CQAPEngine", "Fracture", "fracture", "is_tractable_cqap"]
