"""Maintenance of tractable CQAPs (Section 4.3, Theorem 4.8).

A tractable CQAP is maintained component-wise over its fracture: each
fracture component is hierarchical with input variables on top, so its
canonical variable order yields a view tree with O(1) single-tuple
updates.  An access request binds the input variables; the engine probes
each component's view tree with the bound inputs (O(1) guard lookups for
the input prefix) and enumerates the component's output variables with
constant delay, combining components by cross product.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from ..data.database import Database
from ..data.update import Update, coalesce
from ..obs import Observable, observed, share_stats
from ..query.ast import Query
from ..query.variable_order import canonical_order
from ..rings.lifting import LiftingMap
from .fracture import Fracture, fracture, is_tractable_cqap
from ..viewtree.engine import ViewTreeEngine


class CQAPEngine(Observable):
    """View-tree maintenance + access requests for a tractable CQAP."""

    def __init__(
        self,
        query: Query,
        database: Database,
        lifting: LiftingMap | None = None,
        compile_enum: bool = True,
        codegen: bool = True,
    ):
        if not query.input_variables:
            raise ValueError(
                "query has no input variables; use ViewTreeEngine directly"
            )
        if not is_tractable_cqap(query):
            raise ValueError(
                f"{query.name} is not a tractable CQAP (Theorem 4.8); its "
                "fracture is not hierarchical + free-dominant + input-dominant"
            )
        self.query = query
        self.database = database
        self.ring = database.ring
        self.fracture: Fracture = fracture(query)
        self.engines: list[ViewTreeEngine] = []
        for component in self.fracture.components:
            order = canonical_order(component)
            self.engines.append(
                ViewTreeEngine(
                    component, database, order, lifting,
                    compile_enum=compile_enum,
                    codegen=codegen,
                )
            )
        self._relations = frozenset(a.relation for a in query.atoms)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _propagate_stats(self, stats) -> None:
        for engine in self.engines:
            share_stats(engine, stats)

    @observed
    def apply(self, update: Update) -> None:
        """O(1) single-tuple update, propagated into every component."""
        if update.relation not in self._relations:
            raise KeyError(f"relation {update.relation!r} not in the query")
        if update.relation in self.database:
            self.database[update.relation].add(update.key, update.payload)
        for engine in self.engines:
            engine.apply(update, update_base=False)

    @observed
    def apply_batch(self, batch) -> None:
        """Coalesced batch maintenance across the fracture's components.

        The batch lands on the shared base once, then every component
        engine runs it through its own (compiled) batch path; components
        ignore relations outside their anchors.
        """
        batch = coalesce(batch, self.ring)
        for update in batch:
            if update.relation not in self._relations:
                raise KeyError(f"relation {update.relation!r} not in the query")
        for update in batch:
            if update.relation in self.database:
                self.database[update.relation].add(update.key, update.payload)
        for engine in self.engines:
            engine.apply_batch(batch, update_base=False)

    # ------------------------------------------------------------------
    # Access requests
    # ------------------------------------------------------------------

    def answer(
        self, inputs: Mapping[str, Any] | Sequence[Any]
    ) -> Iterator[tuple[tuple, Any]]:
        """Answer one access request.

        ``inputs`` binds the query's input variables (a mapping, or a
        sequence in ``query.input_variables`` order).  Yields tuples over
        ``query.output_variables`` with their payloads, with constant
        delay for tractable CQAPs.
        """
        if not isinstance(inputs, Mapping):
            values = tuple(inputs)
            if len(values) != len(self.query.input_variables):
                raise ValueError(
                    f"expected {len(self.query.input_variables)} input "
                    f"values, got {len(values)}"
                )
            inputs = dict(zip(self.query.input_variables, values))
        else:
            missing = set(self.query.input_variables) - set(inputs)
            if missing:
                raise ValueError(f"missing input values for {sorted(missing)}")

        output_vars = self.query.output_variables
        binding: dict[str, Any] = {}

        def rec(index: int, payload: Any) -> Iterator[tuple[tuple, Any]]:
            if self.ring.is_zero(payload):
                return
            if index == len(self.engines):
                yield tuple(binding[v] for v in output_vars), payload
                return
            engine = self.engines[index]
            component = self.fracture.components[index]
            prebound = {
                fresh: inputs[self.fracture.input_origin[fresh]]
                for fresh in component.input_variables
            }
            outputs = [
                v for v in component.head if v not in prebound
            ]
            for key, factor in engine.enumerate(prebound):
                for var, value in zip(component.head, key):
                    if var in outputs:
                        binding[var] = value
                yield from rec(index + 1, self.ring.mul(payload, factor))
            for var in outputs:
                binding.pop(var, None)

        yield from rec(0, self.ring.one)

    def answer_boolean(self, inputs) -> bool:
        """Convenience for CQAPs with no output variables: is the payload
        of the (single) answer non-zero?  (Example 4.6's triangle check.)"""
        for _key, payload in self.answer(inputs):
            return not self.ring.is_zero(payload)
        return False
