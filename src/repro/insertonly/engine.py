"""Insert-only maintenance of alpha-acyclic joins (Section 4.6).

For insert-only update streams, every alpha-acyclic join query can be
maintained with *amortized constant* time per single-tuple insert and
constant-delay enumeration — even queries (like the path join) that are
not q-hierarchical and therefore cannot achieve this under insert-delete
streams (Theorem 4.1).

The engine keeps a join tree (one node per atom) with a semi-join
calibration that only ever *grows*:

* a tuple is **alive** when, for every child atom, at least one alive
  child tuple joins with it;
* inserting a tuple computes its alive status with one lookup per child;
* when a node's alive-group for some join key becomes non-empty for the
  first time, the parent tuples with that key gain one unit of support —
  work that touches each parent tuple at most once per child over the
  whole stream, because under insert-only semantics alive sets never
  shrink.  Total work is therefore O(#inserts), i.e. amortized O(1).

Enumeration descends alive tuples from the root with constant delay,
yielding the full join (set semantics: every tuple that joins).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..data.opcounter import COUNTER
from ..obs import Observable, observed
from ..data.update import Update
from ..query.ast import Atom, Query
from ..query.hypergraph import JoinTreeNode, build_join_tree


class _NodeState:
    """Runtime state for one join-tree node (one atom)."""

    __slots__ = (
        "atom",
        "children",
        "parent",
        "shared_with_parent",
        "tuples",
        "alive_groups",
        "parent_groups",
    )

    def __init__(self, atom: Atom):
        self.atom = atom
        self.children: list[_NodeState] = []
        self.parent: Optional[_NodeState] = None
        self.shared_with_parent: tuple[str, ...] = ()
        #: key -> number of children currently supporting it.
        self.tuples: dict[tuple, int] = {}
        #: alive keys grouped by the projection shared with the parent.
        self.alive_groups: dict[tuple, dict[tuple, None]] = {}
        #: my keys grouped by the projection shared with each child
        #: (child index -> group key -> keys); used to notify my tuples
        #: when a child group activates.
        self.parent_groups: list[dict[tuple, dict[tuple, None]]] = []

    def project(self, key: tuple, variables: tuple[str, ...]) -> tuple:
        positions = [self.atom.variables.index(v) for v in variables]
        return tuple(key[i] for i in positions)


class InsertOnlyEngine(Observable):
    """Amortized O(1) insert-only maintenance for alpha-acyclic joins."""

    def __init__(self, query: Query):
        if not query.is_self_join_free():
            raise ValueError("insert-only engine requires a self-join-free query")
        forest = build_join_tree(query)
        if forest is None:
            raise ValueError(f"{query.name} is not alpha-acyclic")
        self.query = query
        self.roots: list[_NodeState] = []
        self._by_relation: dict[str, _NodeState] = {}
        for root in forest:
            self.roots.append(self._build(root, None))

    def _build(self, tree: JoinTreeNode, parent: Optional[_NodeState]) -> _NodeState:
        state = _NodeState(tree.atom)
        state.parent = parent
        if parent is not None:
            state.shared_with_parent = tuple(
                v for v in tree.atom.variables if v in parent.atom.variables
            )
        self._by_relation[tree.atom.relation] = state
        for child in tree.children:
            child_state = self._build(child, state)
            state.children.append(child_state)
            state.parent_groups.append({})
        return state

    # ------------------------------------------------------------------
    # Inserts
    # ------------------------------------------------------------------

    def insert(self, relation: str, key: tuple) -> None:
        """Insert one tuple (multiplicities are ignored: set semantics)."""
        node = self._by_relation.get(relation)
        if node is None:
            raise KeyError(f"relation {relation!r} not in query {self.query.name}")
        if key in node.tuples:
            return
        supported = 0
        COUNTER.bump("write")
        for index, child in enumerate(node.children):
            COUNTER.bump("lookup")
            shared = child.shared_with_parent
            group_key = node.project(key, shared)
            node.parent_groups[index].setdefault(group_key, {})[key] = None
            if child.alive_groups.get(group_key):
                supported += 1
        node.tuples[key] = supported
        if supported == len(node.children):
            self._activate(node, key)

    @observed
    def apply(self, update: Update) -> None:
        """Update-protocol adapter; rejects deletes (insert-only setting)."""
        try:
            negative = update.payload < 0
        except TypeError:
            negative = False
        if negative:
            raise ValueError(
                "InsertOnlyEngine only supports inserts; for insert-delete "
                "streams use the view-tree or delta engines"
            )
        self.insert(update.relation, update.key)

    def _activate(self, node: _NodeState, key: tuple) -> None:
        """Mark ``key`` alive and propagate group activations upward."""
        group_key = node.project(key, node.shared_with_parent)
        group = node.alive_groups.setdefault(group_key, {})
        first = not group
        group[key] = None
        parent = node.parent
        if parent is None or not first:
            return
        # The group just activated: every parent tuple joining it gains
        # one supporting child.  Each parent tuple experiences this at
        # most once per child over the whole insert-only stream.
        child_index = parent.children.index(node)
        parent_bucket = parent.parent_groups[child_index].get(group_key)
        if not parent_bucket:
            return
        for parent_key in parent_bucket:
            COUNTER.bump("write")
            parent.tuples[parent_key] += 1
            if parent.tuples[parent_key] == len(parent.children):
                self._activate(parent, parent_key)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def alive_count(self, relation: str) -> int:
        node = self._by_relation[relation]
        return sum(len(g) for g in node.alive_groups.values())

    def is_nonempty(self) -> bool:
        """Boolean query answer: does the join have any result?"""
        return all(
            any(root.alive_groups.values()) for root in self.roots
        )

    def enumerate(self) -> Iterator[tuple]:
        """Enumerate the full join (tuples over all variables, in the
        order the variables first appear across atoms) with constant
        delay per output tuple."""
        variables: list[str] = []
        for atom in self.query.atoms:
            for var in atom.variables:
                if var not in variables:
                    variables.append(var)
        binding: dict[str, Any] = {}

        def assign(node: _NodeState, key: tuple) -> list[str]:
            new_vars = []
            for var, value in zip(node.atom.variables, key):
                if var not in binding:
                    binding[var] = value
                    new_vars.append(var)
            return new_vars

        def full(index: int, nodes: list[_NodeState]) -> Iterator[tuple]:
            if nodes:
                node = nodes[0]
                rest = nodes[1:]
                group_key = tuple(binding[v] for v in node.shared_with_parent)
                group = node.alive_groups.get(group_key)
                if not group:
                    return
                for key in group:
                    new_vars = assign(node, key)
                    yield from full(index, list(node.children) + rest)
                    for var in new_vars:
                        del binding[var]
                return
            if index == len(self.roots):
                yield tuple(binding[v] for v in variables)
                return
            root = self.roots[index]
            yield from full(index + 1, [root])

        yield from full(0, [])
