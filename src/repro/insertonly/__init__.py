"""Insert-only maintenance (Section 4.6)."""

from .engine import InsertOnlyEngine

__all__ = ["InsertOnlyEngine"]
