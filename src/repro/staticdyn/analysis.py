"""Static vs dynamic relations: tractability analysis (Section 4.5).

When some relations are declared static (never updated), queries beyond
the q-hierarchical class admit O(1) single-tuple updates and O(1) delay.
The view-tree criterion from the paper: there must exist a free-top
variable order in which, along every dynamic atom's leaf-to-root path,
each sibling source's schema is covered by the variables the propagated
single-tuple delta has already bound — then every propagation step is a
constant number of lookups.

:func:`constant_update_atoms` performs that static analysis on a given
order; :func:`find_static_dynamic_order` searches the order space for one
where *all* dynamic atoms pass.  This covers the paper's Example 4.14
(including the variant needing a static-static join at preprocessing) but
not the exponential-preprocessing extreme of its last example, which is
out of scope for view trees.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, Optional

from ..query.ast import Atom, Query
from ..query.variable_order import (
    VariableOrder,
    VarOrderNode,
    validate_order,
)


def constant_update_atoms(order: VariableOrder) -> set[Atom]:
    """The atoms whose single-tuple updates propagate in O(1) lookups.

    Thin wrapper over :func:`repro.query.analysis.update_cost_bounds`,
    which implements the anchor-to-root sibling-coverage walk.
    """
    from ..query.analysis import update_cost_bounds

    return {bound.atom for bound in update_cost_bounds(order) if bound.constant}


def _all_orders(
    query: Query,
    atoms: tuple[Atom, ...],
    local_vars: frozenset[str],
    bound: frozenset[str],
    free: frozenset[str],
    require_free_top: bool,
) -> Iterator[VarOrderNode]:
    """All variable-order subtrees for one connected component."""
    local_free = sorted(local_vars & free)
    candidates = local_free if (require_free_top and local_free) else sorted(local_vars)
    for variable in candidates:
        remaining = local_vars - {variable}
        new_bound = bound | {variable}
        anchored = [
            a
            for a in atoms
            if not (set(a.variables) & remaining) and variable in a.variables
        ]
        dangling = [
            a
            for a in atoms
            if not (set(a.variables) & remaining) and variable not in a.variables
        ]
        if dangling:
            continue
        open_atoms = [a for a in atoms if set(a.variables) & remaining]
        components = _split_components(open_atoms, remaining)
        child_choices = [
            list(
                _all_orders(
                    query,
                    tuple(comp_atoms),
                    frozenset(comp_vars),
                    new_bound,
                    free,
                    require_free_top,
                )
            )
            for comp_atoms, comp_vars in components
        ]
        if any(not choices for choices in child_choices):
            continue
        for combo in _product(child_choices):
            node = VarOrderNode(variable)
            node.atoms.extend(anchored)
            node.children.extend(combo)
            yield node


def _product(choices: list[list[VarOrderNode]]) -> Iterator[list[VarOrderNode]]:
    if not choices:
        yield []
        return
    for head in choices[0]:
        for tail in _product(choices[1:]):
            yield [_clone(head)] + tail


def _clone(node: VarOrderNode) -> VarOrderNode:
    copy = VarOrderNode(node.variable)
    copy.atoms.extend(node.atoms)
    copy.children.extend(_clone(c) for c in node.children)
    return copy


def _split_components(atoms, variables):
    remaining = list(atoms)
    result = []
    while remaining:
        seed = remaining.pop(0)
        component = [seed]
        vars_seen = set(seed.variables) & variables
        changed = True
        while changed:
            changed = False
            for atom in list(remaining):
                if vars_seen & set(atom.variables):
                    remaining.remove(atom)
                    component.append(atom)
                    vars_seen |= set(atom.variables) & variables
                    changed = True
        result.append((component, vars_seen))
    return result


def enumerate_orders(
    query: Query, require_free_top: bool = True, limit: int = 100_000
) -> Iterator[VariableOrder]:
    """All (up to ``limit``) valid variable orders for the query."""
    free = query.free_variables
    component_queries = query.connected_components()
    per_component = [
        list(
            _all_orders(
                query,
                component.atoms,
                frozenset(component.variables()),
                frozenset(),
                free,
                require_free_top,
            )
        )
        for component in component_queries
    ]

    def combos(index: int) -> Iterator[list[VarOrderNode]]:
        if index == len(per_component):
            yield []
            return
        for root in per_component[index]:
            for rest in combos(index + 1):
                yield [_clone(root)] + rest

    for roots in islice(combos(0), limit):
        yield validate_order(query, roots)


def find_static_dynamic_order(
    query: Query, limit: int = 100_000
) -> Optional[VariableOrder]:
    """A free-top order giving O(1) updates to every dynamic atom, if any.

    Static atoms never receive updates, so only the dynamic atoms need
    constant propagation paths.  Returns ``None`` when no order in the
    searched space qualifies.
    """
    dynamic = set(query.dynamic_atoms)
    if not dynamic:
        # Fully static query: any free-top order will do.
        for order in enumerate_orders(query, limit=1):
            return order
        return None
    for order in enumerate_orders(query, limit=limit):
        if dynamic <= constant_update_atoms(order):
            return order
    return None


def is_static_dynamic_tractable(query: Query, limit: int = 100_000) -> bool:
    """Does the (view-tree) mixed static/dynamic criterion hold?

    For all-dynamic queries this coincides with q-hierarchicality on the
    examples of Section 4.5; declaring relations static strictly enlarges
    the class.
    """
    return find_static_dynamic_order(query, limit) is not None
