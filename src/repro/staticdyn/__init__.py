"""Static versus dynamic relations (Section 4.5)."""

from .analysis import (
    constant_update_atoms,
    enumerate_orders,
    find_static_dynamic_order,
    is_static_dynamic_tractable,
)
from .engine import StaticDynamicEngine, StaticRelationUpdateError

__all__ = [
    "StaticDynamicEngine",
    "StaticRelationUpdateError",
    "constant_update_atoms",
    "enumerate_orders",
    "find_static_dynamic_order",
    "is_static_dynamic_tractable",
]
