"""Maintenance over mixed static/dynamic relations (Section 4.5)."""

from __future__ import annotations

from typing import Any, Iterator

from ..data.database import Database
from ..data.update import Update, coalesce
from ..obs import Observable, observed, share_stats
from ..query.ast import Query
from ..rings.lifting import LiftingMap
from ..viewtree.engine import ViewTreeEngine
from .analysis import find_static_dynamic_order


class StaticRelationUpdateError(RuntimeError):
    """An update targeted a relation adorned as static."""


class StaticDynamicEngine(Observable):
    """View-tree engine specialised for static/dynamic adornments.

    Views over static-only subtrees are computed once at preprocessing
    time (possibly superlinear, e.g. the static-static join of
    Example 4.14's second query) and never touched again; updates to
    dynamic relations propagate in O(1) when the query passes
    :func:`repro.staticdyn.analysis.is_static_dynamic_tractable`.
    """

    def __init__(
        self,
        query: Query,
        database: Database,
        lifting: LiftingMap | None = None,
        search_limit: int = 100_000,
    ):
        order = find_static_dynamic_order(query, limit=search_limit)
        if order is None:
            raise ValueError(
                f"{query.name} is not tractable in the static/dynamic "
                "setting (no free-top order gives constant dynamic updates)"
            )
        self.query = query
        self.order = order
        self.engine = ViewTreeEngine(query, database, order, lifting)
        self._static = frozenset(a.relation for a in query.static_atoms)
        self._dynamic = frozenset(a.relation for a in query.dynamic_atoms)
        overlap = self._static & self._dynamic
        if overlap:
            raise ValueError(
                f"relations {sorted(overlap)} appear both static and dynamic"
            )

    def _propagate_stats(self, stats) -> None:
        share_stats(self.engine, stats)

    @observed
    def apply(self, update: Update, update_base: bool = True) -> None:
        if update.relation in self._static:
            raise StaticRelationUpdateError(
                f"relation {update.relation!r} is adorned static"
            )
        self.engine.apply(update, update_base)

    @observed
    def apply_batch(self, batch) -> None:
        """Coalesced batch maintenance through the view-tree batch path."""
        batch = coalesce(batch, self.engine.ring)
        for update in batch:
            if update.relation in self._static:
                raise StaticRelationUpdateError(
                    f"relation {update.relation!r} is adorned static"
                )
        self.engine.apply_batch(batch)

    def enumerate(self) -> Iterator[tuple[tuple, Any]]:
        return self.engine.enumerate()

    def scalar(self) -> Any:
        return self.engine.scalar()
