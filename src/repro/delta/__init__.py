"""Delta queries: symbolic rules and the first-order IVM engine (§3.1)."""

from .engine import DeltaQueryEngine
from .expression import (
    Aggregate,
    Expression,
    Join,
    Leaf,
    Union,
    aggregate_all,
    from_query,
)

__all__ = [
    "Aggregate",
    "DeltaQueryEngine",
    "Expression",
    "Join",
    "Leaf",
    "Union",
    "aggregate_all",
    "from_query",
]
