"""Classical first-order IVM via delta queries (Section 3.1).

``DeltaQueryEngine`` maintains the materialized query output by evaluating
delta queries against the input database.  It supports:

* **eager** mode — every single-tuple update immediately triggers the
  delta query and refreshes the output (the textbook approach; O(N) per
  update for the triangle query, as derived in Example 3.1);
* **lazy** mode — updates are buffered into per-relation delta relations
  and drained on the next enumeration request, evaluating one batch delta
  query per touched relation (the ``lazy-list`` strategy of Fig. 4).

Self-joins are handled by the subset expansion of delta rule (2): for a
relation occurring ``k`` times, the delta query is the union over the
non-empty subsets of occurrences replaced by the delta relation.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

from ..data.database import Database
from ..data.relation import Relation
from ..data.update import Update
from ..naive.evaluator import evaluate
from ..obs import Observable, observed
from ..query.ast import Atom, Query
from ..rings.lifting import LiftingMap

_DELTA_PREFIX = "__delta__"


class DeltaQueryEngine(Observable):
    """First-order IVM: maintain ``query`` over ``database`` with deltas."""

    def __init__(
        self,
        query: Query,
        database: Database,
        lifting: LiftingMap | None = None,
        eager: bool = True,
    ):
        self.query = query
        self.database = database
        self.lifting = lifting if lifting is not None else LiftingMap(database.ring)
        self.eager = eager
        #: The materialized output; built once at preprocessing time.
        self.output = evaluate(query, database, self.lifting)
        self._pending: dict[str, Relation] = {}
        self._pending_order: list[str] = []
        #: Accumulated output change since the last delta enumeration
        #: (footnote 2 of the paper: *delta enumeration* yields only the
        #: tuples in the change to the query output).
        self._output_delta = Relation(
            f"d{query.name}", self.output.schema, database.ring
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    @observed
    def update(self, update: Update) -> None:
        """Process one single-tuple update."""
        if self.eager:
            delta = self._singleton_delta(update)
            self._propagate(update.relation, delta)
            self.database[update.relation].add(update.key, update.payload)
        else:
            self._buffer(update)

    @observed
    def update_batch(self, batch) -> None:
        for update in batch:
            self.update(update)

    def _singleton_delta(self, update: Update) -> Relation:
        relation = self.database[update.relation]
        delta = Relation(
            f"d{update.relation}", relation.schema, self.database.ring
        )
        delta.add(update.key, update.payload)
        return delta

    def _buffer(self, update: Update) -> None:
        delta = self._pending.get(update.relation)
        if delta is None:
            relation = self.database[update.relation]
            delta = Relation(
                f"d{update.relation}", relation.schema, self.database.ring
            )
            self._pending[update.relation] = delta
            self._pending_order.append(update.relation)
        delta.add(update.key, update.payload)

    def _propagate(self, relation_name: str, delta: Relation) -> None:
        """Add the delta query output for ``delta`` to the materialized output.

        Must be called *before* the delta is applied to the database (the
        delta rules reference the old relation states plus the delta).
        """
        occurrences = [
            i for i, atom in enumerate(self.query.atoms)
            if atom.relation == relation_name
        ]
        if not occurrences:
            return
        delta_name = _DELTA_PREFIX + relation_name
        overrides = {delta_name: delta}
        for size in range(1, len(occurrences) + 1):
            for subset in combinations(occurrences, size):
                atoms = list(self.query.atoms)
                for index in subset:
                    original = atoms[index]
                    atoms[index] = Atom(delta_name, original.variables)
                variant = Query(self.query.name, self.query.head, tuple(atoms))
                delta_out = evaluate(
                    variant, self.database, self.lifting, overrides
                )
                self.output.apply(delta_out)
                self._output_delta.apply(delta_out)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Drain buffered updates (lazy mode); no-op when nothing pending."""
        if not self._pending:
            return
        if not self.query.is_self_join_free() and len(self._pending_order) > 0:
            # Batch deltas with self-joins would need cross terms between
            # occurrences of the *same* batch; drain tuple by tuple instead.
            for name in self._pending_order:
                delta = self._pending[name]
                for key, payload in list(delta.items()):
                    single = Update(name, key, payload)
                    singleton = self._singleton_delta(single)
                    self._propagate(name, singleton)
                    self.database[name].add(key, payload)
        else:
            for name in self._pending_order:
                delta = self._pending[name]
                self._propagate(name, delta)
                self.database[name].apply(delta)
        self._pending = {}
        self._pending_order = []

    def enumerate(self) -> Iterator[tuple[tuple, object]]:
        """Enumerate the output tuples (draining pending updates first)."""
        self.refresh()
        yield from self.output.items()

    def result(self) -> Relation:
        """The current output as a relation (pending updates drained)."""
        self.refresh()
        return self.output

    def enumerate_delta(self) -> Iterator[tuple[tuple, object]]:
        """Delta enumeration (footnote 2): yield only the net change to
        the output since the previous delta enumeration, then reset.

        A key may appear with a negative payload (net retraction).  Keys
        whose inserts and deletes cancelled out are not reported.
        """
        self.refresh()
        delta = self._output_delta
        self._output_delta = Relation(
            delta.name, delta.schema, self.database.ring
        )
        yield from delta.items()

    def scalar(self):
        """The single payload of a Boolean query's output."""
        if self.query.head:
            raise ValueError("scalar() requires an empty-head query")
        self.refresh()
        return self.output.get(())
