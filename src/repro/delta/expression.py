"""Symbolic view expressions and the delta rules (1)-(3) of Section 3.1.

A view expression is built from relation leaves with union, join, and
aggregation operators.  ``delta(expr, relation)`` applies the paper's
rewrite rules::

    (1)  d(V1 (+) V2)  =  dV1 (+) dV2
    (2)  d(V1 . V2)    =  (dV1 . V2) (+) (V1 . dV2) (+) (dV1 . dV2)
    (3)  d(SUM_X V)    =  SUM_X dV

Leaves over relations other than the updated one have empty deltas, and
the simplifier prunes joins with an empty-delta factor (``V . {} = {}``)
and unions with empty members, reproducing the derivation of Example 3.1.

Expressions can also be *evaluated* against a database plus a delta
binding, which is how tests check that the symbolic derivation and the
operational engines agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..data.database import Database
from ..data.relation import Relation
from ..data.schema import Schema
from ..rings.lifting import LiftingMap


class Expression:
    """Base class for view expressions."""

    def schema(self) -> tuple[str, ...]:
        raise NotImplementedError

    def delta(self, relation: str) -> Optional["Expression"]:
        """The delta expression w.r.t. an update to ``relation``.

        Returns ``None`` for the empty delta (the expression does not
        depend on the updated relation).
        """
        raise NotImplementedError

    def evaluate(
        self,
        database: Database,
        deltas: Mapping[str, Relation] | None = None,
        lifting: LiftingMap | None = None,
    ) -> Relation:
        raise NotImplementedError

    # Operator sugar mirroring the paper's notation.
    def __mul__(self, other: "Expression") -> "Join":
        return Join(self, other)

    def __add__(self, other: "Expression") -> "Union":
        return Union(self, other)


@dataclass(frozen=True)
class Leaf(Expression):
    """A relation occurrence ``R(S)``; ``is_delta`` marks ``dR(S)``."""

    relation: str
    variables: tuple[str, ...]
    is_delta: bool = False

    def schema(self) -> tuple[str, ...]:
        return self.variables

    def delta(self, relation: str) -> Optional[Expression]:
        if self.is_delta:
            return None  # deltas are constants w.r.t. further updates
        if self.relation != relation:
            return None
        return Leaf(self.relation, self.variables, is_delta=True)

    def evaluate(self, database, deltas=None, lifting=None) -> Relation:
        if self.is_delta:
            if not deltas or self.relation not in deltas:
                raise ValueError(f"no delta bound for relation {self.relation!r}")
            source = deltas[self.relation]
        else:
            source = database[self.relation]
        if len(self.variables) != len(source.schema):
            raise ValueError(
                f"leaf {self} arity mismatch with relation schema "
                f"{source.schema.variables!r}"
            )
        out = Relation(str(self), Schema(self.variables), database.ring)
        for key, payload in source.items():
            out.add(key, payload)
        return out

    def __str__(self) -> str:
        prefix = "d" if self.is_delta else ""
        return f"{prefix}{self.relation}({', '.join(self.variables)})"


@dataclass(frozen=True)
class Join(Expression):
    left: Expression
    right: Expression

    def schema(self) -> tuple[str, ...]:
        left = self.left.schema()
        extra = tuple(v for v in self.right.schema() if v not in left)
        return left + extra

    def delta(self, relation: str) -> Optional[Expression]:
        dl = self.left.delta(relation)
        dr = self.right.delta(relation)
        terms = []
        if dl is not None:
            terms.append(Join(dl, self.right))
        if dr is not None:
            terms.append(Join(self.left, dr))
        if dl is not None and dr is not None:
            terms.append(Join(dl, dr))
        if not terms:
            return None
        result = terms[0]
        for term in terms[1:]:
            result = Union(result, term)
        return result

    def evaluate(self, database, deltas=None, lifting=None) -> Relation:
        left = self.left.evaluate(database, deltas, lifting)
        right = self.right.evaluate(database, deltas, lifting)
        ring = database.ring
        out_schema = Schema(self.schema())
        out = Relation(str(self), out_schema, ring)
        # Hash join on the shared variables, smaller side probing.
        probe, build = (left, right) if len(left) <= len(right) else (right, left)
        build_shared = tuple(v for v in build.schema if v in probe.schema)
        probe_project = probe.schema.projector(build_shared)
        for probe_key, probe_payload in probe.items():
            group_key = probe_project(probe_key)
            for build_key in build.group(build_shared, group_key):
                payload = ring.mul(probe_payload, build.get(build_key))
                if ring.is_zero(payload):
                    continue
                merged = _merge(probe, probe_key, build, build_key, out_schema)
                out.add(merged, payload)
        return out

    def __str__(self) -> str:
        return f"({self.left} . {self.right})"


def _merge(
    rel_a: Relation, key_a: tuple, rel_b: Relation, key_b: tuple, out_schema: Schema
) -> tuple:
    values: dict[str, Any] = {}
    for var, value in zip(rel_a.schema.variables, key_a):
        values[var] = value
    for var, value in zip(rel_b.schema.variables, key_b):
        values[var] = value
    return tuple(values[v] for v in out_schema.variables)


@dataclass(frozen=True)
class Union(Expression):
    left: Expression
    right: Expression

    def schema(self) -> tuple[str, ...]:
        left = self.left.schema()
        if set(left) != set(self.right.schema()):
            raise ValueError("union of expressions with different schemas")
        return left

    def delta(self, relation: str) -> Optional[Expression]:
        dl = self.left.delta(relation)
        dr = self.right.delta(relation)
        if dl is None:
            return dr
        if dr is None:
            return dl
        return Union(dl, dr)

    def evaluate(self, database, deltas=None, lifting=None) -> Relation:
        left = self.left.evaluate(database, deltas, lifting)
        right = self.right.evaluate(database, deltas, lifting)
        out = Relation(str(self), left.schema, database.ring)
        for key, payload in left.items():
            out.add(key, payload)
        project = right.schema.projector(left.schema.variables)
        for key, payload in right.items():
            out.add(project(key), payload)
        return out

    def __str__(self) -> str:
        return f"({self.left} (+) {self.right})"


@dataclass(frozen=True)
class Aggregate(Expression):
    """``SUM_X child``: marginalize one variable with its lifting."""

    variable: str
    child: Expression

    def schema(self) -> tuple[str, ...]:
        return tuple(v for v in self.child.schema() if v != self.variable)

    def delta(self, relation: str) -> Optional[Expression]:
        inner = self.child.delta(relation)
        if inner is None:
            return None
        return Aggregate(self.variable, inner)

    def evaluate(self, database, deltas=None, lifting=None) -> Relation:
        child = self.child.evaluate(database, deltas, lifting)
        ring = database.ring
        if lifting is None:
            lifting = LiftingMap(ring)
        lift = lifting.for_variable(self.variable)
        out_vars = self.schema()
        out = Relation(str(self), Schema(out_vars), ring)
        position = child.schema.position(self.variable)
        project = child.schema.projector(out_vars)
        for key, payload in child.items():
            weighted = ring.mul(payload, lift(key[position]))
            out.add(project(key), weighted)
        return out

    def __str__(self) -> str:
        return f"SUM_{self.variable} {self.child}"


def aggregate_all(variables, child: Expression) -> Expression:
    """Nest ``Aggregate`` over several variables."""
    expr = child
    for variable in variables:
        expr = Aggregate(variable, expr)
    return expr


def from_query(query) -> Expression:
    """Build the expression ``SUM_bound  R_1 . R_2 . ... . R_n``."""
    leaves = [Leaf(a.relation, a.variables) for a in query.atoms]
    body: Expression = leaves[0]
    for leaf in leaves[1:]:
        body = Join(body, leaf)
    bound = [v for v in sorted(query.variables()) if v not in query.free_variables]
    return aggregate_all(bound, body)
