"""Sharded parallel view-tree maintenance (the F-IVM model, N times).

View trees maintain every view by key-partitioned group updates, so hash
shards of a join variable maintain disjoint view slices independently.
This package provides the router that partitions base relations and
update streams (:class:`ShardRouter`), the coordinator that runs one
view-tree engine per shard on an executor and merges outputs and
statistics (:class:`ShardedEngine`), and the persistent shard-worker
runtime for ``executor="process"`` (:mod:`repro.shard.worker`): worker
processes that keep shard state resident and exchange only sub-batch
deltas and stats increments with the coordinator.
"""

from .engine import ShardedEngine
from .router import (
    ShardLeafFilter,
    ShardRouter,
    choose_shard_variable,
    stable_hash,
)
from .worker import (
    ShardWorkerError,
    ShardWorkerPool,
    ShardWorkerSpec,
    decode_batch,
    encode_batch,
)

__all__ = [
    "ShardLeafFilter",
    "ShardRouter",
    "ShardWorkerError",
    "ShardWorkerPool",
    "ShardWorkerSpec",
    "ShardedEngine",
    "choose_shard_variable",
    "decode_batch",
    "encode_batch",
    "stable_hash",
]
