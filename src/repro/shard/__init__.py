"""Sharded parallel view-tree maintenance (the F-IVM model, N times).

View trees maintain every view by key-partitioned group updates, so hash
shards of a join variable maintain disjoint view slices independently.
This package provides the router that partitions base relations and
update streams (:class:`ShardRouter`), and the coordinator that runs one
view-tree engine per shard on an executor and merges outputs and
statistics (:class:`ShardedEngine`).
"""

from .engine import ShardedEngine
from .router import (
    ShardLeafFilter,
    ShardRouter,
    choose_shard_variable,
    stable_hash,
)

__all__ = [
    "ShardLeafFilter",
    "ShardRouter",
    "ShardedEngine",
    "choose_shard_variable",
    "stable_hash",
]
