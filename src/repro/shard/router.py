"""Shard routing: hash-partitioning update streams by one join variable.

The view trees of Sections 3.2 and 4.1 maintain every view by
key-partitioned group updates: the delta for a tuple with join-key value
``v`` only ever touches view entries whose key agrees with ``v``.  Hash
shards of the join key therefore maintain *disjoint* slices of every
view, which makes view-tree maintenance embarrassingly parallel — the
F-IVM execution model run once per shard.

The router decides, per relation, where an update goes:

* if every atom over the relation binds the shard variable at the same
  column, the relation is **partitioned**: a tuple belongs to the shard
  hashing its value at that column;
* otherwise (the relation does not contain the shard variable, or a
  self-join binds it at inconsistent columns) the relation is
  **broadcast**: every shard keeps its full contents, and every update to
  it is replayed on every shard.

Hashing uses a content-stable hash (not Python's seeded ``hash``), so a
stream routes identically across processes and runs — differential
shard-invariance tests and the process-pool executor both rely on that.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Optional

from ..data.update import Update, split_batch
from ..query.ast import Query


def stable_hash(value: Any) -> int:
    """A process-stable 64-bit hash of one attribute value.

    ``PYTHONHASHSEED`` randomizes ``hash`` per process; routing must not
    depend on it, so values are hashed through their ``repr`` instead.
    Equal values of the same type repr identically, which is all routing
    needs.
    """
    data = repr(value).encode("utf-8", "backslashreplace")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def choose_shard_variable(query: Query) -> str:
    """Default shard variable: the one covering the most atoms.

    The more atoms bind the shard variable, the more relations partition
    instead of broadcasting — ties break lexicographically so the choice
    is deterministic.
    """
    counts: dict[str, int] = {}
    for atom in query.atoms:
        for variable in set(atom.variables):
            counts[variable] = counts.get(variable, 0) + 1
    if not counts:
        raise ValueError(f"query {query.name} has no variables to shard on")
    return min(counts, key=lambda variable: (-counts[variable], variable))


class ShardRouter:
    """Routes updates and base tuples to hash shards of one variable."""

    __slots__ = ("shard_variable", "shards", "positions")

    def __init__(self, query: Query, shard_variable: str, shards: int):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if shard_variable not in query.variables():
            raise ValueError(
                f"shard variable {shard_variable!r} does not occur in "
                f"query {query.name}"
            )
        self.shard_variable = shard_variable
        self.shards = shards
        #: relation name -> column of the shard variable, or None (broadcast).
        self.positions: dict[str, Optional[int]] = {}
        for atom in query.atoms:
            if shard_variable in atom.variables:
                position: Optional[int] = atom.variables.index(shard_variable)
            else:
                position = None
            if atom.relation not in self.positions:
                self.positions[atom.relation] = position
            elif self.positions[atom.relation] != position:
                # Self-join binding the shard variable inconsistently:
                # partitioning by either column would starve the other
                # atom's leaf, so fall back to broadcasting.
                self.positions[atom.relation] = None

    def is_partitioned(self, relation: str) -> bool:
        """True when the relation hash-partitions (vs broadcasts)."""
        return self.positions.get(relation) is not None

    def partitioned_relations(self) -> tuple[str, ...]:
        return tuple(
            name for name, position in self.positions.items() if position is not None
        )

    def shard_of_key(self, relation: str, key: tuple) -> Optional[int]:
        """Owning shard of one base tuple; ``None`` means broadcast."""
        position = self.positions.get(relation)
        if position is None:
            return None
        return stable_hash(key[position]) % self.shards

    def shard_of(self, update: Update) -> Optional[int]:
        """Owning shard of one update; ``None`` means broadcast."""
        return self.shard_of_key(update.relation, update.key)

    def split(self, batch: Iterable[Update]) -> list[list[Update]]:
        """Per-shard sub-batches (broadcast updates go to every shard)."""
        return split_batch(batch, self.shard_of, self.shards)

    def __repr__(self) -> str:
        return (
            f"ShardRouter(variable={self.shard_variable!r}, "
            f"shards={self.shards}, positions={self.positions!r})"
        )


class ShardLeafFilter:
    """``(relation, key) -> bool`` predicate selecting one shard's slice.

    Passed to :class:`~repro.viewtree.engine.ViewTreeEngine` as
    ``leaf_filter``; a named picklable class so whole engines can ship to
    process-pool workers.
    """

    __slots__ = ("router", "shard")

    def __init__(self, router: ShardRouter, shard: int):
        self.router = router
        self.shard = shard

    def __call__(self, relation: str, key: tuple) -> bool:
        owner = self.router.shard_of_key(relation, key)
        return owner is None or owner == self.shard
