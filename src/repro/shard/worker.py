"""Persistent shard workers: delta-only IPC for process-parallel shards.

The original ``executor="process"`` path shipped each shard's *entire*
``ViewTreeEngine`` through pickle on every batch and adopted the
returned copy — O(accumulated view state) per commit, the opposite of
incremental.  This module replaces that with a persistent worker
runtime:

* each worker process is spawned **once** from a small pickled
  :class:`ShardWorkerSpec` (query + database + order + router + shard
  id), builds its shard engine locally, and keeps all view state
  resident for the life of the pool;
* the parent speaks a small command protocol over a duplex pipe —
  ``apply_batch`` ships only the coalesced, router-split sub-batch in
  the columnar encoding of :mod:`repro.data.columnar` (numpy payload
  buffers travel as raw bytes for ``numeric_dtype`` rings), and the
  worker replies with a :class:`~repro.obs.MaintenanceStats` *delta*,
  never the engine;
* reads (``lookup`` routed to the owner shard, ``enumerate`` /
  ``scalar`` / ``output_relation`` streamed in chunks,
  ``publish_epoch`` broadcast as a barrier) ride the same protocol, so
  the parent holds **no** engine replicas at all.

Wire format: every message in either direction is one
``pickle.dumps`` blob sent with ``Connection.send_bytes`` — framing by
length makes the bytes shipped per command directly countable, which
is what feeds the ``ipc`` observability block.  Replies are either a
terminal ``("ok", payload, stats_delta, busy_seconds)`` /
``("err", traceback)`` or any number of ``("chunk", items)`` messages
followed by a terminal one (streamed enumerations).

Epoch snapshots never cross the pipe: ``EpochSnapshot`` objects are
identity-keyed (meaningless after pickling), so workers retain their
last few published snapshots keyed by the *coordinator's* epoch
number and snapshot reads name the epoch they want.

Concurrency: one :class:`threading.Lock` per worker is held across a
full send+receive exchange, so concurrent parent threads (the serve
tier's commit executor vs. its event loop) cannot interleave frames.
Broadcast rounds take the locks in worker-index order; point commands
take exactly one — no lock-order cycles, hence no deadlocks.

Failure: a dead pipe or worker process raises
:class:`ShardWorkerError` naming the shard, marks the pool broken,
and the coordinator can rebuild from its authoritative base database
(see ``ShardedEngine._ensure_workers``) — surviving shards lose no
committed state because every worker is rebuilt from the same
committed prefix.
"""

from __future__ import annotations

import pickle
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

from ..data.columnar import coalesce_columnar
from ..data.database import Database
from ..data.update import Update
from ..obs import MaintenanceStats
from ..query.ast import Query
from ..query.variable_order import VariableOrder
from ..rings.base import Semiring
from ..rings.lifting import LiftingMap
from ..viewtree.changes import RETAIN_EPOCHS, EpochGapError, encode_delta
from .router import ShardLeafFilter, ShardRouter

try:  # pragma: no cover - exercised indirectly via the encoders
    import numpy as _np
except Exception:  # pragma: no cover - numpy is baked into CI images
    _np = None

# RETAIN_EPOCHS (how many published epochs each worker keeps
# addressable) is imported from repro.viewtree.changes so the worker
# snapshot window and the output change window always retain the same
# span.  The serve tier reads the latest published epoch while the
# next one is being published; anything older has no readers.

#: Streamed enumeration chunk size (entries per ``("chunk", ...)``).
CHUNK_SIZE = 4096

_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Commands whose reply piggybacks the worker's accumulated stats
#: delta (maintenance writes plus the explicit pull).
_STATS_COMMANDS = frozenset(
    {"apply", "apply_batch", "rebuild", "pull_stats", "shutdown"}
)


class ShardWorkerError(RuntimeError):
    """A shard worker failed (dead process, dead pipe, or remote error)."""

    def __init__(self, shard: int, message: str):
        super().__init__(f"shard worker {shard}: {message}")
        self.shard = shard


# ----------------------------------------------------------------------
# Columnar wire encoding for sub-batches
# ----------------------------------------------------------------------


def encode_batch(
    sub_batch, ring: Semiring
) -> dict[str, tuple[list, tuple[str, Any]]]:
    """Encode a router-split sub-batch for the pipe.

    Produces ``{relation: (keys, payload_column)}`` via
    :func:`~repro.data.columnar.coalesce_columnar`; for rings with a
    ``numeric_dtype`` the payload column is shipped as raw numpy bytes
    (``("np", buffer)``) instead of a pickled list.  Size is
    proportional to the (coalesced) sub-batch only — never to the
    worker's resident view state.
    """
    columns = coalesce_columnar(sub_batch, ring)
    encoded: dict[str, tuple[list, tuple[str, Any]]] = {}
    numeric = _np is not None and ring.numeric_dtype is not None
    for relation, (keys, payloads) in columns.items():
        if numeric:
            buffer = _np.asarray(payloads, dtype=ring.numeric_dtype).tobytes()
            encoded[relation] = (keys, ("np", buffer))
        else:
            encoded[relation] = (keys, ("py", payloads))
    return encoded


def decode_batch(
    encoded: dict[str, tuple[list, tuple[str, Any]]], ring: Semiring
) -> list[Update]:
    """Decode :func:`encode_batch` output back into update objects.

    ``float64`` buffers round-trip bit-identically through
    ``tobytes``/``frombuffer``, so the worker applies exactly the
    payloads the coordinator coalesced.
    """
    updates: list[Update] = []
    for relation, (keys, (tag, data)) in encoded.items():
        if tag == "np":
            if _np is None:  # pragma: no cover - symmetric container
                raise RuntimeError(
                    "numpy-encoded batch received without numpy available"
                )
            payloads = _np.frombuffer(data, dtype=ring.numeric_dtype).tolist()
        else:
            payloads = data
        updates.extend(
            Update(relation, key, payload)
            for key, payload in zip(keys, payloads)
        )
    return updates


# ----------------------------------------------------------------------
# Worker-side runtime
# ----------------------------------------------------------------------


@dataclass
class ShardWorkerSpec:
    """Everything a worker needs to build its shard engine locally.

    Small and picklable: the plan inputs plus the base database — the
    one-time spawn cost.  After construction the engine (views, guards,
    compiled kernels) lives only in the worker.
    """

    query: Query
    database: Database
    shard: int
    router: ShardRouter
    order: VariableOrder
    lifting: LiftingMap | None = None
    compile_plans: bool = True
    compile_enum: bool = True
    codegen: bool = True
    engine_kwargs: dict = field(default_factory=dict)

    def build(self):
        """Construct the shard's ``ViewTreeEngine`` with a fresh recorder."""
        from ..viewtree.engine import ViewTreeEngine

        stats = MaintenanceStats(engine=f"ViewTreeEngine/shard{self.shard}")
        engine = ViewTreeEngine(
            self.query,
            self.database,
            self.order,
            lifting=self.lifting,
            stats=stats,
            leaf_filter=ShardLeafFilter(self.router, self.shard),
            compile_plans=self.compile_plans,
            compile_enum=self.compile_enum,
            codegen=self.codegen,
            **self.engine_kwargs,
        )
        return engine


class _WorkerRuntime:
    """The state machine a worker process runs until shutdown."""

    def __init__(self, spec: ShardWorkerSpec):
        self.spec = spec
        self.engine = spec.build()
        self.ring = self.engine.ring
        #: Coordinator epoch number -> this shard's EpochSnapshot.
        self.snapshots: dict[int, Any] = {}
        #: Coordinator epoch number -> this shard's *engine* epoch
        #: number, maintained once change tracking is enabled so the
        #: ``changes`` command can translate the coordinator's epoch
        #: addressing into the engine's own delta window.
        self._change_epochs: dict[int, int] | None = None

    def take_stats(self) -> MaintenanceStats:
        """Swap in a fresh recorder and return the accumulated delta."""
        delta = self.engine.detach_stats()
        self.engine.attach_stats(
            MaintenanceStats(engine=f"ViewTreeEngine/shard{self.spec.shard}")
        )
        return delta

    # Each handler returns (payload, chunks) where chunks is an
    # iterable of item lists to stream before the terminal reply.

    def handle(self, command: tuple):
        op = command[0]
        handler = getattr(self, f"_cmd_{op}", None)
        if handler is None:
            raise ValueError(f"unknown worker command {op!r}")
        return handler(*command[1:])

    def _cmd_apply(self, update: Update):
        self.engine.apply(update, update_base=False)
        return None, None

    def _cmd_apply_batch(self, encoded, rebuild_factor):
        batch = decode_batch(encoded, self.ring)
        self.engine.apply_batch(
            batch, update_base=False, rebuild_factor=rebuild_factor
        )
        return None, None

    def _cmd_rebuild(self):
        self.engine.rebuild()
        return None, None

    def _cmd_publish_epoch(self, number: int):
        snap = self.engine.publish_epoch(record=False)
        self.snapshots[number] = snap
        for stale in sorted(self.snapshots)[:-RETAIN_EPOCHS]:
            del self.snapshots[stale]
        epochs = self._change_epochs
        if epochs is not None:
            epochs[number] = snap.number
            for stale in sorted(epochs)[: -(RETAIN_EPOCHS + 1)]:
                del epochs[stale]
        return (snap.cow_buckets, snap.cow_tables), None

    def _cmd_track_changes(self, number: int | None):
        """Enable output change tracking on the shard engine.

        ``number`` is the coordinator epoch the freshly published
        tracking baseline should be addressable as (``None`` when the
        coordinator publishes a new epoch right after enabling).
        """
        self.engine.track_changes()
        if number is None:
            self._change_epochs = {}
        else:
            self._change_epochs = {number: self.engine.epoch}
        return None, None

    def _cmd_changes(self, from_number: int, to_number: int):
        """Ship this shard's output delta between two coordinator epochs."""
        epochs = self._change_epochs
        if epochs is None or from_number not in epochs:
            raise EpochGapError(
                f"shard {self.spec.shard}: coordinator epoch {from_number} "
                f"not in change window (have "
                f"{sorted(epochs) if epochs else []})"
            )
        delta = self.engine.changes_since(epochs[from_number])
        return encode_delta(delta, self.ring), None

    def _snapshot(self, number: int):
        snap = self.snapshots.get(number)
        if snap is None:
            raise ValueError(
                f"epoch {number} not retained (have {sorted(self.snapshots)})"
            )
        return snap

    def _cmd_scalar(self, number: int | None):
        if number is None:
            return self.engine.scalar(), None
        return self.engine.scalar_snapshot(self._snapshot(number)), None

    def _cmd_enumerate(self, prebound, number: int | None, observed: bool):
        if number is not None:
            iterator = self.engine._enumerate(
                prebound, None, epoch=self._snapshot(number)
            )
        elif observed:
            iterator = self.engine.enumerate(prebound)
        else:
            # Materialization (output_relation) is not an enumeration
            # request; the unobserved drain records no delay samples.
            iterator = self.engine._enumerate(prebound)
        return None, _chunked(iterator)

    def _cmd_lookup(self, key: tuple, prebound, number: int | None):
        if number is not None:
            iterator = self.engine._enumerate(
                prebound, None, epoch=self._snapshot(number)
            )
        else:
            iterator = self.engine.enumerate(prebound)
        total = self.ring.zero
        for found, payload in iterator:
            if found == key:
                total = self.ring.add(total, payload)
                break
        return total, None

    def _cmd_views(self):
        entries = []
        for root in self.engine.roots:
            for node in root.walk():
                pairs = [(f"V_{node.variable}", node.view)]
                if node.guard is not None:
                    pairs.append((f"G_{node.variable}", node.guard))
                for name, relation in pairs:
                    entries.append(
                        (
                            name,
                            node.variable,
                            tuple(relation.schema.variables),
                            list(relation.data.items()),
                        )
                    )
        return entries, None

    def _cmd_total_view_size(self):
        return self.engine.total_view_size(), None

    def _cmd_describe(self):
        return self.engine.describe(), None

    def _cmd_pull_stats(self):
        return None, None

    def _cmd_shutdown(self):
        return None, None


def _chunked(iterator):
    chunk: list = []
    for item in iterator:
        chunk.append(item)
        if len(chunk) >= CHUNK_SIZE:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _worker_main(conn, spec_blob: bytes) -> None:
    """Worker process entry point: build the engine, serve commands."""
    try:
        runtime = _WorkerRuntime(pickle.loads(spec_blob))
    except Exception:
        try:
            conn.send_bytes(
                pickle.dumps(("err", traceback.format_exc()), _PROTOCOL)
            )
        finally:
            conn.close()
        return
    conn.send_bytes(pickle.dumps(("ok", None, None, 0.0), _PROTOCOL))
    while True:
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):
            break
        command = pickle.loads(blob)
        op = command[0]
        started = time.perf_counter()
        try:
            payload, chunks = runtime.handle(command)
            if chunks is not None:
                for chunk in chunks:
                    conn.send_bytes(pickle.dumps(("chunk", chunk), _PROTOCOL))
            stats = (
                runtime.take_stats() if op in _STATS_COMMANDS else None
            )
            busy = time.perf_counter() - started
            conn.send_bytes(
                pickle.dumps(("ok", payload, stats, busy), _PROTOCOL)
            )
        except Exception:
            try:
                conn.send_bytes(
                    pickle.dumps(("err", traceback.format_exc()), _PROTOCOL)
                )
            except (BrokenPipeError, OSError):
                break
        if op == "shutdown":
            break
    conn.close()


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------


class _Reply:
    """One worker's answer to one command."""

    __slots__ = (
        "payload", "items", "stats", "busy", "bytes_sent", "bytes_received"
    )

    def __init__(self, payload, items, stats, busy, bytes_sent, bytes_received):
        self.payload = payload
        self.items = items
        self.stats = stats
        self.busy = busy
        self.bytes_sent = bytes_sent
        self.bytes_received = bytes_received


class _Worker:
    __slots__ = ("shard", "process", "conn", "lock")

    def __init__(self, shard, process, conn):
        self.shard = shard
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()


class ShardWorkerPool:
    """A fixed set of persistent shard-worker processes.

    Spawned once from per-shard :class:`ShardWorkerSpec`\\ s; every
    subsequent exchange ships deltas and read results only.  All public
    methods are thread-safe (per-worker locks, acquired in index order
    for broadcasts).
    """

    def __init__(self, specs: list[ShardWorkerSpec], start_method: str | None = None):
        import multiprocessing

        context = multiprocessing.get_context(start_method)
        self.workers: list[_Worker] = []
        self.broken = False
        self.spawn_bytes = 0
        for spec in specs:
            parent_conn, child_conn = context.Pipe(duplex=True)
            blob = pickle.dumps(spec, _PROTOCOL)
            self.spawn_bytes += len(blob)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, blob),
                name=f"repro-shard-{spec.shard}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.workers.append(_Worker(spec.shard, process, parent_conn))
        # Barrier on construction: every worker acks (or reports a
        # build failure) before the pool is usable.
        for worker in self.workers:
            self._collect(worker)

    @property
    def size(self) -> int:
        return len(self.workers)

    # -- transport ------------------------------------------------------

    def _fail(self, worker: _Worker, message: str) -> ShardWorkerError:
        self.broken = True
        return ShardWorkerError(worker.shard, message)

    def _send(self, worker: _Worker, command: tuple) -> int:
        blob = pickle.dumps(command, _PROTOCOL)
        try:
            worker.conn.send_bytes(blob)
        except (BrokenPipeError, OSError) as exc:
            raise self._fail(
                worker,
                f"pipe closed sending {command[0]!r} ({exc}); "
                "the worker process likely crashed — rebuild the pool",
            ) from exc
        return len(blob)

    def _recv_blob(self, worker: _Worker) -> bytes:
        while not worker.conn.poll(0.2):
            if not worker.process.is_alive() and not worker.conn.poll(0.05):
                raise self._fail(
                    worker,
                    f"worker process died (exitcode "
                    f"{worker.process.exitcode}) — rebuild the pool",
                )
        try:
            return worker.conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise self._fail(
                worker, f"pipe closed mid-reply ({exc}) — rebuild the pool"
            ) from exc

    def _collect(self, worker: _Worker, bytes_sent: int = 0) -> _Reply:
        items = None
        received = 0
        while True:
            blob = self._recv_blob(worker)
            received += len(blob)
            message = pickle.loads(blob)
            tag = message[0]
            if tag == "chunk":
                if items is None:
                    items = []
                items.extend(message[1])
            elif tag == "ok":
                _, payload, stats, busy = message
                return _Reply(payload, items, stats, busy, bytes_sent, received)
            elif tag == "err":
                raise ShardWorkerError(
                    worker.shard, f"remote command failed:\n{message[1]}"
                )
            else:  # pragma: no cover - protocol invariant
                raise self._fail(worker, f"unknown reply tag {tag!r}")

    # -- public API -----------------------------------------------------

    def call(self, shard: int, command: tuple) -> _Reply:
        """One command to one worker; blocks for the full round-trip."""
        worker = self.workers[shard]
        with worker.lock:
            sent = self._send(worker, command)
            return self._collect(worker, sent)

    def round(self, commands: list[tuple]) -> list[_Reply]:
        """One command per worker, sent to all before collecting any.

        The workers compute concurrently; collection is in index order
        (each worker's reply waits only on that worker).  Locks are
        taken in index order, so a concurrent :meth:`call` cannot
        deadlock against a broadcast.
        """
        if len(commands) != len(self.workers):
            raise ValueError(
                f"need {len(self.workers)} commands, got {len(commands)}"
            )
        acquired = []
        try:
            for worker in self.workers:
                worker.lock.acquire()
                acquired.append(worker)
            sent = [
                self._send(worker, command)
                for worker, command in zip(self.workers, commands)
            ]
            return [
                self._collect(worker, bytes_sent)
                for worker, bytes_sent in zip(self.workers, sent)
            ]
        finally:
            for worker in reversed(acquired):
                worker.lock.release()

    def broadcast(self, command: tuple) -> list[_Reply]:
        """The same command to every worker."""
        return self.round([command] * len(self.workers))

    def close(self, timeout: float = 5.0) -> list[tuple[int, MaintenanceStats]]:
        """Shut every worker down; returns ``(shard, final stats delta)``."""
        deltas: list[tuple[int, MaintenanceStats]] = []
        for worker in self.workers:
            with worker.lock:
                try:
                    self._send(worker, ("shutdown",))
                    reply = self._collect(worker)
                    if reply.stats is not None:
                        deltas.append((worker.shard, reply.stats))
                except ShardWorkerError:
                    pass
                finally:
                    try:
                        worker.conn.close()
                    except OSError:
                        pass
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
        self.workers = []
        self.broken = True
        return deltas
