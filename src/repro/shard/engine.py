"""Sharded parallel view-tree maintenance.

:class:`ShardedEngine` runs one :class:`~repro.viewtree.engine.ViewTreeEngine`
per hash shard of a chosen shard variable, all over the *same* shared
database and the same variable order.  Each shard's leaves materialize
only the tuples its :class:`~repro.shard.router.ShardLeafFilter` accepts,
updates route through the :class:`~repro.shard.router.ShardRouter`
(owned updates to one shard, broadcast updates to all), and shard
maintenance runs on a ``concurrent.futures`` executor.

Why merging is exact (not approximate): the shard variable lives in one
connected component of the query, and every atom binding it partitions
by its value.  A join-output tuple with shard-variable value ``v`` can
therefore only arise on the shard owning ``v`` — shards maintain a
*disjoint* decomposition of every view whose subtree touches a
partitioned leaf, while views over broadcast-only subtrees are identical
replicas.  Ring-adding shard outputs (payload union for enumeration,
ring sum for scalars) reconstructs the unsharded result exactly; the
differential shard-invariance tests assert bit-identical contents
against the unsharded engine for ``shards`` in {1, 2, 4}.

Executors:

* ``"thread"`` (default) — one persistent thread pool; shard engines are
  disjoint object graphs, so shard maintenance runs lock-free.  Pure
  Python still serializes on the GIL, but shards also cut per-shard view
  sizes (smaller probes, smaller groups), which is where the measured
  speedup on CPython comes from (see ``benchmarks/bench_shard_scaling.py``).
* ``"process"`` — persistent shard workers (:mod:`repro.shard.worker`):
  each worker process is spawned once, builds its shard engine locally
  from a small pickled spec, and keeps all view state resident.  Per
  commit the coordinator ships only the coalesced, router-split
  sub-batch (columnar encoding, numpy payload buffers as raw bytes)
  and receives a stats *delta* — IPC cost scales with the batch, never
  with accumulated view state.  Reads (``lookup`` routed to the owner
  shard, ``enumerate``/``scalar`` streamed in chunks,
  ``publish_epoch`` as a barrier) ride the same pipe protocol, so the
  coordinator holds no engine replicas at all.  The previous
  ship-the-whole-engine-per-batch path survives behind
  ``ipc="pickle-engine"`` as the differential oracle.
* ``"serial"`` — no pool; useful for debugging and differential tests.

Observability: every shard engine carries its own
:class:`~repro.obs.MaintenanceStats` recorder (recorders merge
associatively — that is what makes per-shard recording sound), and the
coordinator's own recorder — attached via ``attach_stats`` like any
other engine — captures logical update latency and merged enumeration
delay.  :meth:`merged_stats` folds everything into one recorder with
per-shard labels.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Iterator

from ..data.database import Database
from ..data.relation import Relation
from ..data.schema import Schema
from ..data.update import Update, coalesce
from ..obs import MaintenanceStats, Observable, observed, observed_enumeration
from ..query.ast import Query
from ..query.variable_order import VariableOrder, order_for
from ..rings.lifting import LiftingMap
from ..viewtree.changes import (
    DeltaWindow,
    EpochGapError,
    MaterializedView,
    OutputDelta,
    decode_delta,
)
from ..viewtree.engine import ViewTreeEngine
from .router import (
    ShardLeafFilter,
    ShardRouter,
    choose_shard_variable,
    stable_hash,
)
from .worker import (
    ShardWorkerError,
    ShardWorkerPool,
    ShardWorkerSpec,
    encode_batch,
)

_EXECUTORS = ("serial", "thread", "process")
_IPC_MODES = ("delta", "pickle-engine")


def _apply_shard_batch(engine: ViewTreeEngine, batch, rebuild_factor):
    """Process-pool worker: apply a sub-batch and return the engine."""
    engine.apply_batch(batch, update_base=False, rebuild_factor=rebuild_factor)
    return engine


class ShardedEngine(Observable):
    """Hash-sharded parallel maintenance over per-shard view trees."""

    #: Coordinator exposes publish_epoch / *_snapshot reads (feature
    #: probe for the serving tier's snapshot-read mode).
    supports_snapshots: bool = True

    def __init__(
        self,
        query: Query,
        database: Database,
        shards: int = 2,
        shard_variable: str | None = None,
        order: VariableOrder | None = None,
        lifting: LiftingMap | None = None,
        executor: str = "thread",
        max_workers: int | None = None,
        compile_plans: bool = True,
        compile_enum: bool = True,
        codegen: bool = True,
        ipc: str = "delta",
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        if ipc not in _IPC_MODES:
            raise ValueError(
                f"unknown ipc mode {ipc!r}; expected one of {_IPC_MODES}"
            )
        self.query = query
        self.database = database
        self.ring = database.ring
        self.shards = int(shards)
        self.shard_variable = (
            shard_variable
            if shard_variable is not None
            else choose_shard_variable(query)
        )
        self.router = ShardRouter(query, self.shard_variable, self.shards)
        self.order = order if order is not None else order_for(query)
        self.executor = executor
        self.ipc = ipc
        self._max_workers = max_workers
        self._pool = None
        #: Delta-IPC mode: persistent worker processes own the shard
        #: engines; the coordinator keeps no engine replicas and ships
        #: only sub-batches out / stats deltas back.  A single shard has
        #: nothing to parallelize — it stays in-process like "serial".
        self._delta_ipc = (
            executor == "process" and ipc == "delta" and self.shards > 1
        )
        self._worker_pool: ShardWorkerPool | None = None
        self._lifting = lifting
        self._compile_plans = compile_plans
        self._compile_enum = compile_enum
        self._codegen_requested = codegen

        #: One recorder per shard, attached from birth (delta mode:
        #: merged from shipped worker deltas); merged on demand.
        self.shard_stats = [
            MaintenanceStats(engine=f"ViewTreeEngine/shard{index}")
            for index in range(self.shards)
        ]
        if self._delta_ipc:
            # The shard engines live in the workers (spawned lazily on
            # first use, from the then-current base database).
            self.engines = []
            self.codegen = bool(codegen)
        else:
            # Per-shard compiled delta plans: each shard engine compiles
            # its own (the plans reference that shard's leaves and views)
            # and the whole graph stays picklable for the process-pool
            # executor.
            self.engines = [
                ViewTreeEngine(
                    query,
                    database,
                    self.order,
                    lifting=lifting,
                    stats=self.shard_stats[index],
                    leaf_filter=ShardLeafFilter(self.router, index),
                    compile_plans=compile_plans,
                    compile_enum=compile_enum,
                    codegen=codegen,
                )
                for index in range(self.shards)
            ]
            #: Whether any shard engine runs generated kernels (shards
            #: share plan shapes, so codegen compiles once per shape).
            self.codegen = any(engine.codegen for engine in self.engines)
        #: Variables whose subtree joins at least one partitioned leaf;
        #: their per-shard views are disjoint slices (ring-add to merge),
        #: all other views are identical replicas (take any one copy).
        self._partitioned_variables = self._find_partitioned_variables()
        #: Last published coordinator epoch: a tuple of (shard engine,
        #: shard EpochSnapshot) pairs, swapped in one assignment so
        #: merged snapshot reads are cross-shard consistent.  In delta
        #: mode snapshots live worker-side, addressed by epoch number
        #: (``_published_epoch`` is the newest readers may pin).
        self.epoch = 0
        self._epoch_snapshot: tuple | None = None
        self._published_epoch: int | None = None
        #: Coordinator-side change tracker (see :meth:`track_changes`):
        #: folds per-shard output deltas into merged coordinator-epoch
        #: deltas so subscribers patch in O(δ) across all shards.
        self._change_tracker: _ShardChangeTracker | None = None

    # ------------------------------------------------------------------
    # Executor plumbing
    # ------------------------------------------------------------------

    def _ensure_pool(self):
        if self.executor == "serial" or self.shards == 1:
            return None
        if self._pool is None:
            workers = self._max_workers or min(self.shards, os.cpu_count() or 1)
            if self.executor == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-shard"
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=workers)
        return self._pool

    def _ensure_workers(self) -> ShardWorkerPool:
        """The persistent worker pool, spawned (or rebuilt) on demand.

        Workers build their shard engines from the coordinator's
        *current* base database — also the recovery path: after a
        worker crash the pool is respawned from the committed base
        state, so surviving shards lose nothing.  If an epoch was
        published before the rebuild, it is re-published under the same
        number so pinned snapshot readers keep getting answers (they
        observe the committed base state, which can only be fresher).
        """
        pool = self._worker_pool
        if pool is not None and not pool.broken:
            return pool
        if pool is not None:
            for shard, delta in pool.close():
                self.shard_stats[shard].merge(delta)
            self._worker_pool = None
        specs = [
            ShardWorkerSpec(
                query=self.query,
                database=self.database,
                shard=index,
                router=self.router,
                order=self.order,
                lifting=self._lifting,
                compile_plans=self._compile_plans,
                compile_enum=self._compile_enum,
                codegen=self._codegen_requested,
            )
            for index in range(self.shards)
        ]
        pool = ShardWorkerPool(specs)
        self._worker_pool = pool
        stats = self._maintenance_stats
        if stats is not None:
            stats.record_ipc_workers_spawned(pool.size)
            stats.record_ipc_round(
                round_trips=pool.size,
                bytes_sent=pool.spawn_bytes,
                bytes_received=0,
                workers=pool.size,
            )
        if self._published_epoch is not None:
            pool.broadcast(("publish_epoch", self._published_epoch))
        if self._change_tracker is not None:
            # Fresh workers carry no change-tracking state; the next
            # coordinator publish resynchronizes (re-enables tracking,
            # re-pulls shard output states) and resets the delta
            # window, so stale subscribers fall back to a full drain.
            self._change_tracker.mark_stale()
        return pool

    def _absorb(self, pairs, wall_s: float, commit: bool = False) -> None:
        """Fold worker replies into the coordinator's accounting.

        ``pairs`` is ``[(shard_index, reply)]``.  Shipped stats deltas
        merge into the per-shard recorders (what :meth:`merged_stats`
        labels), and the round's bytes/latency feed the coordinator's
        ``ipc`` block.
        """
        sent = received = 0
        busy = 0.0
        merge_started = None
        for index, reply in pairs:
            sent += reply.bytes_sent
            received += reply.bytes_received
            busy += reply.busy
            if reply.stats is not None:
                if merge_started is None:
                    merge_started = time.perf_counter()
                self.shard_stats[index].merge(reply.stats)
        stats = self._maintenance_stats
        if stats is not None:
            if merge_started is not None:
                stats.record_ipc_stats_merge(
                    time.perf_counter() - merge_started
                )
            stats.record_ipc_round(
                round_trips=len(pairs),
                bytes_sent=sent,
                bytes_received=received,
                busy_s=busy,
                wall_s=wall_s,
                workers=self.shards,
                commit=commit,
            )

    def _worker_failed(self, error: ShardWorkerError) -> None:
        """Count a transport-level worker failure (crash / dead pipe)."""
        pool = self._worker_pool
        if pool is not None and pool.broken:
            stats = self._maintenance_stats
            if stats is not None:
                stats.record_ipc_worker_failure()

    def _pool_round(self, commands: list[tuple], commit: bool = False):
        """One command per worker, with failure counting and absorption."""
        pool = self._ensure_workers()
        started = time.perf_counter()
        try:
            replies = pool.round(commands)
        except ShardWorkerError as error:
            self._worker_failed(error)
            raise
        self._absorb(
            list(enumerate(replies)), time.perf_counter() - started, commit
        )
        return replies

    def _pool_broadcast(self, command: tuple, commit: bool = False):
        return self._pool_round([command] * self.shards, commit)

    def _pool_call(self, shard: int, command: tuple, commit: bool = False):
        """One command to one worker, with failure counting/absorption."""
        pool = self._ensure_workers()
        started = time.perf_counter()
        try:
            reply = pool.call(shard, command)
        except ShardWorkerError as error:
            self._worker_failed(error)
            raise
        self._absorb([(shard, reply)], time.perf_counter() - started, commit)
        return reply

    def close(self) -> None:
        """Shut executor and worker pools down (idempotent).

        Worker shutdown ships each worker's final stats delta, so
        :meth:`merged_stats` stays complete after close.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._worker_pool is not None:
            pool, self._worker_pool = self._worker_pool, None
            for shard, delta in pool.close():
                self.shard_stats[shard].merge(delta)

    def __getstate__(self) -> dict:
        # Neither pool survives pickling; a restored engine respawns
        # lazily on first use.
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_worker_pool"] = None
        # Change tracking holds per-shard state keyed to this process's
        # epochs; a restored copy re-enables on demand and stale
        # subscribers full-drain.
        state["_change_tracker"] = None
        return state

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # best-effort; close() is the supported path
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    @observed
    def apply(self, update: Update, update_base: bool = True) -> None:
        """Route one single-tuple update to its owning shard(s)."""
        if self._delta_ipc:
            # Spawn (or rebuild) the workers before the base write: a
            # worker builds its leaves from the parent database as of
            # spawn time, so the update must not be in it yet.
            self._ensure_workers()
        if update_base and update.relation in self.database:
            self.database[update.relation].add(update.key, update.payload)
        owner = self.router.shard_of(update)
        if self._delta_ipc:
            # One pipe round-trip per tuple: correct but slow — batch
            # through apply_batch when throughput matters.  Broadcasts
            # go through the worker protocol too (the old process path
            # silently ran them serially in the coordinator).
            if owner is not None:
                self._pool_call(owner, ("apply", update), commit=True)
            else:
                self._pool_broadcast(("apply", update), commit=True)
            return
        if owner is not None:
            self.engines[owner].apply(update, update_base=False)
            return
        # Broadcast path: every shard replays the update.
        pool = self._ensure_pool() if self.executor == "thread" else None
        if pool is None:
            for engine in self.engines:
                engine.apply(update, update_base=False)
        else:
            futures = [
                pool.submit(engine.apply, update, update_base=False)
                for engine in self.engines
            ]
            for future in futures:
                future.result()

    @observed
    def apply_batch(
        self,
        batch,
        update_base: bool = True,
        rebuild_factor: float | None = None,
    ) -> None:
        """Split a batch by owning shard and run the shards concurrently.

        The batch is ring-coalesced *before* routing: same-key deltas
        collapse to one update (cancellations vanish entirely), so the
        router, the base writes, and every shard's own batch kernel see
        the already-shrunk batch — broadcast updates in particular are
        shipped to each shard only once per surviving key.
        """
        batch = coalesce(batch, self.ring)
        if self._delta_ipc:
            # Spawn (or rebuild) the workers before the base writes:
            # workers build their leaves from the parent database as of
            # spawn time, so this batch must not be in it yet.
            self._ensure_workers()
        if update_base:
            for update in batch:
                if update.relation in self.database:
                    self.database[update.relation].add(update.key, update.payload)
        sub_batches = self.router.split(batch)
        if self._delta_ipc:
            # Ship each worker its sub-batch in the columnar wire
            # encoding; the reply carries a stats delta, never the
            # engine — bytes per commit scale with the batch only.
            self._pool_round(
                [
                    ("apply_batch", encode_batch(sub, self.ring), rebuild_factor)
                    for sub in sub_batches
                ],
                commit=True,
            )
            return
        if self.executor == "serial" or self.shards == 1:
            for engine, sub in zip(self.engines, sub_batches):
                engine.apply_batch(sub, update_base=False, rebuild_factor=rebuild_factor)
            return
        pool = self._ensure_pool()
        if self.executor == "thread":
            futures = [
                pool.submit(
                    engine.apply_batch,
                    sub,
                    update_base=False,
                    rebuild_factor=rebuild_factor,
                )
                for engine, sub in zip(self.engines, sub_batches)
            ]
            for future in futures:
                future.result()
        else:
            futures = [
                pool.submit(_apply_shard_batch, engine, sub, rebuild_factor)
                for engine, sub in zip(self.engines, sub_batches)
            ]
            for index, future in enumerate(futures):
                engine = future.result()
                # Adopt the worker's engine (and its recorder): the copy
                # carries the shard's post-batch state.  Re-point its
                # database at the shared one — the worker pickled its own.
                engine.database = self.database
                self.engines[index] = engine
                stats = engine.stats
                if stats is not None:
                    self.shard_stats[index] = stats

    def rebuild(self) -> None:
        """Rebuild every shard's views from its leaves."""
        if self._delta_ipc:
            self._pool_broadcast(("rebuild",))
            return
        for engine in self.engines:
            engine.rebuild()

    # ------------------------------------------------------------------
    # Merged output access
    # ------------------------------------------------------------------

    def scalar(self) -> Any:
        """Boolean-query payload: the ring sum of per-shard scalars."""
        if self._delta_ipc:
            replies = self._pool_broadcast(("scalar", None))
            total = self.ring.zero
            for reply in replies:
                total = self.ring.add(total, reply.payload)
            return total
        total = self.ring.zero
        for engine in self.engines:
            total = self.ring.add(total, engine.scalar())
        return total

    def enumerate(
        self, prebound: dict[str, Any] | None = None
    ) -> Iterator[tuple[tuple, Any]]:
        """Enumerate the merged output (ring-union of shard outputs)."""
        return observed_enumeration(
            self._maintenance_stats, self._enumerate_merged(prebound)
        )

    def _enumerate_merged(
        self, prebound: dict[str, Any] | None = None
    ) -> Iterator[tuple[tuple, Any]]:
        if not self.query.head:
            payload = self.scalar()
            if not self.ring.is_zero(payload):
                yield (), payload
            return
        yield from self._merged_output(prebound).data.items()

    def _merged_output(
        self, prebound: dict[str, Any] | None = None, observed: bool = True
    ) -> Relation:
        """Union the shard outputs into one relation.

        ``observed=False`` drains each shard's *unobserved* internal
        iterator — materialization (``output_relation``) is not an
        enumeration request and must not record phantom delay samples
        into the shard recorders.
        """
        out = Relation(
            f"{self.query.name}_merged", Schema(self.query.head), self.ring
        )
        if self._delta_ipc:
            # Workers drain concurrently (commands land before any
            # reply is awaited) and stream their outputs in chunks.
            replies = self._pool_broadcast(
                ("enumerate", prebound, None, observed)
            )
            shard_outputs = [reply.items or [] for reply in replies]
        else:
            if observed:
                drain = lambda e: list(e.enumerate(prebound))
            else:
                drain = lambda e: list(e._enumerate(prebound))
            pool = self._ensure_pool() if self.executor == "thread" else None
            if pool is None:
                shard_outputs = [drain(e) for e in self.engines]
            else:
                futures = [
                    pool.submit(drain, engine) for engine in self.engines
                ]
                shard_outputs = [future.result() for future in futures]
        for entries in shard_outputs:
            for key, payload in entries:
                out.add(key, payload)
        return out

    # ------------------------------------------------------------------
    # Epoch snapshots (cross-shard consistent)
    # ------------------------------------------------------------------

    def publish_epoch(self, record: bool = True) -> tuple:
        """Publish every shard's epoch together as one coordinator epoch.

        Called between batches (all shards at the same committed prefix),
        so the per-shard snapshots are mutually consistent; the single
        tuple assignment makes the combined publish atomic for readers.
        Each element pairs the shard engine with its snapshot — pairing
        them here (rather than zipping against ``self.engines`` at read
        time) keeps snapshot reads correct when the process executor
        adopts replacement engines mid-read.
        """
        if self._delta_ipc:
            # Barrier broadcast: every worker freezes its current state
            # under the next coordinator epoch number.  The number is
            # advanced only after all workers acked, so readers never
            # pin an epoch a worker has not published yet; workers
            # retain the last few numbered snapshots, so a reader
            # pinning N-1 during the publish of N still gets answers.
            number = self.epoch + 1
            replies = self._pool_broadcast(("publish_epoch", number))
            self.epoch = number
            self._published_epoch = number
            tracker = self._change_tracker
            delta = tracker.on_publish(number) if tracker is not None else None
            if record:
                stats = self._maintenance_stats
                if stats is not None:
                    stats.record_epoch_publish(
                        sum(reply.payload[0] for reply in replies),
                        sum(reply.payload[1] for reply in replies),
                        len(delta) if delta is not None else 0,
                    )
                    if delta is not None:
                        stats.record_change_delta(
                            len(delta), tracker.last_bytes
                        )
            return number
        pairs = tuple(
            (engine, engine.publish_epoch(record=False))
            for engine in self.engines
        )
        self.epoch += 1
        self._epoch_snapshot = pairs
        tracker = self._change_tracker
        delta = tracker.on_publish(self.epoch) if tracker is not None else None
        if record:
            stats = self._maintenance_stats
            if stats is not None:
                stats.record_epoch_publish(
                    sum(snap.cow_buckets for _, snap in pairs),
                    sum(snap.cow_tables for _, snap in pairs),
                    len(delta) if delta is not None else 0,
                )
                if delta is not None:
                    stats.record_change_delta(len(delta), tracker.last_bytes)
        return pairs

    def _snapshot_pairs(self) -> tuple:
        pairs = self._epoch_snapshot
        if pairs is None:
            pairs = self.publish_epoch()
        return pairs

    def _snapshot_epoch(self) -> int:
        """The epoch number delta-mode snapshot reads pin."""
        if self._published_epoch is None:
            self.publish_epoch()
        return self._published_epoch

    def _scalar_snapshot_delta(self, number: int) -> Any:
        replies = self._pool_broadcast(("scalar", number))
        total = self.ring.zero
        for reply in replies:
            total = self.ring.add(total, reply.payload)
        return total

    def scalar_snapshot(self, pairs: tuple | None = None) -> Any:
        """:meth:`scalar` against the published epoch."""
        if self._delta_ipc:
            return self._scalar_snapshot_delta(self._snapshot_epoch())
        if pairs is None:
            pairs = self._snapshot_pairs()
        total = self.ring.zero
        for engine, snap in pairs:
            total = self.ring.add(total, engine.scalar_snapshot(snap))
        return total

    def enumerate_snapshot(
        self, prebound: dict[str, Any] | None = None
    ) -> Iterator[tuple[tuple, Any]]:
        """Merged :meth:`enumerate` against the published epoch.

        Safe to drive from any thread while shard maintenance runs: each
        shard is drained through its frozen snapshot and the union is
        materialized into a fresh thread-local relation.  Delta mode
        pins the published epoch *number*; workers answer from their
        retained snapshot for that number, so a read that races the
        next publish stays on its own consistent epoch.
        """
        if self._delta_ipc:
            number = self._snapshot_epoch()
            return observed_enumeration(
                self._maintenance_stats,
                self._enumerate_snapshot_delta(prebound, number),
            )
        pairs = self._snapshot_pairs()
        return observed_enumeration(
            self._maintenance_stats,
            self._enumerate_merged_snapshot(prebound, pairs),
        )

    def _enumerate_snapshot_delta(
        self, prebound: dict[str, Any] | None, number: int
    ) -> Iterator[tuple[tuple, Any]]:
        if not self.query.head:
            payload = self._scalar_snapshot_delta(number)
            if not self.ring.is_zero(payload):
                yield (), payload
            return
        out = Relation(
            f"{self.query.name}_merged", Schema(self.query.head), self.ring
        )
        replies = self._pool_broadcast(("enumerate", prebound, number, False))
        for reply in replies:
            for key, payload in reply.items or []:
                out.add(key, payload)
        yield from out.data.items()

    def _enumerate_merged_snapshot(
        self, prebound: dict[str, Any] | None, pairs: tuple
    ) -> Iterator[tuple[tuple, Any]]:
        if not self.query.head:
            payload = self.scalar_snapshot(pairs)
            if not self.ring.is_zero(payload):
                yield (), payload
            return
        out = Relation(
            f"{self.query.name}_merged", Schema(self.query.head), self.ring
        )
        for engine, snap in pairs:
            for key, payload in engine._enumerate(prebound, None, epoch=snap):
                out.add(key, payload)
        yield from out.data.items()

    # ------------------------------------------------------------------
    # Output change streams (merged per-shard deltas)
    # ------------------------------------------------------------------

    @property
    def supports_changes(self) -> bool:
        """Whether per-epoch output change streams are available.

        Mirrors :attr:`ViewTreeEngine.supports_changes`: empty-head
        queries always qualify; otherwise the order must be free-top.
        """
        return not self.query.head or self.order.is_free_top()

    def track_changes(self) -> None:
        """Enable merged per-epoch output delta emission (idempotent).

        Publishes a fresh coordinator epoch as the tracking baseline;
        every subsequent :meth:`publish_epoch` pulls each shard's
        output delta (delta-IPC: the worker ``changes`` command; local
        executors: the shard engine's own change window) and folds them
        — in shard order, mimicking the merged-read ``Relation.add``
        fold exactly — into one coordinator-epoch
        :class:`~repro.viewtree.changes.OutputDelta`.
        """
        if self._change_tracker is not None:
            return
        if not self.supports_changes:
            raise TypeError(
                "change streams require a free-top variable order; "
                f"order for {self.query.name!r} interleaves bound "
                "variables above free ones"
            )
        self._change_tracker = _ShardChangeTracker(self)

    def changes_since(self, epoch: int) -> OutputDelta:
        """The merged output delta from coordinator ``epoch`` to now.

        Raises :class:`~repro.viewtree.changes.EpochGapError` when
        ``epoch`` has left the retained window or the stream was
        interrupted by a worker-pool rebuild — callers must full-drain,
        never patch partially.
        """
        self.track_changes()
        tracker = self._change_tracker
        if tracker.stale or tracker.window.epoch != self.epoch:
            raise EpochGapError(
                "change stream interrupted (worker pool rebuilt, or "
                "tracking enabled after the requested epoch); "
                "a full drain is required"
            )
        return tracker.window.changes_since(epoch)

    def subscribe(self, ratio_threshold: float = 0.5) -> MaterializedView:
        """A reader-side materialization patched in O(δ) per epoch."""
        self.track_changes()
        return MaterializedView(self, ratio_threshold=ratio_threshold)

    def _lookup_owner(self, prebound: dict[str, Any]) -> int | None:
        """The single shard that can own this key, when pinnable."""
        if (
            self.shards > 1
            and self.shard_variable in prebound
            and self.router.partitioned_relations()
        ):
            return stable_hash(prebound[self.shard_variable]) % self.shards
        return None

    def _lookup_delta(self, key: tuple, number: int | None) -> Any:
        """Delta-mode point lookup (live or pinned to epoch ``number``)."""
        head = self.query.head
        prebound = dict(zip(head, key))
        owner = self._lookup_owner(prebound)
        shard_list = range(self.shards) if owner is None else (owner,)
        total = self.ring.zero
        for shard in shard_list:
            reply = self._pool_call(shard, ("lookup", key, prebound, number))
            total = self.ring.add(total, reply.payload)
        stats = self._maintenance_stats
        if stats is not None:
            stats.record_point_lookup(len(shard_list))
        return total

    def lookup_snapshot(self, key: tuple) -> Any:
        """:meth:`lookup` against the published epoch (same probe savers)."""
        key = tuple(key)
        head = self.query.head
        if len(key) != len(head):
            raise ValueError(
                f"lookup key {key!r} does not match head {head!r}"
            )
        if self._delta_ipc:
            number = self._snapshot_epoch()
            if not head:
                return self._scalar_snapshot_delta(number)
            return self._lookup_delta(key, number)
        pairs = self._snapshot_pairs()
        if not head:
            return self.scalar_snapshot(pairs)
        prebound = dict(zip(head, key))
        owner = self._lookup_owner(prebound)
        if owner is not None:
            pairs = (pairs[owner],)
        total = self.ring.zero
        for engine, snap in pairs:
            for found, payload in engine._enumerate(prebound, None, epoch=snap):
                if found == key:
                    total = self.ring.add(total, payload)
                    break
        stats = self._maintenance_stats
        if stats is not None:
            stats.record_point_lookup(len(pairs))
        return total

    def lookup(self, key: tuple) -> Any:
        """Merged payload of one output tuple (ring zero when absent).

        Every head variable arrives prebound, so each shard answers with
        O(1) guard probes along the free prefix — no full enumeration.
        Two probe savers on top of that:

        * a fully-prebound key identifies at most one output tuple per
          shard, so each shard's iterator is abandoned on first match
          instead of being drained to exhaustion;
        * when the shard variable is itself a head variable (and the
          query has partitioned leaves), the key value pins the one shard
          that can own the tuple — the other shards are never probed.

        ``point_lookups`` / ``lookup_shards_probed`` on an attached
        recorder (plus the shards' ``enum_guard_probes``) make the saved
        probes visible.
        """
        key = tuple(key)
        head = self.query.head
        if len(key) != len(head):
            raise ValueError(
                f"lookup key {key!r} does not match head {head!r}"
            )
        if not head:
            return self.scalar()
        if self._delta_ipc:
            return self._lookup_delta(key, None)
        prebound = dict(zip(head, key))
        engines = self.engines
        # A join-output tuple with shard-variable value v can only
        # arise on the shard owning v (disjoint decomposition — see
        # the module docstring), so the others cannot contribute.
        owner = self._lookup_owner(prebound)
        if owner is not None:
            engines = (self.engines[owner],)
        total = self.ring.zero
        for engine in engines:
            for found, payload in engine.enumerate(prebound):
                if found == key:
                    total = self.ring.add(total, payload)
                    break
        stats = self._maintenance_stats
        if stats is not None:
            stats.record_point_lookup(len(engines))
        return total

    def output_relation(self, name: str | None = None) -> Relation:
        out = self._merged_output(observed=False)
        out.name = name or self.query.name
        return out

    # ------------------------------------------------------------------
    # Merged introspection
    # ------------------------------------------------------------------

    def _find_partitioned_variables(self) -> frozenset[str]:
        partitioned: set[str] = set()

        def visit(var_node) -> bool:
            here = any(
                self.router.is_partitioned(atom.relation)
                for atom in var_node.atoms
            )
            for child in var_node.children:
                here |= visit(child)
            if here:
                partitioned.add(var_node.variable)
            return here

        for root in self.order.roots:
            visit(root)
        return frozenset(partitioned)

    def merged_views(self) -> dict[str, Relation]:
        """Per-node merged view (and guard) contents across all shards.

        Views over partitioned subtrees ring-add their disjoint shard
        slices; views over broadcast-only subtrees are replicas, so shard
        0's copy stands for all.  The result is keyed ``V_<variable>`` /
        ``G_<variable>`` and equals the corresponding relations of an
        unsharded engine fed the same stream.
        """
        merged: dict[str, Relation] = {}
        if self._delta_ipc:
            replies = self._pool_broadcast(("views",))
            for reply in replies:
                for name, variable, schema_vars, items in reply.payload:
                    replicated = variable not in self._partitioned_variables
                    if name not in merged:
                        out = Relation(name, Schema(list(schema_vars)), self.ring)
                        for key, payload in items:
                            out.add(key, payload)
                        merged[name] = out
                    elif not replicated:
                        for key, payload in items:
                            merged[name].add(key, payload)
            return merged
        for shard, engine in enumerate(self.engines):
            for root in engine.roots:
                for node in root.walk():
                    pairs = [(f"V_{node.variable}", node.view)]
                    if node.guard is not None:
                        pairs.append((f"G_{node.variable}", node.guard))
                    for name, relation in pairs:
                        replicated = (
                            node.variable not in self._partitioned_variables
                        )
                        if name not in merged:
                            merged[name] = relation.copy(name)
                        elif not replicated:
                            merged[name].apply(relation)
        return merged

    def total_view_size(self) -> int:
        """Entries across all shards' views, guards, and leaves."""
        if self._delta_ipc:
            replies = self._pool_broadcast(("total_view_size",))
            return sum(reply.payload for reply in replies)
        return sum(engine.total_view_size() for engine in self.engines)

    def describe(self) -> str:
        executor = self.executor
        if self.executor == "process":
            executor = f"process/{self.ipc}"
        lines = [
            f"ShardedEngine: {self.shards} shards on "
            f"{self.shard_variable!r} ({executor})"
        ]
        for name in sorted(self.router.positions):
            mode = (
                f"partitioned@{self.router.positions[name]}"
                if self.router.is_partitioned(name)
                else "broadcast"
            )
            lines.append(f"  {name}: {mode}")
        if self._delta_ipc:
            replies = self._pool_broadcast(("describe",))
            for index, reply in enumerate(replies):
                lines.append(f"shard {index} (worker-resident):")
                lines.extend("  " + line for line in reply.payload.splitlines())
            return "\n".join(lines)
        for index, engine in enumerate(self.engines):
            lines.append(f"shard {index}:")
            lines.extend("  " + line for line in engine.describe().splitlines())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _propagate_stats(self, stats) -> None:
        # Deliberately do NOT share the coordinator recorder with shard
        # engines: each shard records into its own recorder (associative
        # merge makes that sound), and sharing one recorder across
        # concurrent shard threads would race its histograms.
        return

    def merged_stats(self) -> MaintenanceStats:
        """One recorder: coordinator series + per-shard labelled summaries."""
        if self._delta_ipc and self._worker_pool is not None:
            # Pull any stats the workers accumulated since their last
            # shipped delta (e.g. read-path enumeration counters).
            if not self._worker_pool.broken:
                try:
                    self._pool_broadcast(("pull_stats",))
                except ShardWorkerError:
                    pass
        merged = MaintenanceStats(
            engine=f"ShardedEngine[{self.shards}x{self.shard_variable}]"
        )
        if self._maintenance_stats is not None:
            merged.merge(self._maintenance_stats)
        for index, stats in enumerate(self.shard_stats):
            merged.merge(stats, label=f"shard{index}")
        return merged


class _ShardChangeTracker:
    """Folds per-shard output deltas into merged coordinator deltas.

    Shard outputs are **not** disjoint in general (the shard variable
    need not appear in the head), so a merged payload is the shard-order
    ring fold of the per-shard payloads — exactly what
    ``ShardedEngine._merged_output`` computes by replaying every shard
    entry through ``Relation.add``.  To diff that merge in O(δ) the
    tracker keeps each shard's *absolute* output state in a plain dict
    (seeded from a snapshot enumeration at enable time, then patched by
    the very deltas it pulls), re-folds only the keys named by some
    shard's delta, and emits the keys whose merged payload moved.

    Epoch addressing: per-shard deltas are pulled eagerly at every
    coordinator publish, so the window advances in lockstep with
    ``ShardedEngine.epoch`` and workers are only ever asked for the
    one-epoch step ``(prev, number)`` — comfortably inside the worker's
    ``RETAIN_EPOCHS`` change window.  A worker-pool rebuild (or a
    pickled-engine adoption replacing local shard engines) loses the
    shard-side tracking state; the tracker marks itself stale,
    resynchronizes at the next publish, and resets the window so stale
    subscribers observe :class:`EpochGapError` and full-drain instead
    of patching against a hole.
    """

    __slots__ = (
        "owner", "ring", "window", "shard_states", "last_bytes",
        "stale", "_shard_epochs",
    )

    def __init__(self, owner: ShardedEngine):
        self.owner = owner
        self.ring = owner.ring
        self.last_bytes = 0
        self.stale = False
        self.window: DeltaWindow | None = None
        self.shard_states: list[dict] | None = None
        self._shard_epochs: list[int] | None = None
        if owner._delta_ipc:
            # Enable worker-side tracking first (each worker baselines
            # at a fresh engine epoch), then publish one coordinator
            # epoch so the workers record the coordinator-number ->
            # engine-number mapping, then pull the per-shard output
            # states frozen at that epoch.
            owner._pool_broadcast(("track_changes", None))
            owner.publish_epoch(record=False)
            number = owner.epoch
            self._seed_states_delta(number)
        else:
            for engine in owner.engines:
                engine.track_changes()
            owner.publish_epoch(record=False)
            self._seed_states_local()
        self.window = DeltaWindow(owner.epoch)

    # -- state seeding --------------------------------------------------

    def _seed_states_delta(self, number: int) -> None:
        replies = self.owner._pool_broadcast(("enumerate", None, number, False))
        self.shard_states = [dict(reply.items or []) for reply in replies]

    def _seed_states_local(self) -> None:
        owner = self.owner
        pairs = owner._epoch_snapshot
        self.shard_states = [
            dict(engine._enumerate(None, None, epoch=snap))
            for engine, snap in pairs
        ]
        self._shard_epochs = [engine.epoch for engine in owner.engines]

    # -- publish hook ---------------------------------------------------

    def mark_stale(self) -> None:
        self.stale = True

    def on_publish(self, number: int) -> OutputDelta | None:
        """Pull, merge, and retain the delta for coordinator ``number``.

        Called from ``ShardedEngine.publish_epoch`` right after the
        epoch advanced.  Returns ``None`` when the stream had to resync
        instead of emitting (stale workers / replaced engines): the
        window restarts at ``number`` and older subscribers full-drain.
        """
        owner = self.owner
        self.last_bytes = 0
        if self.stale:
            self._resync(number)
            return None
        prev = self.window.epoch
        if owner._delta_ipc:
            try:
                replies = owner._pool_broadcast(("changes", prev, number))
            except ShardWorkerError:
                # Transport or protocol failure mid-stream: the publish
                # itself already succeeded, so poison the pool (a remote
                # app error leaves pipes desynchronized) and resync at
                # the next publish.
                pool = owner._worker_pool
                if pool is not None:
                    pool.broken = True
                self.stale = True
                return None
            shard_deltas = [
                decode_delta(reply.payload, self.ring) for reply in replies
            ]
            self.last_bytes = sum(reply.bytes_received for reply in replies)
        else:
            shard_deltas = []
            try:
                for index, engine in enumerate(owner.engines):
                    shard_deltas.append(
                        engine.changes_since(self._shard_epochs[index])
                    )
            except EpochGapError:
                # A replaced engine (pickled-engine executor adoption)
                # lost its tracker; its fresh baseline cannot answer for
                # the old epoch.  Resync from current state.
                self._resync(number)
                return None
            for index, engine in enumerate(owner.engines):
                self._shard_epochs[index] = engine.epoch
        delta = self._merge(prev, number, shard_deltas)
        self.window.append(delta)
        return delta

    def _resync(self, number: int) -> None:
        """Rebuild tracking state at already-published epoch ``number``."""
        owner = self.owner
        if owner._delta_ipc:
            owner._pool_broadcast(("track_changes", number))
            self._seed_states_delta(number)
        else:
            states = []
            epochs = []
            for engine in owner.engines:
                engine.track_changes()
                snap = engine.snapshot()
                states.append(dict(engine._enumerate(None, None, epoch=snap)))
                epochs.append(engine.epoch)
            self.shard_states = states
            self._shard_epochs = epochs
        self.window.reset(number)
        self.stale = False

    # -- merging --------------------------------------------------------

    def _fold(self, key: tuple) -> Any:
        """The merged payload for ``key``: shard-order ``Relation.add``.

        ``None`` encodes "absent from the merged output" — per-shard
        states never store ring zeros, and an intermediate fold hitting
        the ring zero deletes the entry exactly as ``Relation.add``
        would, so the result is bit-identical to a merged full drain.
        """
        ring = self.ring
        acc = None
        for state in self.shard_states:
            payload = state.get(key)
            if payload is None:
                continue
            if acc is None:
                acc = payload
            else:
                acc = ring.add(acc, payload)
                if ring.is_zero(acc):
                    acc = None
        return acc

    def _merge(self, prev: int, number: int, shard_deltas) -> OutputDelta:
        touched = set()
        for delta in shard_deltas:
            for key, _old, _new in delta:
                touched.add(key)
        olds = {key: self._fold(key) for key in touched}
        for state, delta in zip(self.shard_states, shard_deltas):
            delta.apply_to(state)
        entries = []
        for key in touched:
            old = olds[key]
            new = self._fold(key)
            if old != new:
                entries.append((key, old, new))
        return OutputDelta(prev, number, entries)
