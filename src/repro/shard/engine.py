"""Sharded parallel view-tree maintenance.

:class:`ShardedEngine` runs one :class:`~repro.viewtree.engine.ViewTreeEngine`
per hash shard of a chosen shard variable, all over the *same* shared
database and the same variable order.  Each shard's leaves materialize
only the tuples its :class:`~repro.shard.router.ShardLeafFilter` accepts,
updates route through the :class:`~repro.shard.router.ShardRouter`
(owned updates to one shard, broadcast updates to all), and shard
maintenance runs on a ``concurrent.futures`` executor.

Why merging is exact (not approximate): the shard variable lives in one
connected component of the query, and every atom binding it partitions
by its value.  A join-output tuple with shard-variable value ``v`` can
therefore only arise on the shard owning ``v`` — shards maintain a
*disjoint* decomposition of every view whose subtree touches a
partitioned leaf, while views over broadcast-only subtrees are identical
replicas.  Ring-adding shard outputs (payload union for enumeration,
ring sum for scalars) reconstructs the unsharded result exactly; the
differential shard-invariance tests assert bit-identical contents
against the unsharded engine for ``shards`` in {1, 2, 4}.

Executors:

* ``"thread"`` (default) — one persistent thread pool; shard engines are
  disjoint object graphs, so shard maintenance runs lock-free.  Pure
  Python still serializes on the GIL, but shards also cut per-shard view
  sizes (smaller probes, smaller groups), which is where the measured
  speedup on CPython comes from (see ``benchmarks/bench_shard_scaling.py``).
* ``"process"`` — a process pool; ``apply_batch`` ships each shard
  engine to a worker and adopts the returned, updated engine.  Real
  parallelism at the price of pickling engines per batch: worthwhile for
  large batches over large trees.  Single-tuple :meth:`apply` runs
  inline (a round-trip per tuple would drown the work).
* ``"serial"`` — no pool; useful for debugging and differential tests.

Observability: every shard engine carries its own
:class:`~repro.obs.MaintenanceStats` recorder (recorders merge
associatively — that is what makes per-shard recording sound), and the
coordinator's own recorder — attached via ``attach_stats`` like any
other engine — captures logical update latency and merged enumeration
delay.  :meth:`merged_stats` folds everything into one recorder with
per-shard labels.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Iterator

from ..data.database import Database
from ..data.relation import Relation
from ..data.schema import Schema
from ..data.update import Update, coalesce
from ..obs import MaintenanceStats, Observable, observed, observed_enumeration
from ..query.ast import Query
from ..query.variable_order import VariableOrder, order_for
from ..rings.lifting import LiftingMap
from ..viewtree.engine import ViewTreeEngine
from .router import (
    ShardLeafFilter,
    ShardRouter,
    choose_shard_variable,
    stable_hash,
)

_EXECUTORS = ("serial", "thread", "process")


def _apply_shard_batch(engine: ViewTreeEngine, batch, rebuild_factor):
    """Process-pool worker: apply a sub-batch and return the engine."""
    engine.apply_batch(batch, update_base=False, rebuild_factor=rebuild_factor)
    return engine


class ShardedEngine(Observable):
    """Hash-sharded parallel maintenance over per-shard view trees."""

    #: Coordinator exposes publish_epoch / *_snapshot reads (feature
    #: probe for the serving tier's snapshot-read mode).
    supports_snapshots: bool = True

    def __init__(
        self,
        query: Query,
        database: Database,
        shards: int = 2,
        shard_variable: str | None = None,
        order: VariableOrder | None = None,
        lifting: LiftingMap | None = None,
        executor: str = "thread",
        max_workers: int | None = None,
        compile_plans: bool = True,
        compile_enum: bool = True,
        codegen: bool = True,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        self.query = query
        self.database = database
        self.ring = database.ring
        self.shards = int(shards)
        self.shard_variable = (
            shard_variable
            if shard_variable is not None
            else choose_shard_variable(query)
        )
        self.router = ShardRouter(query, self.shard_variable, self.shards)
        self.order = order if order is not None else order_for(query)
        self.executor = executor
        self._max_workers = max_workers
        self._pool = None


        #: One recorder per shard, attached from birth; merged on demand.
        self.shard_stats = [
            MaintenanceStats(engine=f"ViewTreeEngine/shard{index}")
            for index in range(self.shards)
        ]
        # Per-shard compiled delta plans: each shard engine compiles its
        # own (the plans reference that shard's leaves and views) and the
        # whole graph stays picklable for the process-pool executor.
        self.engines = [
            ViewTreeEngine(
                query,
                database,
                self.order,
                lifting=lifting,
                stats=self.shard_stats[index],
                leaf_filter=ShardLeafFilter(self.router, index),
                compile_plans=compile_plans,
                compile_enum=compile_enum,
                codegen=codegen,
            )
            for index in range(self.shards)
        ]
        #: Whether any shard engine runs generated kernels (shards share
        #: plan shapes, so codegen compiles once and caches per shape).
        self.codegen = any(engine.codegen for engine in self.engines)
        #: Variables whose subtree joins at least one partitioned leaf;
        #: their per-shard views are disjoint slices (ring-add to merge),
        #: all other views are identical replicas (take any one copy).
        self._partitioned_variables = self._find_partitioned_variables()
        #: Last published coordinator epoch: a tuple of (shard engine,
        #: shard EpochSnapshot) pairs, swapped in one assignment so
        #: merged snapshot reads are cross-shard consistent.
        self.epoch = 0
        self._epoch_snapshot: tuple | None = None

    # ------------------------------------------------------------------
    # Executor plumbing
    # ------------------------------------------------------------------

    def _ensure_pool(self):
        if self.executor == "serial" or self.shards == 1:
            return None
        if self._pool is None:
            workers = self._max_workers or min(self.shards, os.cpu_count() or 1)
            if self.executor == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-shard"
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=workers)
        return self._pool

    def close(self) -> None:
        """Shut the executor pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # best-effort; close() is the supported path
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    @observed
    def apply(self, update: Update, update_base: bool = True) -> None:
        """Route one single-tuple update to its owning shard(s)."""
        if update_base and update.relation in self.database:
            self.database[update.relation].add(update.key, update.payload)
        owner = self.router.shard_of(update)
        if owner is not None:
            self.engines[owner].apply(update, update_base=False)
            return
        # Broadcast path: every shard replays the update.
        pool = self._ensure_pool() if self.executor == "thread" else None
        if pool is None:
            for engine in self.engines:
                engine.apply(update, update_base=False)
        else:
            futures = [
                pool.submit(engine.apply, update, update_base=False)
                for engine in self.engines
            ]
            for future in futures:
                future.result()

    @observed
    def apply_batch(
        self,
        batch,
        update_base: bool = True,
        rebuild_factor: float | None = None,
    ) -> None:
        """Split a batch by owning shard and run the shards concurrently.

        The batch is ring-coalesced *before* routing: same-key deltas
        collapse to one update (cancellations vanish entirely), so the
        router, the base writes, and every shard's own batch kernel see
        the already-shrunk batch — broadcast updates in particular are
        shipped to each shard only once per surviving key.
        """
        batch = coalesce(batch, self.ring)
        if update_base:
            for update in batch:
                if update.relation in self.database:
                    self.database[update.relation].add(update.key, update.payload)
        sub_batches = self.router.split(batch)
        if self.executor == "serial" or self.shards == 1:
            for engine, sub in zip(self.engines, sub_batches):
                engine.apply_batch(sub, update_base=False, rebuild_factor=rebuild_factor)
            return
        pool = self._ensure_pool()
        if self.executor == "thread":
            futures = [
                pool.submit(
                    engine.apply_batch,
                    sub,
                    update_base=False,
                    rebuild_factor=rebuild_factor,
                )
                for engine, sub in zip(self.engines, sub_batches)
            ]
            for future in futures:
                future.result()
        else:
            futures = [
                pool.submit(_apply_shard_batch, engine, sub, rebuild_factor)
                for engine, sub in zip(self.engines, sub_batches)
            ]
            for index, future in enumerate(futures):
                engine = future.result()
                # Adopt the worker's engine (and its recorder): the copy
                # carries the shard's post-batch state.  Re-point its
                # database at the shared one — the worker pickled its own.
                engine.database = self.database
                self.engines[index] = engine
                stats = engine.stats
                if stats is not None:
                    self.shard_stats[index] = stats

    def rebuild(self) -> None:
        """Rebuild every shard's views from its leaves."""
        for engine in self.engines:
            engine.rebuild()

    # ------------------------------------------------------------------
    # Merged output access
    # ------------------------------------------------------------------

    def scalar(self) -> Any:
        """Boolean-query payload: the ring sum of per-shard scalars."""
        total = self.ring.zero
        for engine in self.engines:
            total = self.ring.add(total, engine.scalar())
        return total

    def enumerate(
        self, prebound: dict[str, Any] | None = None
    ) -> Iterator[tuple[tuple, Any]]:
        """Enumerate the merged output (ring-union of shard outputs)."""
        return observed_enumeration(
            self._maintenance_stats, self._enumerate_merged(prebound)
        )

    def _enumerate_merged(
        self, prebound: dict[str, Any] | None = None
    ) -> Iterator[tuple[tuple, Any]]:
        if not self.query.head:
            payload = self.scalar()
            if not self.ring.is_zero(payload):
                yield (), payload
            return
        yield from self._merged_output(prebound).data.items()

    def _merged_output(
        self, prebound: dict[str, Any] | None = None, observed: bool = True
    ) -> Relation:
        """Union the shard outputs into one relation.

        ``observed=False`` drains each shard's *unobserved* internal
        iterator — materialization (``output_relation``) is not an
        enumeration request and must not record phantom delay samples
        into the shard recorders.
        """
        out = Relation(
            f"{self.query.name}_merged", Schema(self.query.head), self.ring
        )
        if observed:
            drain = lambda e: list(e.enumerate(prebound))
        else:
            drain = lambda e: list(e._enumerate(prebound))
        pool = self._ensure_pool() if self.executor == "thread" else None
        if pool is None:
            shard_outputs = [drain(e) for e in self.engines]
        else:
            futures = [pool.submit(drain, engine) for engine in self.engines]
            shard_outputs = [future.result() for future in futures]
        for entries in shard_outputs:
            for key, payload in entries:
                out.add(key, payload)
        return out

    # ------------------------------------------------------------------
    # Epoch snapshots (cross-shard consistent)
    # ------------------------------------------------------------------

    def publish_epoch(self, record: bool = True) -> tuple:
        """Publish every shard's epoch together as one coordinator epoch.

        Called between batches (all shards at the same committed prefix),
        so the per-shard snapshots are mutually consistent; the single
        tuple assignment makes the combined publish atomic for readers.
        Each element pairs the shard engine with its snapshot — pairing
        them here (rather than zipping against ``self.engines`` at read
        time) keeps snapshot reads correct when the process executor
        adopts replacement engines mid-read.
        """
        pairs = tuple(
            (engine, engine.publish_epoch(record=False))
            for engine in self.engines
        )
        self.epoch += 1
        self._epoch_snapshot = pairs
        if record:
            stats = self._maintenance_stats
            if stats is not None:
                stats.record_epoch_publish(
                    sum(snap.cow_buckets for _, snap in pairs),
                    sum(snap.cow_tables for _, snap in pairs),
                )
        return pairs

    def _snapshot_pairs(self) -> tuple:
        pairs = self._epoch_snapshot
        if pairs is None:
            pairs = self.publish_epoch()
        return pairs

    def scalar_snapshot(self, pairs: tuple | None = None) -> Any:
        """:meth:`scalar` against the published epoch."""
        if pairs is None:
            pairs = self._snapshot_pairs()
        total = self.ring.zero
        for engine, snap in pairs:
            total = self.ring.add(total, engine.scalar_snapshot(snap))
        return total

    def enumerate_snapshot(
        self, prebound: dict[str, Any] | None = None
    ) -> Iterator[tuple[tuple, Any]]:
        """Merged :meth:`enumerate` against the published epoch.

        Safe to drive from any thread while shard maintenance runs: each
        shard is drained through its frozen snapshot and the union is
        materialized into a fresh thread-local relation.
        """
        pairs = self._snapshot_pairs()
        return observed_enumeration(
            self._maintenance_stats,
            self._enumerate_merged_snapshot(prebound, pairs),
        )

    def _enumerate_merged_snapshot(
        self, prebound: dict[str, Any] | None, pairs: tuple
    ) -> Iterator[tuple[tuple, Any]]:
        if not self.query.head:
            payload = self.scalar_snapshot(pairs)
            if not self.ring.is_zero(payload):
                yield (), payload
            return
        out = Relation(
            f"{self.query.name}_merged", Schema(self.query.head), self.ring
        )
        for engine, snap in pairs:
            for key, payload in engine._enumerate(prebound, None, epoch=snap):
                out.add(key, payload)
        yield from out.data.items()

    def lookup_snapshot(self, key: tuple) -> Any:
        """:meth:`lookup` against the published epoch (same probe savers)."""
        pairs = self._snapshot_pairs()
        key = tuple(key)
        head = self.query.head
        if len(key) != len(head):
            raise ValueError(
                f"lookup key {key!r} does not match head {head!r}"
            )
        if not head:
            return self.scalar_snapshot(pairs)
        prebound = dict(zip(head, key))
        if (
            self.shards > 1
            and self.shard_variable in prebound
            and self.router.partitioned_relations()
        ):
            owner = (
                stable_hash(prebound[self.shard_variable]) % self.shards
            )
            pairs = (pairs[owner],)
        total = self.ring.zero
        for engine, snap in pairs:
            for found, payload in engine._enumerate(prebound, None, epoch=snap):
                if found == key:
                    total = self.ring.add(total, payload)
                    break
        stats = self._maintenance_stats
        if stats is not None:
            stats.record_point_lookup(len(pairs))
        return total

    def lookup(self, key: tuple) -> Any:
        """Merged payload of one output tuple (ring zero when absent).

        Every head variable arrives prebound, so each shard answers with
        O(1) guard probes along the free prefix — no full enumeration.
        Two probe savers on top of that:

        * a fully-prebound key identifies at most one output tuple per
          shard, so each shard's iterator is abandoned on first match
          instead of being drained to exhaustion;
        * when the shard variable is itself a head variable (and the
          query has partitioned leaves), the key value pins the one shard
          that can own the tuple — the other shards are never probed.

        ``point_lookups`` / ``lookup_shards_probed`` on an attached
        recorder (plus the shards' ``enum_guard_probes``) make the saved
        probes visible.
        """
        key = tuple(key)
        head = self.query.head
        if len(key) != len(head):
            raise ValueError(
                f"lookup key {key!r} does not match head {head!r}"
            )
        if not head:
            return self.scalar()
        prebound = dict(zip(head, key))
        engines = self.engines
        if (
            self.shards > 1
            and self.shard_variable in prebound
            and self.router.partitioned_relations()
        ):
            # A join-output tuple with shard-variable value v can only
            # arise on the shard owning v (disjoint decomposition — see
            # the module docstring), so the others cannot contribute.
            owner = (
                stable_hash(prebound[self.shard_variable]) % self.shards
            )
            engines = (self.engines[owner],)
        total = self.ring.zero
        for engine in engines:
            for found, payload in engine.enumerate(prebound):
                if found == key:
                    total = self.ring.add(total, payload)
                    break
        stats = self._maintenance_stats
        if stats is not None:
            stats.record_point_lookup(len(engines))
        return total

    def output_relation(self, name: str | None = None) -> Relation:
        out = self._merged_output(observed=False)
        out.name = name or self.query.name
        return out

    # ------------------------------------------------------------------
    # Merged introspection
    # ------------------------------------------------------------------

    def _find_partitioned_variables(self) -> frozenset[str]:
        partitioned: set[str] = set()

        def visit(var_node) -> bool:
            here = any(
                self.router.is_partitioned(atom.relation)
                for atom in var_node.atoms
            )
            for child in var_node.children:
                here |= visit(child)
            if here:
                partitioned.add(var_node.variable)
            return here

        for root in self.order.roots:
            visit(root)
        return frozenset(partitioned)

    def merged_views(self) -> dict[str, Relation]:
        """Per-node merged view (and guard) contents across all shards.

        Views over partitioned subtrees ring-add their disjoint shard
        slices; views over broadcast-only subtrees are replicas, so shard
        0's copy stands for all.  The result is keyed ``V_<variable>`` /
        ``G_<variable>`` and equals the corresponding relations of an
        unsharded engine fed the same stream.
        """
        merged: dict[str, Relation] = {}
        for shard, engine in enumerate(self.engines):
            for root in engine.roots:
                for node in root.walk():
                    pairs = [(f"V_{node.variable}", node.view)]
                    if node.guard is not None:
                        pairs.append((f"G_{node.variable}", node.guard))
                    for name, relation in pairs:
                        replicated = (
                            node.variable not in self._partitioned_variables
                        )
                        if name not in merged:
                            merged[name] = relation.copy(name)
                        elif not replicated:
                            merged[name].apply(relation)
        return merged

    def total_view_size(self) -> int:
        """Entries across all shards' views, guards, and leaves."""
        return sum(engine.total_view_size() for engine in self.engines)

    def describe(self) -> str:
        lines = [
            f"ShardedEngine: {self.shards} shards on "
            f"{self.shard_variable!r} ({self.executor})"
        ]
        for name in sorted(self.router.positions):
            mode = (
                f"partitioned@{self.router.positions[name]}"
                if self.router.is_partitioned(name)
                else "broadcast"
            )
            lines.append(f"  {name}: {mode}")
        for index, engine in enumerate(self.engines):
            lines.append(f"shard {index}:")
            lines.extend("  " + line for line in engine.describe().splitlines())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _propagate_stats(self, stats) -> None:
        # Deliberately do NOT share the coordinator recorder with shard
        # engines: each shard records into its own recorder (associative
        # merge makes that sound), and sharing one recorder across
        # concurrent shard threads would race its histograms.
        return

    def merged_stats(self) -> MaintenanceStats:
        """One recorder: coordinator series + per-shard labelled summaries."""
        merged = MaintenanceStats(
            engine=f"ShardedEngine[{self.shards}x{self.shard_variable}]"
        )
        if self._maintenance_stats is not None:
            merged.merge(self._maintenance_stats)
        for index, stats in enumerate(self.shard_stats):
            merged.merge(stats, label=f"shard{index}")
        return merged
