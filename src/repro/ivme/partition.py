"""Heavy/light data partitioning (Section 3.3).

A :class:`PartitionedRelation` splits a relation into a *light* and a
*heavy* part by the degree of a designated partition variable: a value is
heavy when it appears in at least ``threshold`` tuples.  IVM^epsilon sets
``threshold = N^epsilon`` so that

* every light value has degree < ``threshold`` (small groups), and
* there are at most ``N / (threshold / hysteresis)`` heavy values.

Updates keep the partition consistent: when a value's degree crosses the
promotion (demotion) bound, all its tuples migrate between the parts and
registered listeners are notified so that dependent views can be fixed.
A hysteresis factor separates the two bounds, which makes migrations
amortizable: between two migrations of the same value, at least
``threshold * (1 - 1/hysteresis)`` updates must touch it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from ..data.relation import Relation
from ..data.schema import Schema
from ..rings.base import Ring
from ..rings.standard import Z

#: Listener signature: (value, moved keys with payloads, became_heavy).
MigrationListener = Callable[[Any, list[tuple[tuple, Any]], bool], None]


class PartitionedRelation:
    """A relation split into light/heavy parts by one variable's degree."""

    def __init__(
        self,
        name: str,
        schema: Schema | Iterable[str],
        partition_variable: str,
        threshold: float,
        ring: Ring = Z,
        hysteresis: float = 2.0,
    ):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        if partition_variable not in schema:
            raise ValueError(
                f"partition variable {partition_variable!r} not in schema "
                f"{schema.variables!r}"
            )
        if hysteresis <= 1.0:
            raise ValueError("hysteresis must be > 1")
        self.name = name
        self.schema = schema
        self.ring = ring
        self.partition_variable = partition_variable
        self.hysteresis = hysteresis
        self.light = Relation(f"{name}_L", schema, ring)
        self.heavy = Relation(f"{name}_H", schema, ring)
        self._position = schema.position(partition_variable)
        self._degrees: dict[Any, int] = {}
        self._heavy_values: set[Any] = set()
        self._listeners: list[MigrationListener] = []
        #: Optional MaintenanceStats recorder; set by an observing engine
        #: so that migrations and repartitions show up as rebalance events.
        self.stats = None
        self.set_threshold(threshold)

    def set_threshold(self, threshold: float) -> None:
        """Set the heavy bound and migrate values across the new bounds.

        The migration happens here, not in the caller: a forgotten
        re-partition after a threshold change used to leave heavy values
        stranded below the demotion bound (and light values above the
        promotion bound), silently breaking the partition invariant every
        complexity argument rests on.  Registered listeners fire for each
        migrated value exactly as for update-driven migrations.
        """
        if threshold < 1:
            threshold = 1
        self.threshold = threshold
        self._demote_below = threshold / self.hysteresis
        self._enforce_threshold()

    def _enforce_threshold(self) -> None:
        """Migrate every value to the side the current threshold demands."""
        for value in list(self._degrees):
            degree = self._degrees.get(value, 0)
            if value in self._heavy_values:
                if degree < self.threshold:
                    self._migrate(value, to_heavy=False)
            elif degree >= self.threshold:
                self._migrate(value, to_heavy=True)

    def add_listener(self, listener: MigrationListener) -> None:
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Lookup API
    # ------------------------------------------------------------------

    def get(self, key: tuple) -> Any:
        value = self.light.data.get(key)
        if value is not None:
            return value
        return self.heavy.get(key)

    def is_heavy(self, value: Any) -> bool:
        return value in self._heavy_values

    def degree(self, value: Any) -> int:
        return self._degrees.get(value, 0)

    def part_of(self, value: Any) -> Relation:
        """The part (light or heavy relation) holding ``value``'s tuples."""
        return self.heavy if value in self._heavy_values else self.light

    def __len__(self) -> int:
        return len(self.light) + len(self.heavy)

    def items(self) -> Iterator[tuple[tuple, Any]]:
        yield from self.light.items()
        yield from self.heavy.items()

    def heavy_values(self) -> frozenset:
        return frozenset(self._heavy_values)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, key: tuple, payload: Any) -> None:
        """Single-tuple update; migrates the touched value if it crosses
        a partition bound."""
        value = key[self._position]
        target = self.part_of(value)
        before = key in target.data
        target.add(key, payload)
        after = key in target.data
        if after and not before:
            self._degrees[value] = self._degrees.get(value, 0) + 1
        elif before and not after:
            remaining = self._degrees.get(value, 0) - 1
            if remaining:
                self._degrees[value] = remaining
            else:
                self._degrees.pop(value, None)
        self._maybe_migrate(value)

    def _maybe_migrate(self, value: Any) -> None:
        degree = self._degrees.get(value, 0)
        if value in self._heavy_values:
            if degree < self._demote_below:
                self._migrate(value, to_heavy=False)
        elif degree >= self.threshold:
            self._migrate(value, to_heavy=True)

    def _migrate(self, value: Any, to_heavy: bool) -> None:
        source = self.light if to_heavy else self.heavy
        target = self.heavy if to_heavy else self.light
        moved = [
            (key, source.get(key))
            for key in list(source.group((self.partition_variable,), (value,)))
        ]
        for key, payload in moved:
            source.set(key, self.ring.zero)
            target.set(key, payload)
        if to_heavy:
            self._heavy_values.add(value)
        else:
            self._heavy_values.discard(value)
        if self.stats is not None:
            self.stats.record_migration(len(moved), to_heavy)
        for listener in self._listeners:
            listener(value, moved, to_heavy)

    def repartition(self, threshold: float | None = None) -> None:
        """Rebuild both parts from scratch under a (new) threshold.

        Used by the periodic global rebalancing step: after sufficiently
        many updates the database size N — and with it the bound
        ``N^epsilon`` — has drifted, so the partition is recomputed in
        one O(N) pass (listeners are notified per migrated value).
        """
        if self.stats is not None:
            self.stats.record_repartition(
                self.threshold if threshold is None else max(1, threshold)
            )
        if threshold is not None:
            self.set_threshold(threshold)
        else:
            self._enforce_threshold()

    # ------------------------------------------------------------------
    # Group access helpers (delegate to the parts)
    # ------------------------------------------------------------------

    def light_group(self, variables: Iterable[str], key: tuple) -> Iterator[tuple]:
        return self.light.group(variables, key)

    def heavy_group(self, variables: Iterable[str], key: tuple) -> Iterator[tuple]:
        return self.heavy.group(variables, key)
