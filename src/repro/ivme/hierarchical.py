"""IVM^epsilon for the simplest non-q-hierarchical query (Example 5.1).

Maintains ``Q(A) = SUM_B R(A,B) * S(B)`` with the trade-off of Fig. 7:

* preprocessing  O(N),
* single-tuple update  O(N^eps),
* enumeration delay  O(N^(1-eps)).

``eps = 1`` is the eager extreme (materialize the output, O(N) updates on
skewed B-values, O(1) delay); ``eps = 0`` is the lazy extreme (store the
inputs, O(1) updates, O(N) delay).  At ``eps = 1/2`` the point
(1, 1/2, 1/2) touches the OMv-conjecture lower-bound cuboid, making the
strategy weakly Pareto worst-case optimal.

Mechanics: R is partitioned by the degree of B.  The *light* part is
maintained eagerly into ``Q_L(A) = SUM_B R_L(A,B) * S(B)``; an update to
``S(b)`` with light ``b`` touches < N^eps tuples of R_L.  The *heavy*
part stays unmaterialized: enumeration combines, per A-value,
``Q_L(a) + SUM_{heavy b} R_H(a,b) * S(b)`` — at most ``N^(1-eps)`` heavy
B-values exist, bounding the delay.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..data.database import Database
from ..data.relation import Relation
from ..data.update import Update
from ..obs import Observable, observed
from ..rings.standard import Z
from .partition import PartitionedRelation


class TradeoffEngine(Observable):
    """IVM^epsilon maintenance of ``Q(A) = SUM_B R(A,B) * S(B)``."""

    def __init__(
        self,
        epsilon: float = 0.5,
        relation_names: tuple[str, str] = ("R", "S"),
        database: Database | None = None,
    ):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        self.epsilon = epsilon
        self.names = relation_names
        self.R = PartitionedRelation("R", ("A", "B"), "B", threshold=1.0)
        self.S = Relation("S", ("B",), Z)
        #: Eagerly maintained light aggregate Q_L(A) = SUM_B R_L(A,B) S(B).
        self.Q_light = Relation("Q_L", ("A",), Z)
        #: Distinct A-values of R with their tuple counts (candidate index).
        self._a_counts: dict[Any, int] = {}
        self._size_at_rebalance = 0
        self.R.add_listener(self._on_migrate)

        if database is not None:
            name_r, name_s = relation_names
            for key, payload in database[name_r].items():
                self.apply(Update(name_r, key, payload))
            for key, payload in database[name_s].items():
                self.apply(Update(name_s, key, payload))
            self.rebalance()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def size(self) -> int:
        return len(self.R) + len(self.S)

    def _propagate_stats(self, stats) -> None:
        self.R.stats = stats

    @observed
    def apply_batch(self, batch) -> None:
        for update in batch:
            self.apply(update)

    @observed
    def apply(self, update: Update) -> None:
        name_r, name_s = self.names
        if update.relation == name_r:
            self._update_r(update.key, update.payload)
        elif update.relation == name_s:
            self._update_s(update.key, update.payload)
        else:
            raise KeyError(f"unknown relation {update.relation!r}")
        self._maybe_rebalance()

    def _update_r(self, key: tuple, payload: int) -> None:
        a, b = key
        if not self.R.is_heavy(b):
            # Eager: one lookup into S.
            s_value = self.S.get((b,))
            if s_value:
                self.Q_light.add((a,), payload * s_value)
        had = (a, b) in self.R.light.data or (a, b) in self.R.heavy.data
        self.R.add(key, payload)
        has = (a, b) in self.R.light.data or (a, b) in self.R.heavy.data
        if has and not had:
            self._a_counts[a] = self._a_counts.get(a, 0) + 1
        elif had and not has:
            remaining = self._a_counts.get(a, 0) - 1
            if remaining:
                self._a_counts[a] = remaining
            else:
                self._a_counts.pop(a, None)

    def _update_s(self, key: tuple, payload: int) -> None:
        (b,) = key
        if not self.R.is_heavy(b):
            # Light b: touch its < N^eps partners in R_L.
            for r_key in self.R.light.group(("B",), (b,)):
                self.Q_light.add((r_key[0],), self.R.light.get(r_key) * payload)
        self.S.add(key, payload)

    def _on_migrate(self, value: Any, moved, became_heavy: bool) -> None:
        """Partition migration: move contributions in/out of Q_light."""
        sign = -1 if became_heavy else 1
        s_value = self.S.get((value,))
        if not s_value:
            return
        for key, payload in moved:
            self.Q_light.add((key[0],), sign * payload * s_value)

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------

    def _maybe_rebalance(self) -> None:
        size = self.size()
        reference = max(self._size_at_rebalance, 1)
        if size >= 2 * reference or 2 * size <= reference:
            self.rebalance()

    def rebalance(self) -> None:
        size = max(self.size(), 1)
        self.R.repartition(threshold=max(1.0, size**self.epsilon))
        self._size_at_rebalance = size

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def payload_of(self, a: Any) -> int:
        """``Q(a)``: the eager light part plus the on-demand heavy part."""
        total = self.Q_light.get((a,))
        for r_key in self.R.heavy.group(("A",), (a,)):
            s_value = self.S.get((r_key[1],))
            if s_value:
                total += self.R.heavy.get(r_key) * s_value
        return total

    def enumerate(self) -> Iterator[tuple[tuple, int]]:
        """Enumerate (a, Q(a)) with delay O(N^(1-eps)) per candidate.

        Candidates are the distinct A-values of R; per candidate the heavy
        side costs one lookup per heavy B-value paired with it — at most
        the number of heavy B-values overall, i.e. O(N^(1-eps)).
        """
        for a in list(self._a_counts):
            payload = self.payload_of(a)
            if payload:
                yield (a,), payload

    def result(self) -> Relation:
        out = Relation("Q", ("A",), Z)
        for key, payload in self.enumerate():
            out.add(key, payload)
        return out
