"""IVM^epsilon: heavy/light partitioned adaptive maintenance (§3.3, §5)."""

from .hierarchical import TradeoffEngine
from .partition import PartitionedRelation
from .triangle import TriangleCounter

__all__ = ["PartitionedRelation", "TradeoffEngine", "TriangleCounter"]
