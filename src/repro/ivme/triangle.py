"""IVM^epsilon for the triangle count query (Section 3.3).

Maintains ``Q = SUM_{A,B,C} R(A,B) * S(B,C) * T(C,A)`` under single-tuple
updates in amortized ``O(N^max(eps, 1-eps))`` time — ``O(sqrt(N))`` at
``eps = 1/2``, which is worst-case optimal conditioned on the OuMv
conjecture (Theorem 3.4).

The three relations are partitioned by their first variable's degree
(R on A, S on B, T on C) with threshold ``N^eps``.  Three auxiliary views
cover the one skew combination per relation that intersection cannot
handle cheaply::

    V_ST(B,A) = SUM_C S_H(B,C) * T_L(C,A)     (for updates to R)
    V_TR(C,B) = SUM_A T_H(C,A) * R_L(A,B)     (for updates to S)
    V_RS(A,C) = SUM_B R_H(A,B) * S_L(B,C)     (for updates to T)

On ``dR(a,b) -> m`` the count delta is ``m * SUM_C S(b,C) * T(C,a)``
split over the four heavy/light combinations exactly as derived in the
paper; the two views that mention R (``V_TR`` and ``V_RS``) are repaired,
and partition migrations triggered by the update repair them too.  A
global rebalance (new threshold, repartition, view rebuild) runs whenever
the database size doubles or halves since the last one.
"""

from __future__ import annotations

from typing import Any

from ..data.database import Database
from ..data.opcounter import COUNTER
from ..data.relation import Relation
from ..data.update import Update
from ..obs import Observable, observed
from ..rings.standard import Z
from .partition import PartitionedRelation


class TriangleCounter(Observable):
    """Worst-case optimal maintenance of the triangle count."""

    def __init__(
        self,
        epsilon: float = 0.5,
        relation_names: tuple[str, str, str] = ("R", "S", "T"),
        database: Database | None = None,
    ):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        self.epsilon = epsilon
        self.ring = Z
        self.names = relation_names
        self.count = 0

        threshold = 1.0
        self.R = PartitionedRelation("R", ("A", "B"), "A", threshold)
        self.S = PartitionedRelation("S", ("B", "C"), "B", threshold)
        self.T = PartitionedRelation("T", ("C", "A"), "C", threshold)
        self.V_ST = Relation("V_ST", ("B", "A"), Z)
        self.V_TR = Relation("V_TR", ("C", "B"), Z)
        self.V_RS = Relation("V_RS", ("A", "C"), Z)

        self.R.add_listener(self._on_migrate_r)
        self.S.add_listener(self._on_migrate_s)
        self.T.add_listener(self._on_migrate_t)

        self._updates_since_rebalance = 0
        self._size_at_rebalance = 0

        if database is not None:
            self._bulk_load(database)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def size(self) -> int:
        return len(self.R) + len(self.S) + len(self.T)

    def detect(self) -> bool:
        """Triangle detection: is the count positive? (Section 3.4)."""
        return self.count > 0

    def _propagate_stats(self, stats) -> None:
        for part in (self.R, self.S, self.T):
            part.stats = stats

    @observed
    def apply(self, update: Update) -> None:
        """Process one single-tuple update to R, S, or T."""
        name_r, name_s, name_t = self.names
        if update.relation == name_r:
            self._update_r(update.key, update.payload)
        elif update.relation == name_s:
            self._update_s(update.key, update.payload)
        elif update.relation == name_t:
            self._update_t(update.key, update.payload)
        else:
            raise KeyError(f"unknown relation {update.relation!r}")
        self._updates_since_rebalance += 1
        self._maybe_rebalance()

    @observed
    def apply_batch(self, batch) -> None:
        for update in batch:
            self.apply(update)

    # ------------------------------------------------------------------
    # Update handlers (one per relation; symmetric under rotation)
    # ------------------------------------------------------------------

    def _count_delta(
        self,
        first: PartitionedRelation,
        second: PartitionedRelation,
        skew_view: Relation,
        left_key: Any,
        right_key: Any,
    ) -> int:
        """``SUM_M first(left_key, M) * second(M, right_key)`` split by parts.

        ``first`` is partitioned on its first variable (= ``left_key``'s
        role is the *second* variable there), ``second`` on its first
        variable M.  The four heavy/light combinations:

        * first_L x second_*: iterate the light group of ``left_key`` in
          ``first`` (< threshold entries) and look the partner up;
        * first_H x second_H: iterate ``second_H``'s group of
          ``right_key`` (at most #heavy values entries) and look up;
        * first_H x second_L: one lookup in the materialized skew view.
        """
        total = 0
        first_group_vars = (first.schema.variables[0],)
        # Light part of `first`: its partition variable is variables[0],
        # so group by that variable being... no: we need tuples of `first`
        # whose FIRST variable equals left_key.
        for key in first.light.group(first_group_vars, (left_key,)):
            middle = key[1]
            partner = second.get((middle, right_key))
            if partner:
                total += first.light.get(key) * partner
        second_group_vars = (second.schema.variables[1],)
        for key in second.heavy.group(second_group_vars, (right_key,)):
            middle = key[0]
            mine = first.heavy.get((left_key, middle))
            if mine:
                total += mine * second.heavy.get(key)
        COUNTER.bump("lookup")
        total += skew_view.get((left_key, right_key))
        return total

    def _update_r(self, key: tuple, payload: int) -> None:
        a, b = key
        # dQ = m * SUM_C S(b, C) * T(C, a), with the H x L combination
        # served by V_ST (one lookup).
        self.count += payload * self._count_delta(self.S, self.T, self.V_ST, b, a)
        # Repair the views that mention R.
        if self.R.is_heavy(a):
            # V_RS(A,C) += dR_H(a,b) * S_L(b,C)
            for s_key in self.S.light.group(("B",), (b,)):
                self.V_RS.add((a, s_key[1]), payload * self.S.light.get(s_key))
        else:
            # V_TR(C,B) += T_H(C,a) * dR_L(a,b)
            for t_key in self.T.heavy.group(("A",), (a,)):
                self.V_TR.add((t_key[0], b), self.T.heavy.get(t_key) * payload)
        self.R.add(key, payload)

    def _update_s(self, key: tuple, payload: int) -> None:
        b, c = key
        # dQ = m * SUM_A T(c, A) * R(A, b): rotate roles (T, R, V_TR).
        self.count += payload * self._count_delta(self.T, self.R, self.V_TR, c, b)
        if self.S.is_heavy(b):
            # V_ST(B,A) += dS_H(b,c) * T_L(c,A)
            for t_key in self.T.light.group(("C",), (c,)):
                self.V_ST.add((b, t_key[1]), payload * self.T.light.get(t_key))
        else:
            # V_RS(A,C) += R_H(A,b) * dS_L(b,c)
            for r_key in self.R.heavy.group(("B",), (b,)):
                self.V_RS.add((r_key[0], c), self.R.heavy.get(r_key) * payload)
        self.S.add(key, payload)

    def _update_t(self, key: tuple, payload: int) -> None:
        c, a = key
        # dQ = m * SUM_B R(a, B) * S(B, c): rotate roles (R, S, V_RS).
        self.count += payload * self._count_delta(self.R, self.S, self.V_RS, a, c)
        if self.T.is_heavy(c):
            # V_TR(C,B) += dT_H(c,a) * R_L(a,B)
            for r_key in self.R.light.group(("A",), (a,)):
                self.V_TR.add((c, r_key[1]), payload * self.R.light.get(r_key))
        else:
            # V_ST(B,A) += S_H(B,c) * dT_L(c,a)
            for s_key in self.S.heavy.group(("C",), (c,)):
                self.V_ST.add((s_key[0], a), self.S.heavy.get(s_key) * payload)
        self.T.add(key, payload)

    # ------------------------------------------------------------------
    # Migration listeners: keep the skew views consistent when values
    # change part.  Each view mentions exactly one part per relation, so
    # a migration adds or removes the moved tuples' contributions.
    # ------------------------------------------------------------------

    def _on_migrate_r(self, value: Any, moved, became_heavy: bool) -> None:
        sign = 1 if became_heavy else -1
        for key, payload in moved:
            a, b = key
            # Entering (leaving) R_H adds (removes) V_RS contributions.
            for s_key in self.S.light.group(("B",), (b,)):
                self.V_RS.add((a, s_key[1]), sign * payload * self.S.light.get(s_key))
            # Leaving (entering) R_L removes (adds) V_TR contributions.
            for t_key in self.T.heavy.group(("A",), (a,)):
                self.V_TR.add((t_key[0], b), -sign * self.T.heavy.get(t_key) * payload)

    def _on_migrate_s(self, value: Any, moved, became_heavy: bool) -> None:
        sign = 1 if became_heavy else -1
        for key, payload in moved:
            b, c = key
            for t_key in self.T.light.group(("C",), (c,)):
                self.V_ST.add((b, t_key[1]), sign * payload * self.T.light.get(t_key))
            for r_key in self.R.heavy.group(("B",), (b,)):
                self.V_RS.add((r_key[0], c), -sign * self.R.heavy.get(r_key) * payload)

    def _on_migrate_t(self, value: Any, moved, became_heavy: bool) -> None:
        sign = 1 if became_heavy else -1
        for key, payload in moved:
            c, a = key
            for r_key in self.R.light.group(("A",), (a,)):
                self.V_TR.add((c, r_key[1]), sign * payload * self.R.light.get(r_key))
            for s_key in self.S.heavy.group(("C",), (c,)):
                self.V_ST.add((s_key[0], a), -sign * self.S.heavy.get(s_key) * payload)

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------

    def _maybe_rebalance(self) -> None:
        size = self.size()
        if size == 0:
            return
        reference = max(self._size_at_rebalance, 1)
        if size >= 2 * reference or 2 * size <= reference:
            self.rebalance()

    def rebalance(self) -> None:
        """Global rebalance: new threshold N^eps, repartition, rebuild views.

        Costs O(N^(1 + min(eps, 1-eps))); amortized over the Omega(N)
        updates between rebalances this adds O(N^min(eps, 1-eps)) per
        update, within the target bound.
        """
        size = self.size()
        threshold = max(1.0, size**self.epsilon)
        # Clear views and detach listeners *before* touching thresholds:
        # set_threshold migrates eagerly, and migrations would otherwise
        # patch views we are about to rebuild from scratch.
        self.V_ST.clear()
        self.V_TR.clear()
        self.V_RS.clear()
        listeners_backup = []
        for partitioned in (self.R, self.S, self.T):
            listeners_backup.append(partitioned._listeners)
            partitioned._listeners = []
        try:
            for partitioned in (self.R, self.S, self.T):
                partitioned.repartition(threshold)
        finally:
            for partitioned, saved in zip((self.R, self.S, self.T), listeners_backup):
                partitioned._listeners = saved
        self._rebuild_views()
        self._size_at_rebalance = size
        self._updates_since_rebalance = 0

    def _rebuild_views(self) -> None:
        for s_key, s_payload in self.S.heavy.items():
            b, c = s_key
            for t_key in self.T.light.group(("C",), (c,)):
                self.V_ST.add((b, t_key[1]), s_payload * self.T.light.get(t_key))
        for t_key, t_payload in self.T.heavy.items():
            c, a = t_key
            for r_key in self.R.light.group(("A",), (a,)):
                self.V_TR.add((c, r_key[1]), t_payload * self.R.light.get(r_key))
        for r_key, r_payload in self.R.heavy.items():
            a, b = r_key
            for s_key in self.S.light.group(("B",), (b,)):
                self.V_RS.add((a, s_key[1]), r_payload * self.S.light.get(s_key))

    # ------------------------------------------------------------------
    # Bulk load
    # ------------------------------------------------------------------

    def _bulk_load(self, database: Database) -> None:
        name_r, name_s, name_t = self.names
        for key, payload in database[name_r].items():
            self.R.add(key, payload)
        for key, payload in database[name_s].items():
            self.S.add(key, payload)
        for key, payload in database[name_t].items():
            self.T.add(key, payload)
        self.rebalance()
        self.count = self._recount()

    def _recount(self) -> int:
        """O(N^{3/2})-style recount used only at preprocessing time."""
        total = 0
        for r_key, r_payload in self.R.items():
            a, b = r_key
            # Iterate the smaller adjacency list.
            s_size = self.S.light.group_size(("B",), (b,)) + self.S.heavy.group_size(
                ("B",), (b,)
            )
            t_size = self.T.light.group_size(("A",), (a,)) + self.T.heavy.group_size(
                ("A",), (a,)
            )
            if s_size <= t_size:
                for s_key in list(self.S.light.group(("B",), (b,))) + list(
                    self.S.heavy.group(("B",), (b,))
                ):
                    c = s_key[1]
                    t_payload = self.T.get((c, a))
                    if t_payload:
                        total += r_payload * self.S.get(s_key) * t_payload
            else:
                for t_key in list(self.T.light.group(("A",), (a,))) + list(
                    self.T.heavy.group(("A",), (a,))
                ):
                    c = t_key[0]
                    s_payload = self.S.get((b, c))
                    if s_payload:
                        total += r_payload * s_payload * self.T.get(t_key)
        return total
