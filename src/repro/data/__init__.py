"""Relations over rings, databases, indexes, and updates (Section 2)."""

from .database import Database
from .io import dump_relation_csv, load_relation_csv, relation_from_rows
from .opcounter import COUNTER, OpCounter, counting, measure_ops
from .relation import GroupIndex, Relation
from .schema import EMPTY_SCHEMA, Schema
from .update import (
    Update,
    apply_batch,
    apply_update,
    batches_of,
    delete,
    delta_relation,
    insert,
    permuted,
    split_batch,
)

__all__ = [
    "COUNTER",
    "Database",
    "EMPTY_SCHEMA",
    "GroupIndex",
    "OpCounter",
    "Relation",
    "Schema",
    "Update",
    "apply_batch",
    "apply_update",
    "batches_of",
    "counting",
    "delete",
    "delta_relation",
    "dump_relation_csv",
    "insert",
    "load_relation_csv",
    "measure_ops",
    "permuted",
    "relation_from_rows",
    "split_batch",
]
