"""Databases: named collections of relations over a common ring."""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from ..rings.base import Semiring
from ..rings.standard import Z
from .relation import Relation
from .schema import Schema


class Database:
    """A set of relations over the same ring (Section 2).

    The database size ``len(db)`` is the sum of its relation sizes, i.e.
    the paper's ``N`` — the quantity all complexity bounds are stated in.
    """

    def __init__(self, relations: Iterable[Relation] = (), ring: Semiring = Z):
        self.ring = ring
        self.relations: dict[str, Relation] = {}
        for relation in relations:
            self.add_relation(relation)

    def add_relation(self, relation: Relation) -> Relation:
        if relation.name in self.relations:
            raise ValueError(f"relation {relation.name!r} already in database")
        if relation.ring != self.ring:
            raise ValueError(
                f"relation {relation.name!r} uses ring {relation.ring!r}, "
                f"database uses {self.ring!r}"
            )
        self.relations[relation.name] = relation
        return relation

    def create(self, name: str, schema: Schema | Iterable[str]) -> Relation:
        """Create and register an empty relation."""
        return self.add_relation(Relation(name, schema, self.ring))

    def __getitem__(self, name: str) -> Relation:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        """Total number of tuples with non-zero payload across relations."""
        return sum(len(r) for r in self.relations.values())

    def copy(self) -> "Database":
        clone = Database(ring=self.ring)
        for relation in self:
            clone.add_relation(relation.copy())
        return clone

    def insert(self, relation: str, *key, payload: Any = None) -> None:
        self.relations[relation].insert(*key, payload=payload)

    def delete(self, relation: str, *key, payload: Any = None) -> None:
        self.relations[relation].delete(*key, payload=payload)

    def __repr__(self) -> str:
        parts = ", ".join(f"{r.name}({len(r)})" for r in self)
        return f"Database[{parts}]"
