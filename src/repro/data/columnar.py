"""Columnar batch coalescing: parallel key/payload lists for kernels.

The generated batch kernels (:mod:`repro.viewtree.codegen`) flow deltas
through parallel ``(keys, payloads)`` lists instead of the
dict-of-tuples of :func:`repro.data.update.coalesce_grouped` — a
coalesced delta's keys are distinct, so the dict bought nothing on the
hot path while charging a hash per entry at every stage.
:func:`coalesce_columnar` produces that representation directly, with
exactly ``coalesce_grouped``'s semantics: same surviving entries, same
first-occurrence order for relations and keys, relations whose deltas
cancel entirely absent.

For rings that declare :attr:`~repro.rings.base.Semiring.numeric_dtype`
(e.g. the float ring backing SUM-style aggregates) large batches take a
numpy fast path: payloads of each relation accumulate into a dense
float64 array via ``numpy.bincount`` over first-occurrence slot ids.
``bincount`` folds weights in input order, so repeated-key accumulation
performs the same left-to-right float additions as the dict path —
bit-identical totals — and the zero filter still goes through the
ring's own ``is_zero`` (tolerance band included).  numpy is optional:
absent numpy, small batches, and non-numeric rings all use the pure
Python path.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..rings.base import Semiring
from ..rings.standard import Z
from .update import Update

try:  # pragma: no cover - exercised indirectly via coalesce_columnar
    import numpy as _np
except Exception:  # pragma: no cover - numpy is baked into CI images
    _np = None

#: Below this many updates the numpy path's array setup costs more than
#: the Python-level accumulation it replaces.
NUMPY_MIN_BATCH = 64


def coalesce_columnar(
    batch: Iterable[Update], ring: Semiring = Z
) -> dict[str, tuple[list, list]]:
    """Coalesce a batch into per-relation parallel key/payload lists.

    Returns ``{relation: (keys, payloads)}`` with the content and order
    of :func:`repro.data.update.coalesce_grouped` — the columnar twin
    the generated kernels and bulk leaf writes consume.
    """
    if (
        _np is not None
        and ring.numeric_dtype is not None
        and isinstance(batch, (list, tuple))
        and len(batch) >= NUMPY_MIN_BATCH
    ):
        return _coalesce_numeric(batch, ring)
    grouped: dict[str, dict[tuple, Any]] = {}
    add = ring.add
    for update in batch:
        deltas = grouped.get(update.relation)
        if deltas is None:
            deltas = grouped[update.relation] = {}
        previous = deltas.get(update.key)
        deltas[update.key] = (
            update.payload if previous is None else add(previous, update.payload)
        )
    is_zero = ring.is_zero
    exact = ring.exact_zero
    zero = ring.zero
    result: dict[str, tuple[list, list]] = {}
    for relation, deltas in grouped.items():
        keys: list = []
        payloads: list = []
        for key, payload in deltas.items():
            if (payload != zero) if exact else not is_zero(payload):
                keys.append(key)
                payloads.append(payload)
        if keys:
            result[relation] = (keys, payloads)
    return result


def _coalesce_numeric(
    batch: Iterable[Update], ring: Semiring
) -> dict[str, tuple[list, list]]:
    """The numpy fast path: dense per-relation accumulation arrays."""
    # Gather: one slot per first occurrence of (relation, key), plus the
    # flat (slot, payload) stream in batch order.
    slot_of: dict[str, dict[tuple, int]] = {}
    keys_of: dict[str, list] = {}
    slots_of: dict[str, list[int]] = {}
    values_of: dict[str, list] = {}
    for update in batch:
        relation = update.relation
        slots = slot_of.get(relation)
        if slots is None:
            slots = slot_of[relation] = {}
            keys_of[relation] = []
            slots_of[relation] = []
            values_of[relation] = []
        key = update.key
        slot = slots.get(key)
        if slot is None:
            slot = slots[key] = len(slots)
            keys_of[relation].append(key)
        slots_of[relation].append(slot)
        values_of[relation].append(update.payload)
    dtype = ring.numeric_dtype
    is_zero = ring.is_zero
    exact = ring.exact_zero
    zero = ring.zero
    result: dict[str, tuple[list, list]] = {}
    for relation, keys in keys_of.items():
        # bincount accumulates weights in input order: the per-slot fold
        # is the same left-to-right ring.add sequence as the dict path.
        totals = _np.bincount(
            _np.asarray(slots_of[relation], dtype=_np.intp),
            weights=_np.asarray(values_of[relation], dtype=dtype),
            minlength=len(keys),
        ).tolist()
        out_keys: list = []
        out_payloads: list = []
        for key, payload in zip(keys, totals):
            if (payload != zero) if exact else not is_zero(payload):
                out_keys.append(key)
                out_payloads.append(payload)
        if out_keys:
            result[relation] = (out_keys, out_payloads)
    return result
