"""Relations over rings: hash maps with group indexes.

Section 2's data-structure contract, implemented literally:

* a relation is a hash map from key tuples to non-zero ring payloads, with
  amortized O(1) lookup, insert, and delete, and constant-delay enumeration
  of its entries;
* for a subset ``S`` of the schema, a :class:`GroupIndex` enumerates with
  constant delay all tuples that agree on a given projection onto ``S``,
  with amortized O(1) index maintenance per relation update.

Entries whose payload becomes zero are removed, so ``len(relation)`` is
always the number of tuples with non-zero payload.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from ..rings.base import Semiring
from ..rings.standard import Z
from .opcounter import COUNTER
from .schema import Schema


class GroupIndex:
    """Secondary index grouping a relation's keys by a schema subset.

    Stores plain position tuples rather than a projection closure, so
    indexed relations stay picklable (process-pool sharding ships whole
    engines between processes).
    """

    __slots__ = ("group_vars", "_positions", "groups", "_cow", "_owned", "_cow_copied")

    def __init__(self, schema: Schema, group_vars: tuple[str, ...]):
        self.group_vars = group_vars
        self._positions = schema.positions(group_vars)
        # group key -> dict used as an insertion-ordered set of full keys
        self.groups: dict[tuple, dict[tuple, None]] = {}
        # Copy-on-write state for epoch snapshots (see share_version):
        # _cow marks the whole ``groups`` dict as shared with a published
        # snapshot; once privatized, _owned tracks which buckets have been
        # copied (None = not in bucket-COW mode at all).
        self._cow = False
        self._owned: set | None = None
        self._cow_copied = 0

    def _project(self, key: tuple) -> tuple:
        return tuple(key[i] for i in self._positions)

    def share_version(self) -> tuple[dict, int]:
        """Freeze ``groups`` for a snapshot; return ``(groups, buckets_copied)``.

        After this call the returned mapping (and every bucket in it) is
        never mutated in place: the next :meth:`add`/:meth:`remove` copies
        the top-level dict, and each touched bucket is copied once before
        its first post-publish write.  The counter reports buckets copied
        since the previous call (copy-on-write cost of the closing epoch)
        and resets.
        """
        copied = self._cow_copied
        self._cow_copied = 0
        self._cow = True
        self._owned = None
        return self.groups, copied

    def add(self, key: tuple) -> None:
        group_key = tuple(key[i] for i in self._positions)
        if self._cow:
            self.groups = dict(self.groups)
            self._cow = False
            self._owned = set()
        groups = self.groups
        owned = self._owned
        bucket = groups.get(group_key)
        if bucket is None:
            groups[group_key] = {key: None}
            if owned is not None:
                owned.add(group_key)
            return
        if owned is not None and group_key not in owned:
            bucket = dict(bucket)
            groups[group_key] = bucket
            owned.add(group_key)
            self._cow_copied += 1
        bucket[key] = None

    def remove(self, key: tuple) -> None:
        group_key = tuple(key[i] for i in self._positions)
        if self._cow:
            self.groups = dict(self.groups)
            self._cow = False
            self._owned = set()
        groups = self.groups
        bucket = groups.get(group_key)
        if bucket is None:
            return
        owned = self._owned
        if owned is not None and group_key not in owned:
            bucket = dict(bucket)
            groups[group_key] = bucket
            owned.add(group_key)
            self._cow_copied += 1
        bucket.pop(key, None)
        if not bucket:
            del groups[group_key]
            if owned is not None:
                owned.discard(group_key)

    def clear(self) -> None:
        if self._cow:
            self.groups = {}
            self._cow = False
            self._owned = set()
        else:
            self.groups.clear()

    def copy(self) -> "GroupIndex":
        """Structural copy sharing no mutable state with the original."""
        clone = object.__new__(GroupIndex)
        clone.group_vars = self.group_vars
        clone._positions = self._positions
        clone.groups = {
            group_key: dict(bucket) for group_key, bucket in self.groups.items()
        }
        clone._cow = False
        clone._owned = None
        clone._cow_copied = 0
        return clone

    def keys_in_group(self, group_key: tuple) -> Iterator[tuple]:
        bucket = self.groups.get(group_key)
        if bucket is not None:
            yield from bucket

    def group_size(self, group_key: tuple) -> int:
        bucket = self.groups.get(group_key)
        return len(bucket) if bucket is not None else 0

    def group_keys(self) -> Iterator[tuple]:
        """All distinct group keys with at least one member."""
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)


class Relation:
    """A finite map from key tuples to non-zero ring payloads."""

    __slots__ = (
        "name",
        "schema",
        "ring",
        "data",
        "_indexes",
        "_cow",
        "_cow_copied",
        "_dirty",
    )

    def __init__(
        self,
        name: str,
        schema: Schema | Iterable[str],
        ring: Semiring = Z,
        data: Mapping[tuple, Any] | None = None,
    ):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.name = name
        self.schema = schema
        self.ring = ring
        self.data: dict[tuple, Any] = {}
        self._indexes: dict[tuple[str, ...], GroupIndex] = {}
        # Copy-on-write state for epoch snapshots: _cow marks ``data`` as
        # shared with a published snapshot; the first mutation afterwards
        # copies the dict (counted in _cow_copied) before writing.
        self._cow = False
        self._cow_copied = 0
        # Opt-in write-time change oracle (see track_dirty): the set of
        # keys written since the last drain, or None when disabled so the
        # hot write paths pay only a None test.
        self._dirty: set | None = None
        if data:
            for key, payload in data.items():
                self.add(key, payload)

    # ------------------------------------------------------------------
    # Epoch snapshots (copy-on-write)
    # ------------------------------------------------------------------

    def _unshare(self) -> None:
        """Privatize the payload dict before the first post-publish write."""
        self.data = dict(self.data)
        self._cow = False
        self._cow_copied += 1

    def share_version(self) -> tuple[dict, dict, int, int]:
        """Freeze the current contents for an epoch snapshot.

        Returns ``(data, groups, buckets_copied, tables_copied)``:
        ``data`` is the live payload dict and ``groups`` maps each group
        index's variables to its bucket dict.  After this call the
        returned dicts are never mutated in place — the next write copies
        the payload dict (and each touched index bucket) first — so any
        holder of the returned references keeps seeing exactly the frozen
        state, including insertion order.  The trailing counters report
        copy-on-write work performed since the previous call (the cost of
        the epoch that just closed) and reset.
        """
        tables_copied = self._cow_copied
        self._cow_copied = 0
        self._cow = True
        groups: dict[tuple[str, ...], dict] = {}
        buckets_copied = 0
        for group_vars, index in self._indexes.items():
            shared, copied = index.share_version()
            groups[group_vars] = shared
            buckets_copied += copied
        return self.data, groups, buckets_copied, tables_copied

    # ------------------------------------------------------------------
    # Dirty-key tracking (output change streams)
    # ------------------------------------------------------------------

    def track_dirty(self) -> None:
        """Start recording the keys of every subsequent write.

        The COW machinery alone cannot serve as a change oracle at key
        granularity: an index bucket that empties is discarded from the
        owned set, and payload-only updates never touch the indexes at
        all.  Tracking is opt-in (``_dirty`` stays ``None`` otherwise) so
        untracked relations pay one ``None`` test per write.
        """
        if self._dirty is None:
            self._dirty = set()

    def drain_dirty(self) -> set:
        """Return the keys written since the last drain and reset the set.

        Only meaningful after :meth:`track_dirty`; raises otherwise so a
        missing enablement surfaces as a hard error, not an empty delta.
        """
        dirty = self._dirty
        if dirty is None:
            raise RuntimeError(
                f"relation {self.name!r} is not tracking dirty keys"
            )
        self._dirty = set()
        return dirty

    # ------------------------------------------------------------------
    # Lookups and enumeration
    # ------------------------------------------------------------------

    def get(self, key: tuple) -> Any:
        """Payload of ``key``; the ring zero when absent."""
        COUNTER.bump("lookup")
        return self.data.get(key, self.ring.zero)

    def __contains__(self, key: tuple) -> bool:
        COUNTER.bump("lookup")
        return key in self.data

    def items(self) -> Iterator[tuple[tuple, Any]]:
        """Enumerate (key, payload) entries with constant delay."""
        for entry in self.data.items():
            COUNTER.bump("enum")
            yield entry

    def keys(self) -> Iterator[tuple]:
        for key in self.data:
            COUNTER.bump("enum")
            yield key

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[tuple]:
        return self.keys()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def add(self, key: tuple, payload: Any) -> Any:
        """Ring-add ``payload`` to the entry at ``key``; return new payload.

        Entries reaching the ring zero are removed, together with their
        index postings, in amortized constant time.
        """
        ring = self.ring
        if ring.is_zero(payload):
            return self.data.get(key, ring.zero)
        if self._cow:
            self._unshare()
        if self._dirty is not None:
            self._dirty.add(key)
        COUNTER.bump("write")
        old = self.data.get(key)
        if old is None:
            self.data[key] = payload
            for index in self._indexes.values():
                index.add(key)
            return payload
        new = ring.add(old, payload)
        if ring.is_zero(new):
            del self.data[key]
            for index in self._indexes.values():
                index.remove(key)
            return ring.zero
        self.data[key] = new
        return new

    def add_delta(self, entries: Iterable[tuple[tuple, Any]]) -> int:
        """Ring-add many ``(key, payload)`` pairs in one fused pass.

        Semantically identical to calling :meth:`add` once per pair —
        zero payloads are skipped, entries cancelling to the ring zero
        are removed together with their index postings — but the hot
        locals (data dict, ring ops, index list) bind once for the whole
        delta and the write accounting is one bulk ``COUNTER`` bump.
        This is the leaf/base/view sink of the compiled batch kernel.

        Returns the number of entries written (the op count bumped).
        """
        ring = self.ring
        is_zero = ring.is_zero
        ring_add = ring.add
        # Inline the zero test for exact-zero rings (see Semiring.exact_zero):
        # one comparison instead of a Python call per entry.
        exact = ring.exact_zero
        zero = ring.zero
        if self._cow:
            self._unshare()
        data = self.data
        dirty = self._dirty
        indexes = list(self._indexes.values()) if self._indexes else None
        writes = 0
        for key, payload in entries:
            if (payload == zero) if exact else is_zero(payload):
                continue
            writes += 1
            if dirty is not None:
                dirty.add(key)
            old = data.get(key)
            if old is None:
                data[key] = payload
                if indexes is not None:
                    for index in indexes:
                        index.add(key)
                continue
            new = ring_add(old, payload)
            if (new == zero) if exact else is_zero(new):
                del data[key]
                if indexes is not None:
                    for index in indexes:
                        index.remove(key)
            else:
                data[key] = new
        if writes:
            COUNTER.bump("write", writes)
        return writes

    def set(self, key: tuple, payload: Any) -> None:
        """Overwrite the payload at ``key`` (remove when zero).

        A zero payload on an absent key is a no-op and counts no write,
        so complexity assertions over ``COUNTER`` see only real work.
        """
        present = key in self.data
        if self.ring.is_zero(payload):
            if present:
                if self._cow:
                    self._unshare()
                if self._dirty is not None:
                    self._dirty.add(key)
                COUNTER.bump("write")
                del self.data[key]
                for index in self._indexes.values():
                    index.remove(key)
            return
        if self._cow:
            self._unshare()
        if self._dirty is not None:
            self._dirty.add(key)
        COUNTER.bump("write")
        self.data[key] = payload
        if not present:
            for index in self._indexes.values():
                index.add(key)

    def insert(self, *key, payload: Any = None) -> None:
        """Insert one tuple; payload defaults to the ring one."""
        self.add(tuple(key), self.ring.one if payload is None else payload)

    def delete(self, *key, payload: Any = None) -> None:
        """Delete one tuple: add the negated payload (requires a ring)."""
        value = self.ring.one if payload is None else payload
        self.add(tuple(key), self.ring.neg(value))

    def apply(self, delta: "Relation | Mapping[tuple, Any]") -> None:
        """Apply a delta relation: ``self := self (+) delta``.

        The delta's entries are materialized before any write, so the
        delta may alias ``self`` (``rel.apply(rel)`` doubles every
        payload) or be a view over it, without tripping over mutation
        during iteration.
        """
        for key, payload in list(delta.items()):
            self.add(key, payload)

    def clear(self) -> None:
        # Every present key is (over-)marked dirty: a clear-and-rebuild
        # cycle (see ViewTreeEngine.rebuild) may rewrite any of them, and
        # a dirty superset keeps the change oracle exact — unmatched keys
        # simply re-enumerate identically on both sides of the diff.
        if self._dirty is not None:
            self._dirty.update(self.data)
        if self._cow:
            self.data = {}
            self._cow = False
        else:
            self.data.clear()
        for index in self._indexes.values():
            index.clear()

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def index_on(self, variables: Iterable[str]) -> GroupIndex:
        """Create (or fetch) the group index on ``variables``.

        Building the index over an existing relation costs O(|relation|);
        afterwards it is maintained incrementally by :meth:`add`/:meth:`set`.
        """
        group_vars = tuple(variables)
        index = self._indexes.get(group_vars)
        if index is None:
            if not self.schema.covers(group_vars):
                raise KeyError(
                    f"index variables {group_vars!r} not in schema "
                    f"{self.schema.variables!r} of relation {self.name!r}"
                )
            index = GroupIndex(self.schema, group_vars)
            for key in self.data:
                index.add(key)
            self._indexes[group_vars] = index
        return index

    def group(self, variables: Iterable[str], group_key: tuple) -> Iterator[tuple]:
        """Enumerate keys agreeing with ``group_key`` on ``variables``."""
        index = self.index_on(variables)
        COUNTER.bump("lookup")
        for key in index.keys_in_group(group_key):
            COUNTER.bump("enum")
            yield key

    def group_items(
        self, variables: Iterable[str], group_key: tuple
    ) -> Iterator[tuple[tuple, Any]]:
        """Enumerate ``(key, payload)`` pairs agreeing with ``group_key``.

        Reads payloads straight from :attr:`data` — one index probe plus
        one enumeration step per match, with no per-match payload lookup.
        This is the probe the join operators and the compiled delta
        kernels use; :meth:`group` + :meth:`get` would count (and pay) an
        extra hash probe per matching pair.
        """
        index = self.index_on(variables)
        COUNTER.bump("lookup")
        data = self.data
        for key in index.keys_in_group(group_key):
            COUNTER.bump("enum")
            yield key, data[key]

    def group_size(self, variables: Iterable[str], group_key: tuple) -> int:
        """Number of keys agreeing with ``group_key`` on ``variables``."""
        COUNTER.bump("lookup")
        return self.index_on(variables).group_size(group_key)

    def distinct(self, variables: Iterable[str]) -> Iterator[tuple]:
        """Enumerate the distinct projections of the keys onto ``variables``."""
        index = self.index_on(variables)
        for group_key in index.group_keys():
            COUNTER.bump("enum")
            yield group_key

    # ------------------------------------------------------------------
    # Whole-relation helpers (used by the naive evaluator and tests)
    # ------------------------------------------------------------------

    def copy(self, name: str | None = None) -> "Relation":
        """Copy the relation *including* its group indexes.

        Copying entries is real work — one write per tuple plus one index
        posting per (index, tuple) pair — and is counted as such, so
        ``COUNTER``-based complexity assertions see it.  Carrying the
        indexes over means a copy never repays the O(n) index builds the
        original already performed.
        """
        clone = Relation(name or self.name, self.schema, self.ring)
        COUNTER.bump("write", len(self.data))
        clone.data = dict(self.data)
        for group_vars, index in self._indexes.items():
            COUNTER.bump("write", len(self.data))
            clone._indexes[group_vars] = index.copy()
        return clone

    def project_onto(self, variables: Iterable[str], name: str | None = None) -> "Relation":
        """Sum payloads of keys agreeing on ``variables`` (marginalization
        with the trivial COUNT lifting on the dropped variables)."""
        variables = tuple(variables)
        out = Relation(name or f"pi_{self.name}", Schema(variables), self.ring)
        project = self.schema.projector(variables)
        for key, payload in self.data.items():
            out.add(project(key), payload)
        return out

    def scale(self, factor: Any, name: str | None = None) -> "Relation":
        """Multiply every payload by ``factor`` (used for delta weighting)."""
        out = Relation(name or self.name, self.schema, self.ring)
        for key, payload in self.data.items():
            out.add(key, self.ring.mul(payload, factor))
        return out

    def to_dict(self) -> dict[tuple, Any]:
        return dict(self.data)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Relation):
            return (
                self.schema == other.schema
                and self.ring == other.ring
                and self.data == other.data
            )
        return NotImplemented

    def __hash__(self) -> int:  # relations are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, schema={self.schema.variables!r}, "
            f"size={len(self.data)})"
        )

    def pretty(self, limit: int = 20) -> str:
        """Small fixed-width rendering, used by examples and docs.

        Keys are sorted with a type-tagged key, so relations mixing value
        types (ints and strings in the same column) render deterministically
        instead of raising ``TypeError`` from a cross-type comparison.
        """

        def tagged(item: tuple[tuple, Any]) -> tuple:
            return tuple((type(v).__name__, v) for v in item[0])

        try:
            entries = sorted(self.data.items(), key=tagged)
        except TypeError:
            # Same-type values that refuse ordering (complex, dicts, ...):
            # fall back to a repr ordering, still deterministic.
            entries = sorted(
                self.data.items(),
                key=lambda item: tuple(repr(v) for v in item[0]),
            )
        header = " ".join(self.schema.variables) + " | payload"
        lines = [header, "-" * len(header)]
        for i, (key, payload) in enumerate(entries):
            if i == limit:
                lines.append(f"... ({len(self.data) - limit} more)")
                break
            lines.append(" ".join(str(v) for v in key) + f" | {payload}")
        return "\n".join(lines)
