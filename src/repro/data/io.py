"""Loading and saving relations: CSV/TSV files and literal rows.

A production IVM engine ingests data from somewhere; these helpers read
delimited files into :class:`~repro.data.relation.Relation` objects (the
last column optionally being the integer multiplicity) and write them
back out deterministically.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..rings.base import Semiring
from ..rings.standard import Z
from .relation import Relation
from .schema import Schema


def load_relation_csv(
    path: str | Path,
    name: str,
    schema: Sequence[str],
    ring: Semiring = Z,
    delimiter: str = ",",
    has_header: bool = False,
    payload_column: bool = False,
    converters: Sequence[Callable] | None = None,
) -> Relation:
    """Read a delimited file into a relation.

    ``converters`` maps each key column's string to a value (default:
    ``int`` when the text looks numeric, else the raw string).  With
    ``payload_column`` the final column holds the tuple's multiplicity.
    """
    schema = tuple(schema)
    if converters is not None and len(converters) != len(schema):
        raise ValueError(
            f"{len(converters)} converters for {len(schema)} columns"
        )
    relation = Relation(name, Schema(schema), ring)
    expected = len(schema) + (1 if payload_column else 0)
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for line_number, row in enumerate(reader, start=1):
            if has_header and line_number == 1:
                continue
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if len(row) != expected:
                raise ValueError(
                    f"{path}:{line_number}: expected {expected} columns, "
                    f"got {len(row)}"
                )
            key_fields = row[: len(schema)]
            if converters is not None:
                key = tuple(
                    convert(field) for convert, field in zip(converters, key_fields)
                )
            else:
                key = tuple(_auto_convert(field) for field in key_fields)
            payload = int(row[-1]) if payload_column else 1
            relation.add(key, payload)
    return relation


def _auto_convert(text: str):
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        return text


def dump_relation_csv(
    relation: Relation,
    path: str | Path,
    delimiter: str = ",",
    write_header: bool = True,
    write_payload: bool = True,
) -> None:
    """Write a relation out deterministically (sorted by key)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        if write_header:
            header = list(relation.schema.variables)
            if write_payload:
                header.append("payload")
            writer.writerow(header)
        for key in sorted(relation.data, key=repr):
            row = list(key)
            if write_payload:
                row.append(relation.data[key])
            writer.writerow(row)


def relation_from_rows(
    name: str,
    schema: Sequence[str],
    rows: Iterable[Sequence],
    ring: Semiring = Z,
) -> Relation:
    """Build a relation from literal rows (each a key tuple)."""
    relation = Relation(name, Schema(tuple(schema)), ring)
    for row in rows:
        relation.add(tuple(row), ring.one)
    return relation
