"""Elementary-operation accounting for complexity assertions.

Wall-clock timing in pure Python is too noisy to verify asymptotic claims
like "single-tuple update in O(N^{1/2})".  Instead, the data structures in
:mod:`repro.data` report elementary operations (hash lookups, entry writes,
enumeration steps) to a global :class:`OpCounter`.  Tests enable counting
around an operation and assert bounds on the counts, which is robust and
deterministic.

Counting is disabled by default and costs a single attribute check per
operation when off.
"""

from __future__ import annotations

from contextlib import contextmanager


class OpCounter:
    """Accumulates named operation counts while enabled."""

    __slots__ = ("enabled", "counts")

    def __init__(self):
        self.enabled = False
        self.counts: dict[str, int] = {}

    def bump(self, kind: str, amount: int = 1) -> None:
        """Record ``amount`` operations of ``kind`` (no-op when disabled)."""
        if self.enabled:
            self.counts[kind] = self.counts.get(kind, 0) + amount

    def reset(self) -> None:
        self.counts = {}

    def total(self) -> int:
        """Total operations across all kinds."""
        return sum(self.counts.values())

    def __getitem__(self, kind: str) -> int:
        return self.counts.get(kind, 0)


#: The process-wide counter used by the library's data structures.
COUNTER = OpCounter()


@contextmanager
def counting():
    """Enable operation counting within the block and yield the counter.

    The counter is reset on entry, so counts observed inside the block
    belong to the block alone.  Nesting re-uses the same counter.
    """
    was_enabled = COUNTER.enabled
    COUNTER.reset()
    COUNTER.enabled = True
    try:
        yield COUNTER
    finally:
        COUNTER.enabled = was_enabled


def measure_ops(operation) -> int:
    """Run a zero-argument callable and return the operations it performed."""
    with counting() as counter:
        operation()
    return counter.total()
