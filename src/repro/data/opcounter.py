"""Elementary-operation accounting for complexity assertions.

Wall-clock timing in pure Python is too noisy to verify asymptotic claims
like "single-tuple update in O(N^{1/2})".  Instead, the data structures in
:mod:`repro.data` report elementary operations (hash lookups, entry writes,
enumeration steps) to a global :class:`OpCounter`.  Tests enable counting
around an operation and assert bounds on the counts, which is robust and
deterministic.

Counting is disabled by default and costs a single attribute check per
operation when off.
"""

from __future__ import annotations

from contextlib import contextmanager


class OpCounter:
    """Accumulates named operation counts while enabled."""

    __slots__ = ("enabled", "counts")

    def __init__(self):
        self.enabled = False
        self.counts: dict[str, int] = {}

    def bump(self, kind: str, amount: int = 1) -> None:
        """Record ``amount`` operations of ``kind`` (no-op when disabled)."""
        if self.enabled:
            self.counts[kind] = self.counts.get(kind, 0) + amount

    def reset(self) -> None:
        # Clear in place: scoped counting() blocks share this dict with
        # the scope object they yielded, and rebinding would decouple them.
        self.counts.clear()

    def total(self) -> int:
        """Total operations across all kinds."""
        return sum(self.counts.values())

    def __getitem__(self, kind: str) -> int:
        return self.counts.get(kind, 0)


#: The process-wide counter used by the library's data structures.
COUNTER = OpCounter()


@contextmanager
def counting():
    """Enable operation counting within the block and yield a counter.

    The yielded counter observes only the block's own operations and
    stays readable after the block exits.  Blocks nest: entering an inner
    ``counting()`` no longer clobbers the outer block's counts — the
    outer counts are saved on entry and restored on exit, and the inner
    block's operations roll up into the outer block (they did happen
    during it).
    """
    outer_counts = COUNTER.counts
    outer_enabled = COUNTER.enabled
    scope = OpCounter()
    scope.enabled = True
    COUNTER.counts = scope.counts
    COUNTER.enabled = True
    try:
        yield scope
    finally:
        COUNTER.counts = outer_counts
        COUNTER.enabled = outer_enabled
        if outer_enabled:
            for kind, amount in scope.counts.items():
                outer_counts[kind] = outer_counts.get(kind, 0) + amount


def measure_ops(operation) -> int:
    """Run a zero-argument callable and return the operations it performed."""
    with counting() as counter:
        operation()
    return counter.total()
