"""Updates: single-tuple deltas and commutative update batches.

Updates are tuples mapped to ring values — positive for inserts, negative
for deletes (Section 2).  A batch of updates can be executed in any order
with the same cumulative effect; :func:`permuted` exists so tests can check
exactly that commutativity property.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from ..rings.base import Ring, Semiring
from ..rings.standard import Z
from .database import Database
from .relation import Relation


@dataclass(frozen=True)
class Update:
    """A single-tuple update: ``relation[key] += payload``."""

    relation: str
    key: tuple
    payload: Any = 1

    @property
    def is_insert(self) -> bool:
        """Heuristic polarity check for numeric payloads (multiplicities)."""
        try:
            return self.payload > 0
        except TypeError:
            return True

    def inverted(self, ring: Ring) -> "Update":
        """The update that undoes this one."""
        return Update(self.relation, self.key, ring.neg(self.payload))


def insert(relation: str, *key, payload: Any = 1) -> Update:
    """Convenience constructor for an insert update."""
    return Update(relation, tuple(key), payload)


def delete(relation: str, *key, payload: Any = 1, ring: Ring = Z) -> Update:
    """Convenience constructor for a delete update (negated payload)."""
    return Update(relation, tuple(key), ring.neg(payload))


def apply_update(database: Database, update: Update) -> None:
    """Apply one update to the input database."""
    database[update.relation].add(update.key, update.payload)


def apply_batch(database: Database, batch: Iterable[Update]) -> None:
    for update in batch:
        apply_update(database, update)


def coalesce(batch: Iterable[Update], ring: Semiring = Z) -> list[Update]:
    """Ring-sum same ``(relation, key)`` deltas; drop the zero sums.

    An update batch over a ring commutes, so replacing all updates that
    hit the same tuple with their ring sum — and dropping tuples whose
    deltas cancel to the ring zero — leaves the cumulative effect of the
    batch unchanged while shrinking the work every downstream engine has
    to do.  A ``+1`` immediately followed by its ``-1`` (the churn shape
    of sliding-window streams) disappears entirely.

    The result keeps one update per surviving ``(relation, key)`` pair,
    in first-occurrence order (deterministic for tests and replays).
    """
    totals: dict[tuple[str, tuple], Any] = {}
    add = ring.add
    for update in batch:
        slot = (update.relation, update.key)
        previous = totals.get(slot)
        totals[slot] = (
            update.payload if previous is None else add(previous, update.payload)
        )
    if ring.exact_zero:
        zero = ring.zero
        return [
            Update(relation, key, payload)
            for (relation, key), payload in totals.items()
            if payload != zero
        ]
    is_zero = ring.is_zero
    return [
        Update(relation, key, payload)
        for (relation, key), payload in totals.items()
        if not is_zero(payload)
    ]


def coalesce_grouped(
    batch: Iterable[Update], ring: Semiring = Z
) -> dict[str, dict[tuple, Any]]:
    """Coalesce a batch into per-relation delta dicts (zeros dropped).

    Same cancellation semantics as :func:`coalesce`, but shaped for the
    compiled batch kernel: ``{relation: {key: payload}}`` with relations
    and keys in first-occurrence order.  Relations whose deltas cancel
    entirely are absent from the result.
    """
    grouped: dict[str, dict[tuple, Any]] = {}
    add = ring.add
    for update in batch:
        deltas = grouped.get(update.relation)
        if deltas is None:
            deltas = grouped[update.relation] = {}
        previous = deltas.get(update.key)
        deltas[update.key] = (
            update.payload if previous is None else add(previous, update.payload)
        )
    is_zero = ring.is_zero
    exact = ring.exact_zero
    zero = ring.zero
    result: dict[str, dict[tuple, Any]] = {}
    for relation, deltas in grouped.items():
        surviving = {
            key: payload
            for key, payload in deltas.items()
            if ((payload != zero) if exact else not is_zero(payload))
        }
        if surviving:
            result[relation] = surviving
    return result


def permuted(batch: Sequence[Update], seed: int = 0) -> list[Update]:
    """A deterministic random permutation of a batch.

    Batches of updates over a ring commute, so applying ``permuted(batch)``
    must leave the database — and every maintained view — in the same state
    as applying ``batch``.  Property-based tests rely on this helper.
    """
    shuffled = list(batch)
    random.Random(seed).shuffle(shuffled)
    return shuffled


def delta_relation(
    name: str,
    schema: Iterable[str],
    entries: Iterable[tuple[tuple, Any]],
    ring: Semiring = Z,
) -> Relation:
    """Build a delta relation from (key, payload) pairs."""
    delta = Relation(name, schema, ring)
    for key, payload in entries:
        delta.add(key, payload)
    return delta


def batches_of(updates: Sequence[Update], batch_size: int) -> Iterator[list[Update]]:
    """Split an update stream into consecutive batches of ``batch_size``."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    for start in range(0, len(updates), batch_size):
        yield list(updates[start : start + batch_size])


def split_batch(
    batch: Iterable[Update],
    shard_of,
    shards: int,
) -> list[list[Update]]:
    """Partition a batch into per-shard sub-batches, preserving order.

    ``shard_of(update)`` names the owning shard, or returns ``None`` for
    updates that must be *broadcast* — appended to every sub-batch (the
    relation does not contain the shard variable, so every shard joins
    against its full contents).

    The split preserves the partition: each sub-batch keeps the relative
    order of its updates, and concatenating the owned occurrences (one
    per owned update, all copies of a broadcast one) recovers the batch's
    cumulative effect.  Because update batches over a ring commute,
    replaying the sub-batches independently — in any interleaving — is
    equivalent to replaying the original batch.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    split: list[list[Update]] = [[] for _ in range(shards)]
    for update in batch:
        owner = shard_of(update)
        if owner is None:
            for sub in split:
                sub.append(update)
        else:
            if not 0 <= owner < shards:
                raise ValueError(
                    f"shard_of returned {owner!r} for {update!r}; "
                    f"expected None or 0..{shards - 1}"
                )
            split[owner].append(update)
    return split
