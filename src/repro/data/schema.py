"""Schemas: ordered tuples of variable names with set-like helpers.

A schema is "a tuple of variables, which we also see as a set" (Section 2).
:class:`Schema` keeps the tuple order (needed to interpret key tuples) while
offering the set operations the query machinery needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Schema:
    """An ordered, duplicate-free tuple of variable names."""

    __slots__ = ("variables", "_positions")

    def __init__(self, variables: Iterable[str]):
        variables = tuple(variables)
        positions: dict[str, int] = {}
        for i, var in enumerate(variables):
            if var in positions:
                raise ValueError(f"duplicate variable {var!r} in schema {variables!r}")
            positions[var] = i
        self.variables = variables
        self._positions = positions

    @classmethod
    def of(cls, *variables: str) -> "Schema":
        """Convenience constructor: ``Schema.of('A', 'B')``."""
        return cls(variables)

    def position(self, variable: str) -> int:
        """Index of ``variable`` within key tuples over this schema."""
        return self._positions[variable]

    def positions(self, variables: Iterable[str]) -> tuple[int, ...]:
        """Indexes of several variables, in the order given."""
        return tuple(self._positions[v] for v in variables)

    def project(self, key: tuple, variables: Iterable[str]) -> tuple:
        """Project a key tuple over this schema onto ``variables``."""
        return tuple(key[self._positions[v]] for v in variables)

    def projector(self, variables: Iterable[str]):
        """Return a fast ``key -> projected key`` function.

        Prefer this in loops: it resolves positions once.
        """
        positions = self.positions(variables)
        if positions == tuple(range(len(self.variables))):
            return lambda key: key
        return lambda key: tuple(key[i] for i in positions)

    def union(self, other: "Schema") -> "Schema":
        """Variables of ``self`` followed by the new variables of ``other``."""
        extra = [v for v in other.variables if v not in self._positions]
        return Schema(self.variables + tuple(extra))

    def intersect(self, other: "Schema | Iterable[str]") -> "Schema":
        members = set(other.variables if isinstance(other, Schema) else other)
        return Schema(v for v in self.variables if v in members)

    def without(self, variables: Iterable[str]) -> "Schema":
        dropped = set(variables)
        return Schema(v for v in self.variables if v not in dropped)

    def restrict(self, variables: Iterable[str]) -> "Schema":
        """Schema over ``variables`` kept in this schema's order."""
        return self.intersect(variables)

    def covers(self, variables: Iterable[str]) -> bool:
        return all(v in self._positions for v in variables)

    def __contains__(self, variable: str) -> bool:
        return variable in self._positions

    def __iter__(self) -> Iterator[str]:
        return iter(self.variables)

    def __len__(self) -> int:
        return len(self.variables)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self.variables == other.variables
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.variables)

    def __repr__(self) -> str:
        return f"Schema{self.variables!r}"

    def as_set(self) -> frozenset[str]:
        return frozenset(self.variables)


EMPTY_SCHEMA = Schema(())
