"""Schemas: ordered tuples of variable names with set-like helpers.

A schema is "a tuple of variables, which we also see as a set" (Section 2).
:class:`Schema` keeps the tuple order (needed to interpret key tuples) while
offering the set operations the query machinery needs.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Schema:
    """An ordered, duplicate-free tuple of variable names."""

    __slots__ = ("variables", "_positions", "_positions_cache", "_projector_cache")

    def __init__(self, variables: Iterable[str]):
        variables = tuple(variables)
        positions: dict[str, int] = {}
        for i, var in enumerate(variables):
            if var in positions:
                raise ValueError(f"duplicate variable {var!r} in schema {variables!r}")
            positions[var] = i
        self.variables = variables
        self._positions = positions
        # Memoized positions()/projector() results.  Schemas are immutable
        # and shared by every operator touching a relation, so the view-tree
        # hot path resolves each (schema, variables) pair exactly once.
        self._positions_cache: dict[tuple[str, ...], tuple[int, ...]] = {}
        self._projector_cache: dict = {}

    def __reduce__(self):
        # Rebuild from the variable tuple: the caches hold closures, which
        # must not (and need not) travel through pickle — process-pool
        # sharding ships whole engines, schemas included.
        return (Schema, (self.variables,))

    @classmethod
    def of(cls, *variables: str) -> "Schema":
        """Convenience constructor: ``Schema.of('A', 'B')``."""
        return cls(variables)

    def position(self, variable: str) -> int:
        """Index of ``variable`` within key tuples over this schema."""
        return self._positions[variable]

    def positions(self, variables: Iterable[str]) -> tuple[int, ...]:
        """Indexes of several variables, in the order given (memoized)."""
        variables = tuple(variables)
        cached = self._positions_cache.get(variables)
        if cached is None:
            cached = tuple(self._positions[v] for v in variables)
            self._positions_cache[variables] = cached
        return cached

    def project(self, key: tuple, variables: Iterable[str]) -> tuple:
        """Project a key tuple over this schema onto ``variables``."""
        return tuple(key[self._positions[v]] for v in variables)

    def projector(self, variables: Iterable[str]):
        """Return a fast ``key -> projected key`` function (memoized).

        Prefer this in loops: it resolves positions once, and repeated
        requests for the same projection return the same closure.
        """
        variables = tuple(variables)
        projector = self._projector_cache.get(variables)
        if projector is None:
            positions = self.positions(variables)
            if positions == tuple(range(len(self.variables))):
                projector = lambda key: key
            else:
                projector = lambda key: tuple(key[i] for i in positions)
            self._projector_cache[variables] = projector
        return projector

    def union(self, other: "Schema") -> "Schema":
        """Variables of ``self`` followed by the new variables of ``other``."""
        extra = [v for v in other.variables if v not in self._positions]
        return Schema(self.variables + tuple(extra))

    def intersect(self, other: "Schema | Iterable[str]") -> "Schema":
        members = set(other.variables if isinstance(other, Schema) else other)
        return Schema(v for v in self.variables if v in members)

    def without(self, variables: Iterable[str]) -> "Schema":
        dropped = set(variables)
        return Schema(v for v in self.variables if v not in dropped)

    def restrict(self, variables: Iterable[str]) -> "Schema":
        """Schema over ``variables`` kept in this schema's order."""
        return self.intersect(variables)

    def covers(self, variables: Iterable[str]) -> bool:
        return all(v in self._positions for v in variables)

    def __contains__(self, variable: str) -> bool:
        return variable in self._positions

    def __iter__(self) -> Iterator[str]:
        return iter(self.variables)

    def __len__(self) -> int:
        return len(self.variables)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self.variables == other.variables
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.variables)

    def __repr__(self) -> str:
        return f"Schema{self.variables!r}"

    def as_set(self) -> frozenset[str]:
        return frozenset(self.variables)


EMPTY_SCHEMA = Schema(())
