"""Functional dependencies: closures, Sigma-reducts, FD-guided view trees
(Section 4.4, Definition 4.9, Theorem 4.11).

Non-hierarchical queries can behave like hierarchical ones over databases
satisfying functional dependencies.  The *Sigma-reduct* extends each
atom's schema (and the head) with its closure under the FDs; when the
reduct is q-hierarchical, the reduct's canonical variable order — with
the *original* atoms re-anchored into it — maintains the original query
with O(1) updates and O(1) delay, because every sibling lookup that looks
linear syntactically touches at most one tuple on FD-satisfying data
(Example 4.12 / Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from ..data.database import Database
from ..data.relation import Relation
from ..data.schema import Schema
from ..data.update import Update, coalesce
from ..query.ast import Atom, Query
from ..query.properties import is_q_hierarchical
from ..query.variable_order import (
    VariableOrder,
    VarOrderNode,
    canonical_order,
    validate_order,
)
from ..rings.lifting import LiftingMap
from ..obs import Observable, observed, share_stats
from ..viewtree.engine import ViewTreeEngine


@dataclass(frozen=True)
class FunctionalDependency:
    """``determinant -> dependent``, e.g. ``(X,) -> Y``."""

    determinant: tuple[str, ...]
    dependent: str

    @classmethod
    def parse(cls, text: str) -> "FunctionalDependency":
        """Parse ``"A, B -> C"``."""
        lhs, arrow, rhs = text.partition("->")
        if not arrow:
            raise ValueError(f"missing '->' in FD {text!r}")
        determinant = tuple(v.strip() for v in lhs.split(",") if v.strip())
        dependent = rhs.strip()
        if not determinant or not dependent:
            raise ValueError(f"malformed FD {text!r}")
        return cls(determinant, dependent)

    def __str__(self) -> str:
        return f"{', '.join(self.determinant)} -> {self.dependent}"


def parse_fds(*texts: str) -> tuple[FunctionalDependency, ...]:
    return tuple(FunctionalDependency.parse(t) for t in texts)


def closure(
    variables: Iterable[str], fds: Iterable[FunctionalDependency]
) -> frozenset[str]:
    """``C_Sigma(S)``: the closure of a variable set under the FDs."""
    result = set(variables)
    fds = list(fds)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.dependent not in result and set(fd.determinant) <= result:
                result.add(fd.dependent)
                changed = True
    return frozenset(result)


def sigma_reduct(query: Query, fds: Iterable[FunctionalDependency]) -> Query:
    """The Sigma-reduct (Definition 4.9): every atom schema and the head
    are extended with their closure, restricted to the query's variables."""
    fds = list(fds)
    query_vars = query.variables()
    atoms = []
    for atom in query.atoms:
        extended = closure(atom.variables, fds) & query_vars
        extra = tuple(sorted(extended - set(atom.variables)))
        atoms.append(Atom(atom.relation, atom.variables + extra, atom.static))
    head_closure = closure(query.head, fds) & query_vars
    extra_head = tuple(sorted(head_closure - set(query.head)))
    return Query(
        f"{query.name}_reduct",
        query.head + extra_head,
        tuple(atoms),
        query.input_variables,
    )


def q_hierarchical_under_fds(
    query: Query, fds: Iterable[FunctionalDependency]
) -> bool:
    """Does the Sigma-reduct become q-hierarchical (Theorem 4.11's premise)?"""
    return is_q_hierarchical(sigma_reduct(query, fds))


def fd_guided_order(
    query: Query, fds: Iterable[FunctionalDependency]
) -> VariableOrder:
    """A variable order for ``query`` built from its q-hierarchical reduct.

    The reduct's canonical order is reproduced node-for-node and the
    original atoms are re-anchored at their deepest variables (their
    variables lie on a reduct path because each atom's reduct schema
    does).
    """
    reduct = sigma_reduct(query, fds)
    if not is_q_hierarchical(reduct):
        raise ValueError(
            f"the Sigma-reduct of {query.name} is not q-hierarchical; "
            "Theorem 4.11 does not apply"
        )
    reduct_order = canonical_order(reduct)

    depth: dict[str, int] = {}
    clones: dict[str, VarOrderNode] = {}

    def clone(node: VarOrderNode, level: int) -> VarOrderNode:
        copy = VarOrderNode(node.variable)
        depth[node.variable] = level
        clones[node.variable] = copy
        for child in node.children:
            copy.children.append(clone(child, level + 1))
        return copy

    roots = [clone(root, 0) for root in reduct_order.roots]
    for atom in query.atoms:
        deepest = max(atom.variables, key=lambda v: depth[v])
        clones[deepest].atoms.append(atom)
    extended_head = _extended_head_query(query, fds)
    return validate_order(extended_head, roots)


def _extended_head_query(
    query: Query, fds: Iterable[FunctionalDependency]
) -> Query:
    """The original atoms with the head extended to its closure.

    Enumerating this query and projecting away the closure-added head
    variables yields the original query's output: on FD-satisfying data
    the added variables are determined by the original head.
    """
    query_vars = query.variables()
    head_closure = closure(query.head, list(fds)) & query_vars
    extra_head = tuple(sorted(head_closure - set(query.head)))
    return Query(
        f"{query.name}_ext",
        query.head + extra_head,
        query.atoms,
        query.input_variables,
    )


class FDEngine(Observable):
    """Theorem 4.11 maintenance: O(1) updates/delay on FD-satisfying data."""

    def __init__(
        self,
        query: Query,
        fds: Iterable[FunctionalDependency],
        database: Database,
        lifting: LiftingMap | None = None,
    ):
        self.query = query
        self.fds = tuple(fds)
        order = fd_guided_order(query, self.fds)
        self._extended = order.query
        self.engine = ViewTreeEngine(self._extended, database, order, lifting)
        self._project = Schema(self._extended.head).projector(query.head)

    def _propagate_stats(self, stats) -> None:
        share_stats(self.engine, stats)

    @observed
    def apply(self, update: Update, update_base: bool = True) -> None:
        self.engine.apply(update, update_base)

    @observed
    def apply_batch(self, batch) -> None:
        """Coalesced batch maintenance through the view-tree batch path."""
        self.engine.apply_batch(coalesce(batch, self.engine.ring))

    def enumerate(self) -> Iterator[tuple[tuple, Any]]:
        """Enumerate original-head tuples with constant delay.

        Keys are distinct as long as the data satisfies the FDs (the
        projected-away variables are functionally determined).
        """
        for key, payload in self.engine.enumerate():
            yield self._project(key), payload

    def output_relation(self, name: str | None = None) -> Relation:
        out = Relation(
            name or self.query.name, Schema(self.query.head), self.engine.ring
        )
        for key, payload in self.enumerate():
            out.add(key, payload)
        return out
