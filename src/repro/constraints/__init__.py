"""Data integrity constraints: FDs and PK-FK maintenance (Section 4.4)."""

from .fds import (
    FDEngine,
    FunctionalDependency,
    closure,
    fd_guided_order,
    parse_fds,
    q_hierarchical_under_fds,
    sigma_reduct,
)
from .pkfk import Dimension, StarJoinCounter

__all__ = [
    "Dimension",
    "FDEngine",
    "FunctionalDependency",
    "StarJoinCounter",
    "closure",
    "fd_guided_order",
    "parse_fds",
    "q_hierarchical_under_fds",
    "sigma_reduct",
]
