"""Primary key / foreign key maintenance under valid batches (Ex. 4.13).

A star join couples a *fact* relation to several *dimension* relations,
each joined on the dimension's primary key.  Such joins — like the JOB
benchmark's Title / Movie_Companies / Company_Name example — are not
q-hierarchical, yet under *valid* update batches (batches mapping
consistent databases to consistent databases) the join aggregate is
maintainable in amortized constant time per single-tuple update:

* a fact update costs one lookup per dimension;
* a dimension update for key ``v`` touches the facts referencing ``v``,
  whose cost amortizes against those facts' own (constant-time) updates —
  in a consistent end state every expensive dimension update is paired
  with the matching cheap fact updates, regardless of execution order.

:class:`StarJoinCounter` maintains ``SUM over the join`` of the payload
products (COUNT under the integer ring with unit payloads) and tracks
consistency so tests can observe the amortization argument directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..data.relation import Relation
from ..data.schema import Schema
from ..data.update import Update, coalesce
from ..obs import Observable, observed
from ..rings.base import Ring
from ..rings.standard import Z


@dataclass(frozen=True)
class Dimension:
    """One dimension: relation name and which fact variable is its key."""

    name: str
    key_variable: str


class StarJoinCounter(Observable):
    """Amortized O(1) maintenance of a star join's aggregate."""

    def __init__(
        self,
        fact_name: str,
        fact_schema: Schema | tuple[str, ...],
        dimensions: list[Dimension],
        ring: Ring = Z,
    ):
        if not isinstance(fact_schema, Schema):
            fact_schema = Schema(fact_schema)
        for dimension in dimensions:
            if dimension.key_variable not in fact_schema:
                raise ValueError(
                    f"dimension key {dimension.key_variable!r} not in fact "
                    f"schema {fact_schema.variables!r}"
                )
        self.ring = ring
        self.fact_name = fact_name
        self.fact = Relation(fact_name, fact_schema, ring)
        self.dimensions = list(dimensions)
        self._by_name = {d.name: d for d in dimensions}
        #: Per dimension, the aggregated payload per key value:
        #: agg[name][v] = SUM of payloads of dimension tuples with key v.
        self.dim_aggregates: dict[str, Relation] = {
            d.name: Relation(f"agg_{d.name}", (d.key_variable,), ring)
            for d in dimensions
        }
        self.count: Any = ring.zero
        # Fact tuples are indexed by each foreign key for dimension-side
        # repairs.
        for dimension in self.dimensions:
            self.fact.index_on((dimension.key_variable,))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    @observed
    def apply(self, update: Update) -> None:
        if update.relation == self.fact_name:
            self._update_fact(update.key, update.payload)
        elif update.relation in self._by_name:
            self._update_dimension(update.relation, update.key, update.payload)
        else:
            raise KeyError(f"unknown relation {update.relation!r}")

    @observed
    def apply_batch(self, batch) -> None:
        # Ring-coalescing cancels same-key churn before the star probes.
        for update in coalesce(batch, self.ring):
            self.apply(update)

    def _update_fact(self, key: tuple, payload: Any) -> None:
        """O(#dimensions): one aggregate lookup per dimension."""
        factor = payload
        for dimension in self.dimensions:
            value = self.fact.schema.project(key, (dimension.key_variable,))
            factor = self.ring.mul(
                factor, self.dim_aggregates[dimension.name].get(value)
            )
        self.count = self.ring.add(self.count, factor)
        self.fact.add(key, payload)

    def _update_dimension(self, name: str, key: tuple, payload: Any) -> None:
        """O(#facts referencing the key); amortized O(1) in valid batches.

        The dimension key is the first component of the dimension tuple's
        key (``(v, ...attributes)``); only the aggregate per key matters
        for the join, so the update folds into ``dim_aggregates``.
        """
        dimension = self._by_name[name]
        value = (key[0],)
        aggregates = self.dim_aggregates[name]
        # Repair the count: every referencing fact's contribution changes
        # by fact_payload * (other dimensions' aggregates) * payload.
        delta_total = self.ring.zero
        for fact_key in self.fact.group((dimension.key_variable,), value):
            contribution = self.fact.get(fact_key)
            for other in self.dimensions:
                if other.name == name:
                    continue
                other_value = self.fact.schema.project(
                    fact_key, (other.key_variable,)
                )
                contribution = self.ring.mul(
                    contribution, self.dim_aggregates[other.name].get(other_value)
                )
            delta_total = self.ring.add(delta_total, contribution)
        self.count = self.ring.add(self.count, self.ring.mul(payload, delta_total))
        aggregates.add(value, payload)

    # ------------------------------------------------------------------
    # Consistency (PK-FK integrity)
    # ------------------------------------------------------------------

    def dangling_references(self) -> dict[str, set]:
        """Foreign-key values in the fact with no dimension tuple.

        Empty for consistent databases; intermediate inconsistency during
        an out-of-order valid batch is expected and allowed.
        """
        dangling: dict[str, set] = {}
        for dimension in self.dimensions:
            aggregates = self.dim_aggregates[dimension.name]
            missing = set()
            for value in self.fact.distinct((dimension.key_variable,)):
                if self.ring.is_zero(aggregates.get(value)):
                    missing.add(value[0])
            if missing:
                dangling[dimension.name] = missing
        return dangling

    def is_consistent(self) -> bool:
        return not self.dangling_references()
