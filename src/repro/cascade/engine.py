"""Cascading q-hierarchical queries (Section 4.2, Example 4.5, Fig. 5).

A non-q-hierarchical query ``Q1`` that admits a q-hierarchical rewriting
over a q-hierarchical query ``Q2`` can piggyback on ``Q2``'s maintenance:

* ``Q2`` is maintained by its own view tree with O(1) updates and delay;
* ``Q1`` is maintained by a view tree over the rewriting
  ``Q1' = Q2(head) * rest``, whose ``Q2`` leaf is the materialized view
  ``V_Q2`` of ``Q2``'s output;
* ``V_Q2`` is *not* refreshed on updates — it is refreshed during the
  enumeration of ``Q2``'s output, whose cost asymptotically covers the
  propagation (each propagated tuple adds O(1) on top of the enumeration
  step that visits it).

Consequently both queries enjoy amortized O(1) updates and O(1) delay,
provided (i) both outputs are enumerated and (ii) ``Q2``'s enumeration is
triggered before ``Q1``'s — the engine enforces (ii) and raises
:class:`StaleCascadeError` otherwise.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..data.database import Database
from ..data.relation import Relation
from ..data.schema import Schema
from ..data.update import Update, coalesce
from ..obs import Observable, observed, share_stats
from ..query.ast import Query
from ..query.properties import is_q_hierarchical
from ..query.rewriting import rewrite_using
from ..rings.lifting import LiftingMap
from ..viewtree.engine import ViewTreeEngine


class StaleCascadeError(RuntimeError):
    """Q1 enumeration requested while V_Q2 is stale (condition (ii))."""


class CascadeEngine(Observable):
    """Joint maintenance of a q-hierarchical Q2 and a cascading Q1."""

    def __init__(
        self,
        q1: Query,
        q2: Query,
        database: Database,
        lifting: LiftingMap | None = None,
    ):
        if not is_q_hierarchical(q2):
            raise ValueError(f"{q2.name} is not q-hierarchical")
        rewriting = rewrite_using(q1, q2)
        if rewriting is None:
            raise ValueError(
                f"no sound rewriting of {q1.name} over {q2.name} exists"
            )
        if not is_q_hierarchical(rewriting):
            raise ValueError(
                f"the rewriting {rewriting.name} is not q-hierarchical"
            )
        self.q1 = q1
        self.q2 = q2
        self.rewriting = rewriting
        self.database = database
        self.ring = database.ring

        self.q2_engine = ViewTreeEngine(q2, database, lifting=lifting)
        #: Materialized output of Q2, refreshed only during Q2 enumeration.
        self.v_q2 = Relation(q2.name, Schema(q2.head), self.ring)
        for key, payload in self.q2_engine.enumerate():
            self.v_q2.add(key, payload)

        # The top engine maintains Q1' over a database in which Q2's
        # output appears as an ordinary relation (fed by enumerate_q2).
        self._top_db = Database(ring=self.ring)
        self._top_db.add_relation(self.v_q2)
        for atom in rewriting.atoms:
            if atom.relation != q2.name and atom.relation not in self._top_db:
                self._top_db.add_relation(database[atom.relation])
        self.q1_engine = ViewTreeEngine(rewriting, self._top_db, lifting=lifting)

        self._q2_relations = frozenset(a.relation for a in q2.atoms)
        self._rest_relations = frozenset(
            a.relation for a in rewriting.atoms if a.relation != q2.name
        )
        self._stale = False

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _propagate_stats(self, stats) -> None:
        share_stats(self.q1_engine, stats)
        share_stats(self.q2_engine, stats)

    @observed
    def apply(self, update: Update) -> None:
        """O(1) per update for q-hierarchical Q2 and rewriting."""
        if update.relation in self.database:
            self.database[update.relation].add(update.key, update.payload)
        if update.relation in self._q2_relations:
            self.q2_engine.apply(update, update_base=False)
            self._stale = True  # V_Q2 no longer mirrors Q2's output
        if update.relation in self._rest_relations:
            self.q1_engine.apply(update, update_base=False)

    @observed
    def apply_batch(self, batch) -> None:
        # Ring-coalescing cancels same-key churn before the per-update
        # routing (batches over a ring commute, so the sum is the same).
        for update in coalesce(batch, self.ring):
            self.apply(update)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def enumerate_q2(self) -> Iterator[tuple[tuple, Any]]:
        """Enumerate Q2's output, piggybacking V_Q2 / Q1-view refreshes.

        Each visited tuple whose payload differs from the stored V_Q2
        entry is propagated into the Q1 view tree — a constant amount of
        work per enumerated tuple.  Tuples that vanished from Q2's output
        are retracted in a final reconciliation sweep, whose cost is
        covered by the earlier enumerations that inserted them.
        """
        seen: set[tuple] = set()
        for key, payload in self.q2_engine.enumerate():
            seen.add(key)
            stored = self.v_q2.get(key)
            if stored != payload:
                delta = self.ring.sub(payload, stored)
                self.v_q2.add(key, delta)
                self.q1_engine.apply(
                    Update(self.q2.name, key, delta), update_base=False
                )
            yield key, payload
        for key in [k for k in self.v_q2.keys() if k not in seen]:
            stored = self.v_q2.get(key)
            self.v_q2.add(key, self.ring.neg(stored))
            self.q1_engine.apply(
                Update(self.q2.name, key, self.ring.neg(stored)),
                update_base=False,
            )
        self._stale = False

    def refresh(self) -> None:
        """Drain a Q2 enumeration purely for its propagation side effect."""
        for _ in self.enumerate_q2():
            pass

    def enumerate_q1(self, strict: bool = True) -> Iterator[tuple[tuple, Any]]:
        """Enumerate Q1's output.

        With ``strict`` (the default) this raises
        :class:`StaleCascadeError` when Q2 was updated but not enumerated
        since — the paper's condition (ii).  With ``strict=False`` the
        engine refreshes V_Q2 itself first (paying the Q2 enumeration).
        """
        if self._stale:
            if strict:
                raise StaleCascadeError(
                    "Q2 was updated since its last enumeration; enumerate "
                    "Q2 first (condition (ii) of Section 4.2)"
                )
            self.refresh()
        return self.q1_engine.enumerate()
