"""Multi-query maintenance: plan cascades across a query set (§4.2).

Section 4.2 opens with the observation that *sets* of queries offer
reuse: a non-q-hierarchical query can piggyback on a q-hierarchical one.
``MultiQueryEngine`` automates that search over a workload: for every
query that is not q-hierarchical on its own, it tries to rewrite it over
each q-hierarchical member of the set; queries with a sound
q-hierarchical rewriting are served by a :class:`CascadeEngine`, the rest
by their individually-planned engines.

Each member engine runs over a private snapshot of the relations it
needs (engines already keep private leaf copies; this makes the isolation
explicit), while the shared database receives every update exactly once —
so cross-engine aliasing cannot arise, at the price of O(#queries * N)
memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..core.engine import IVMEngine
from ..data.database import Database
from ..data.update import Update, coalesce
from ..obs import Observable, observed, share_stats
from ..query.ast import Query
from ..query.properties import is_q_hierarchical
from ..query.rewriting import rewrite_using
from .engine import CascadeEngine


@dataclass
class QueryAssignment:
    """How one workload query is maintained."""

    query: Query
    mode: str  # "direct" | "cascade-host" | "cascade-rider"
    via: Optional[str] = None  # host query name for riders

    def __str__(self) -> str:
        if self.mode == "cascade-rider":
            return f"{self.query.name}: cascades over {self.via}"
        return f"{self.query.name}: {self.mode}"


class MultiQueryEngine(Observable):
    """Maintain a set of queries, cascading where Section 4.2 allows."""

    def __init__(self, queries: list[Query], database: Database):
        names = [q.name for q in queries]
        if len(set(names)) != len(names):
            raise ValueError("workload queries must have distinct names")
        self.database = database
        self.assignments: dict[str, QueryAssignment] = {}
        self._cascades: dict[str, CascadeEngine] = {}
        self._direct: dict[str, IVMEngine] = {}
        #: relation name -> engines (by query name) consuming its updates.
        self._routes: dict[str, list[str]] = {}

        # Phase 1: plan — find a host for every non-q-hierarchical query.
        hosts = [q for q in queries if is_q_hierarchical(q)]
        rider_host: dict[str, Query] = {}
        for query in queries:
            if is_q_hierarchical(query):
                continue
            for host in hosts:
                rewriting = rewrite_using(query, host)
                if rewriting is not None and is_q_hierarchical(rewriting):
                    rider_host[query.name] = host
                    break
        used_hosts = {host.name for host in rider_host.values()}

        # Phase 2: instantiate.  A host that riders use is maintained
        # once, inside the cascade (the rider piggybacks on *that* copy);
        # every other query gets its individually-planned engine.
        #: host name -> the cascade engine that maintains it.
        self._host_cascade: dict[str, CascadeEngine] = {}
        for query in queries:
            if query.name in rider_host:
                host = rider_host[query.name]
                private = self._snapshot(query, extra=host)
                cascade = CascadeEngine(query, host, private)
                self._cascades[query.name] = cascade
                self._host_cascade.setdefault(host.name, cascade)
                self.assignments[query.name] = QueryAssignment(
                    query, "cascade-rider", via=host.name
                )
            elif query.name in used_hosts:
                self.assignments[query.name] = QueryAssignment(
                    query, "cascade-host"
                )
            else:
                self._direct[query.name] = IVMEngine(
                    query, self._snapshot(query)
                )
                self.assignments[query.name] = QueryAssignment(query, "direct")
        for query in queries:
            consumers = self._routes
            for atom in query.atoms:
                consumers.setdefault(atom.relation, [])
                if query.name not in consumers[atom.relation]:
                    consumers[atom.relation].append(query.name)

    def _snapshot(self, query: Query, extra: Query | None = None) -> Database:
        """A private database holding copies of the needed relations."""
        private = Database(ring=self.database.ring)
        needed = {a.relation for a in query.atoms}
        if extra is not None:
            needed |= {a.relation for a in extra.atoms}
        for name in needed:
            private.add_relation(self.database[name].copy())
        return private

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _propagate_stats(self, stats) -> None:
        for cascade in self._cascades.values():
            share_stats(cascade, stats)
        for engine in self._direct.values():
            share_stats(engine, stats)

    @observed
    def apply(self, update: Update) -> None:
        """Route one update to the shared base and every consumer engine."""
        if update.relation in self.database:
            self.database[update.relation].add(update.key, update.payload)
        for query_name in self._routes.get(update.relation, ()):
            cascade = self._cascades.get(query_name)
            if cascade is not None:
                cascade.apply(update)
            elif query_name in self._direct:
                self._direct[query_name].apply(update)
            # cascade-hosts are fed through their rider's cascade above.

    @observed
    def apply_batch(self, batch) -> None:
        # Ring-coalescing cancels same-key churn once for all consumers.
        for update in coalesce(batch, self.database.ring):
            self.apply(update)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def enumerate(self, name: str) -> Iterator[tuple[tuple, Any]]:
        """Enumerate one workload query's output.

        For a cascade rider this refreshes its host first (condition (ii)
        of Section 4.2), paying the host enumeration.
        """
        if name in self._cascades:
            return self._cascades[name].enumerate_q1(strict=False)
        if name in self._host_cascade:
            return self._host_cascade[name].enumerate_q2()
        if name in self._direct:
            return self._direct[name].enumerate()
        raise KeyError(f"unknown query {name!r}")

    def plan_report(self) -> str:
        return "\n".join(
            str(self.assignments[name]) for name in sorted(self.assignments)
        )
