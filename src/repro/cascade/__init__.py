"""Cascading q-hierarchical queries (Section 4.2)."""

from .engine import CascadeEngine, StaleCascadeError
from .multi import MultiQueryEngine, QueryAssignment

__all__ = [
    "CascadeEngine",
    "MultiQueryEngine",
    "QueryAssignment",
    "StaleCascadeError",
]
