"""Async ingestion + serving front-end over the maintenance engines.

The compiled kernels of :mod:`repro.viewtree` and :mod:`repro.shard`
answer "how fast can one batch be maintained?"; this package answers the
production question the paper frames in its introduction — keeping a
view fresh **while it is being queried**.  Three pieces:

* :class:`GroupCommitQueue` — a bounded asyncio queue whose consumer
  side seals adaptive group commits: a batch closes when it reaches the
  size cap **or** its oldest update hits the latency deadline, whichever
  fires first.  Producers get backpressure (``put`` awaits) at the
  high-water mark.
* :class:`AsyncIVMServer` — accepts concurrent ``submit()`` writers,
  group-commits sealed batches into ``engine.apply_batch`` on a worker
  thread, and answers ``lookup()`` / ``enumerate()`` between commits
  from committed state, recording commit latency, batch size, queue
  depth, and read staleness into an attached
  :class:`~repro.obs.MaintenanceStats` (the ``serving`` block of the
  ``repro.obs/1`` schema).
* :mod:`repro.serve.loadgen` — closed-loop load generator (N writer
  tasks + M reader tasks over the uniform/zipf/sliding-window stream
  shapes) behind ``python -m repro serve`` and
  ``benchmarks/bench_serve.py``.
"""

from .batcher import GroupCommitQueue
from .loadgen import run_load_test, update_stream, value_sampler
from .server import AsyncIVMServer, ChangeFeed

__all__ = [
    "AsyncIVMServer",
    "ChangeFeed",
    "GroupCommitQueue",
    "run_load_test",
    "update_stream",
    "value_sampler",
]
