"""Bounded queue with adaptive group-commit batch sealing.

:class:`GroupCommitQueue` is the ingestion buffer between concurrent
asyncio writers and the single committer task of
:class:`~repro.serve.server.AsyncIVMServer`.  Writers ``put`` updates
(awaiting at the high-water mark — that wait *is* the backpressure
signal); the committer calls :meth:`GroupCommitQueue.collect`, which
seals a batch when it reaches ``max_batch`` updates **or** when the
oldest queued update has waited ``max_delay`` seconds, whichever fires
first.  The size trigger bounds per-commit work; the deadline trigger
bounds read staleness under a trickle of writers.

All coordination runs on one event loop, so the check-then-wait
sequences below are race-free: no ``await`` sits between testing the
deque and clearing the event that guards it.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any


class QueueClosed(RuntimeError):
    """Raised by ``put`` once the queue has been closed for shutdown."""


class GroupCommitQueue:
    """Bounded FIFO of ``(arrival, item)`` pairs with batch sealing.

    ``high_water`` bounds the number of queued items; producers block in
    :meth:`put` (and are told how long they waited) while the queue sits
    at the mark.  :meth:`collect` is single-consumer.
    """

    def __init__(self, high_water: int = 4096):
        if high_water < 1:
            raise ValueError("high_water must be at least 1")
        self.high_water = high_water
        self.closed = False
        self._items: deque[tuple[float, Any]] = deque()
        self._not_empty = asyncio.Event()
        self._not_full = asyncio.Event()
        self._not_full.set()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def oldest_arrival(self) -> float | None:
        """``perf_counter`` arrival of the oldest queued item, if any."""
        return self._items[0][0] if self._items else None

    def close(self) -> None:
        """Refuse further ``put``s and wake every waiter.

        Items already queued stay collectable: subsequent
        :meth:`collect` calls drain them (trigger ``"drain"``) and then
        return ``None``.
        """
        self.closed = True
        self._not_empty.set()
        self._not_full.set()

    async def put(self, item: Any) -> float:
        """Enqueue ``item``; return seconds spent blocked on backpressure."""
        waited = 0.0
        while len(self._items) >= self.high_water and not self.closed:
            self._not_full.clear()
            start = time.perf_counter()
            await self._not_full.wait()
            waited += time.perf_counter() - start
        if self.closed:
            raise QueueClosed("queue is closed")
        self._items.append((time.perf_counter(), item))
        self._not_empty.set()
        return waited

    async def collect(
        self, max_batch: int, max_delay: float
    ) -> tuple[list, str, int, float] | None:
        """Seal and return the next group commit.

        Returns ``(batch, trigger, depth, oldest_arrival)`` where
        ``trigger`` is ``"size"`` / ``"deadline"`` / ``"drain"`` and
        ``depth`` is the queue depth at seal time (the sealed batch plus
        whatever is still waiting behind it) — or ``None`` once the
        queue is closed and empty.
        """
        max_batch = max(max_batch, 1)
        while not self._items:
            if self.closed:
                return None
            self._not_empty.clear()
            await self._not_empty.wait()
        oldest = self._items[0][0]
        deadline = oldest + max_delay
        batch: list = []
        while True:
            while self._items and len(batch) < max_batch:
                batch.append(self._items.popleft()[1])
            if len(batch) >= max_batch:
                trigger = "size"
                break
            if self.closed:
                trigger = "drain"
                break
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                trigger = "deadline"
                break
            self._not_empty.clear()
            try:
                await asyncio.wait_for(self._not_empty.wait(), remaining)
            except asyncio.TimeoutError:
                trigger = "deadline"
                break
        depth = len(batch) + len(self._items)
        if len(self._items) < self.high_water:
            self._not_full.set()
        return batch, trigger, depth, oldest
