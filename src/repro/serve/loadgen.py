"""Closed-loop load generation for the serving front-end.

Reuses the ``stats`` CLI's stream shapes — uniform / zipf value
distributions and the sliding-window insert+delayed-delete pairing —
but packaged as reusable generators so ``python -m repro serve``,
``benchmarks/bench_serve.py``, and the test suite all drive the
:class:`~repro.serve.server.AsyncIVMServer` through the same streams.

Validity: each writer task draws from its **own** independent stream
(seeded ``seed + writer_index``), so a delete always retracts a tuple
its own writer inserted earlier.  Updates commute across writers (ring
additions), so any interleaving the server commits is equivalent to some
serial replay — the property the equivalence tests pin down.
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import deque
from typing import Any, Callable, Iterator

from ..data.update import Update
from ..viewtree.changes import EpochGapError


def value_sampler(
    rng: random.Random, domain: int, workload: str, zipf_s: float = 1.2
) -> Callable[[], int]:
    """A ``() -> int`` attribute-value sampler for the chosen workload.

    ``uniform`` draws each value with equal probability; ``zipf`` draws
    value ``k`` with probability proportional to ``1/(k+1)**s``, so a
    few hot join-key values dominate — the adversarial shape for hash
    sharding (hot keys pile onto one shard) and for heavy/light
    partitioning schemes.
    """
    if workload == "uniform":
        return lambda: rng.randrange(domain)
    if workload == "zipf":
        import bisect
        import itertools

        weights = [1.0 / (k + 1) ** zipf_s for k in range(domain)]
        cumulative = list(itertools.accumulate(weights))
        total = cumulative[-1]

        def sample() -> int:
            return min(
                bisect.bisect_left(cumulative, rng.random() * total),
                domain - 1,
            )

        return sample
    raise ValueError(f"unknown workload shape {workload!r}")


def update_stream(
    query,
    updates: int,
    *,
    domain: int = 16,
    seed: int = 0,
    workload: str = "uniform",
    zipf_s: float = 1.2,
    window: int = 256,
    deletes_ok: bool = True,
) -> Iterator[Update]:
    """Yield a valid ``updates``-long stream over the query's relations.

    Deletes only retract still-live insertions from this same stream, so
    multiplicities stay non-negative and enumeration stays sound.
    ``sliding-window`` keeps a FIFO of the last ``window`` insertions
    and emits the matching delete as each tuple falls out of the window.
    """
    rng = random.Random(seed)
    value = value_sampler(
        rng,
        domain,
        "uniform" if workload == "sliding-window" else workload,
        zipf_s,
    )
    static_names = {atom.relation for atom in getattr(query, "static_atoms", ())}
    arities: dict[str, int] = {}
    dynamic: list[str] = []
    for atom in query.atoms:
        if atom.relation not in arities:
            arities[atom.relation] = len(atom.variables)
            if atom.relation not in static_names:
                dynamic.append(atom.relation)
    if not dynamic:
        raise ValueError("query has no dynamic relations to stream into")

    def random_key(relation: str) -> tuple:
        return tuple(value() for _ in range(arities[relation]))

    live: dict[str, list[tuple]] = {name: [] for name in dynamic}
    fifo: deque[tuple[str, tuple]] = deque()
    for _ in range(updates):
        relation = dynamic[rng.randrange(len(dynamic))]
        if workload == "sliding-window":
            if len(fifo) >= max(window, 1):
                relation, key = fifo.popleft()
                yield Update(relation, key, -1)
                continue
            key = random_key(relation)
            fifo.append((relation, key))
            yield Update(relation, key, 1)
            continue
        keys = live[relation]
        if deletes_ok and keys and rng.random() < 0.25:
            key = keys.pop(rng.randrange(len(keys)))
            yield Update(relation, key, -1)
        else:
            key = random_key(relation)
            keys.append(key)
            yield Update(relation, key, 1)


async def run_load_test(
    server,
    query,
    updates: int,
    *,
    writers: int = 4,
    readers: int = 2,
    domain: int = 16,
    seed: int = 0,
    workload: str = "uniform",
    zipf_s: float = 1.2,
    window: int = 256,
    deletes_ok: bool = True,
    change_feed: bool = False,
) -> dict[str, Any]:
    """Drive ``server`` closed-loop and return a summary dict.

    ``writers`` tasks split ``updates`` between them, each submitting
    its own independently-seeded stream as fast as backpressure allows.
    ``readers`` tasks run point lookups on random candidate keys until
    the writers finish.  The returned summary reports the sustained
    end-to-end rate (submit of first update to drain of last), the
    maintenance-only rate (updates over summed commit time), and the
    commit-latency / read-staleness percentiles from the recorder.

    With ``change_feed=True`` (engines with change-stream support) a
    subscriber task seeds an absolute state from ``enumerate()`` and
    applies every per-epoch delta the feed delivers; the summary then
    carries ``feed_deltas`` / ``feed_tuples`` / ``feed_gaps`` and
    ``maintained_ok`` — whether the delta-maintained state finished
    identical to a fresh server enumeration.
    """
    writers = max(int(writers), 1)
    head = tuple(query.head)
    key_rng = random.Random(seed ^ 0x5EED)
    key_value = value_sampler(
        key_rng,
        domain,
        "uniform" if workload == "sliding-window" else workload,
        zipf_s,
    )
    per_writer = [updates // writers] * writers
    per_writer[0] += updates - sum(per_writer)

    async def write(index: int, count: int) -> None:
        for update in update_stream(
            query,
            count,
            domain=domain,
            seed=seed + index,
            workload=workload,
            zipf_s=zipf_s,
            window=window,
            deletes_ok=deletes_ok,
        ):
            await server.submit(update)

    done = asyncio.Event()
    reads = 0

    async def read() -> None:
        nonlocal reads
        while not done.is_set():
            if head:
                await server.lookup(tuple(key_value() for _ in head))
            else:
                await server.scalar()
            reads += 1
            await asyncio.sleep(0)

    feed = None
    feed_task = None
    feed_state: dict = {}
    feed_counts = {"deltas": 0, "tuples": 0, "gaps": 0}
    if change_feed:
        feed_state.update(await server.enumerate())
        feed = server.subscribe()

        async def consume() -> None:
            while True:
                try:
                    delta = await feed.__anext__()
                except StopAsyncIteration:
                    return
                except EpochGapError:
                    # Stream gapped (e.g. worker pool rebuild): re-seed
                    # with an absolute drain and keep consuming.
                    feed_counts["gaps"] += 1
                    fresh = dict(await server.enumerate())
                    feed_state.clear()
                    feed_state.update(fresh)
                    continue
                feed_counts["deltas"] += 1
                feed_counts["tuples"] += len(delta)
                delta.apply_to(feed_state)

        feed_task = asyncio.get_running_loop().create_task(consume())

    start = time.perf_counter()
    reader_tasks = [
        asyncio.get_running_loop().create_task(read())
        for _ in range(max(int(readers), 0))
    ]
    try:
        await asyncio.gather(
            *(write(i, n) for i, n in enumerate(per_writer))
        )
        await server.drain()
    finally:
        done.set()
        if reader_tasks:
            await asyncio.gather(*reader_tasks, return_exceptions=True)
    seconds = time.perf_counter() - start

    maintained_ok = None
    if feed is not None:
        # Everything is committed and published; the close sentinel
        # queues behind any still-undelivered deltas, so the consumer
        # drains them all before exiting.
        feed.close()
        await feed_task
        maintained_ok = feed_state == dict(await server.enumerate())

    stats = getattr(server, "stats", None)
    summary: dict[str, Any] = {
        "updates": updates,
        "writers": writers,
        "readers": readers,
        "reads": reads,
        "seconds": seconds,
        "rate_end_to_end": updates / seconds if seconds > 0 else 0.0,
    }
    if feed is not None:
        summary.update(
            {
                "feed_deltas": feed_counts["deltas"],
                "feed_tuples": feed_counts["tuples"],
                "feed_gaps": feed_counts["gaps"],
                "maintained_entries": len(feed_state),
                "maintained_ok": maintained_ok,
            }
        )
    if stats is not None:
        commit_seconds = stats.commit_latency.stat.total
        summary.update(
            {
                "commits": stats.commits,
                "size_commits": stats.size_commits,
                "deadline_commits": stats.deadline_commits,
                "drain_commits": stats.drain_commits,
                "seconds_maintenance": commit_seconds,
                "rate_maintenance": (
                    updates / commit_seconds if commit_seconds > 0 else 0.0
                ),
                "commit_p50": stats.commit_latency.percentile(0.50),
                "commit_p99": stats.commit_latency.percentile(0.99),
                "mean_batch": stats.commit_batch_size.stat.mean,
                "backpressure_waits": stats.backpressure_waits,
                "staleness_p50": stats.read_staleness.percentile(0.50),
                "staleness_p99": stats.read_staleness.percentile(0.99),
            }
        )
    return summary
