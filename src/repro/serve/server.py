"""The asyncio serving front-end: concurrent writers, group commits.

:class:`AsyncIVMServer` wraps any engine exposing ``apply_batch`` (the
:class:`~repro.core.engine.IVMEngine` facade or a backend directly).
Concurrent writer tasks ``await server.submit(update)``; a single
committer task seals adaptive group commits off a
:class:`~repro.serve.batcher.GroupCommitQueue` and applies each batch on
a worker thread so the event loop keeps accepting submissions and
answering reads while maintenance runs.

Two read models are offered.  With **snapshot reads** (the default on
engines that support epoch snapshots), each commit publishes a new
epoch after it applies, and ``lookup`` / ``enumerate`` / ``scalar``
answer from the last *published* epoch without ever touching the
commit lock — readers never block commits and commits never block
readers.  On engines without snapshot support, reads serialize against
commits through an asyncio lock as before.  Either way each lookup
records its *staleness*: the age of the oldest update that had been
submitted but not yet visible to the read (under snapshot reads this
is the age of the published epoch's missing suffix — queued updates
plus the batch currently committing).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Iterable

from ..obs import MaintenanceStats, Observable
from ..obs.instrument import share_stats
from ..viewtree.changes import EpochGapError, OutputDelta
from .batcher import GroupCommitQueue, QueueClosed

#: Terminal sentinel pushed into every change feed at server stop.
_FEED_CLOSED = object()


class ChangeFeed:
    """An async iterator of per-epoch :class:`OutputDelta` objects.

    Obtained from :meth:`AsyncIVMServer.subscribe`.  Each committed
    batch that publishes an epoch pushes exactly one delta; iterate
    with ``async for delta in feed``.  A feed starts at the epoch
    current when it subscribed — seed an absolute state with
    ``await server.enumerate()`` first, then apply deltas.  If the
    stream gaps (e.g. a shard worker-pool rebuild reset the change
    window), the iterator raises :class:`EpochGapError`: re-seed with a
    full ``enumerate()`` and keep iterating.  The feed ends
    (``StopAsyncIteration``) when the server stops.
    """

    def __init__(self, server: "AsyncIVMServer"):
        self._server = server
        self._queue: asyncio.Queue = asyncio.Queue()

    def __aiter__(self) -> "ChangeFeed":
        return self

    async def __anext__(self) -> OutputDelta:
        item = await self._queue.get()
        if item is _FEED_CLOSED:
            raise StopAsyncIteration
        if isinstance(item, BaseException):
            raise item
        return item

    def close(self) -> None:
        """Unsubscribe; pending deltas are dropped."""
        self._server._feeds.discard(self)
        self._queue.put_nowait(_FEED_CLOSED)


class AsyncIVMServer(Observable):
    """Async ingestion + point-read server over a maintenance engine.

    Parameters
    ----------
    engine:
        Anything with ``apply_batch(list[Update])``; ``lookup`` /
        ``enumerate`` / ``scalar`` are used when present.
    max_batch:
        Size trigger — a commit seals as soon as this many updates are
        pending.  ``1`` degenerates to per-update commits.
    max_delay:
        Latency trigger in seconds — a commit seals once its oldest
        update has waited this long, even if the batch is short.
    high_water:
        Queue bound at which ``submit`` starts blocking (backpressure).
    snapshot_reads:
        ``True`` forces epoch snapshot reads (``ValueError`` if the
        engine does not support them), ``False`` forces lock-serialized
        reads, and ``None`` (default) auto-enables snapshot reads when
        the engine advertises ``supports_snapshots``.

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly.  An exception raised by a commit is
    captured and re-raised from the next ``submit`` / ``drain`` /
    ``lookup`` / ``stop`` call.
    """

    def __init__(
        self,
        engine: Any,
        *,
        max_batch: int = 256,
        max_delay: float = 0.002,
        high_water: int = 4096,
        snapshot_reads: bool | None = None,
        stats: MaintenanceStats | None = None,
    ):
        self.engine = engine
        self.max_batch = max(int(max_batch), 1)
        self.max_delay = max(float(max_delay), 0.0)
        supported = bool(getattr(engine, "supports_snapshots", False))
        if snapshot_reads and not supported:
            raise ValueError(
                "snapshot_reads=True but the engine does not support "
                "epoch snapshots"
            )
        self.snapshot_reads = supported if snapshot_reads is None else bool(
            snapshot_reads
        )
        self.queue = GroupCommitQueue(high_water)
        self._commit_lock = asyncio.Lock()
        self._inflight_oldest: float | None = None
        self._idle = asyncio.Event()
        self._idle.set()
        self._committer: asyncio.Task | None = None
        self._error: BaseException | None = None
        self._closed = False
        #: Server-held MaterializedView: when the engine emits change
        #: streams, ``enumerate`` answers from this O(δ)-maintained
        #: state instead of re-draining the whole epoch per call.
        self._matview = None
        #: The engine object carrying ``epoch``/``changes_since`` (the
        #: facade's backend), feeding change feeds from commits.
        self._change_source = None
        self._feed_epoch = 0
        self._feeds: set[ChangeFeed] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        #: Lock-serialized fallback: committed-state enumerations are
        #: cached per commit sequence number, so repeated reads between
        #: commits stop re-materializing an unchanged output.
        self._commit_seq = 0
        self._enum_cache: tuple[int, list] | None = None
        if stats is not None:
            self.attach_stats(stats)

    def _propagate_stats(self, stats: MaintenanceStats | None) -> None:
        share_stats(self.engine, stats)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "AsyncIVMServer":
        """Spawn the committer task (idempotent)."""
        if self._closed:
            raise RuntimeError("server already stopped")
        if self._committer is None:
            self._loop = asyncio.get_running_loop()
            if self.snapshot_reads:
                # Publish the pre-ingestion state so reads served before
                # the first commit already see a consistent epoch.
                self.engine.publish_epoch()
                if getattr(self.engine, "supports_changes", False):
                    # Maintained read state + change-feed plumbing: the
                    # subscription publishes its tracking baseline now,
                    # before any commit is in flight.
                    self._matview = self.engine.subscribe()
                    self._change_source = getattr(
                        self.engine, "backend", self.engine
                    )
                    self._feed_epoch = self._change_source.epoch
            self._committer = self._loop.create_task(self._commit_loop())
        return self

    async def stop(self) -> None:
        """Drain the queue, commit everything, and stop the committer."""
        if self._closed:
            self._reraise()
            return
        self._closed = True
        self.queue.close()
        if self._committer is not None:
            await self._committer
            self._committer = None
        self._idle.set()
        for feed in list(self._feeds):
            feed._queue.put_nowait(_FEED_CLOSED)
        self._feeds.clear()
        self._reraise()

    async def __aenter__(self) -> "AsyncIVMServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    async def submit(self, update: Any) -> None:
        """Enqueue one update; awaits while the queue is at high water."""
        self._reraise()
        if self._closed:
            raise RuntimeError("server is stopped")
        if self._committer is None:
            raise RuntimeError("server not started (use `async with`)")
        self._idle.clear()
        try:
            waited = await self.queue.put(update)
        except QueueClosed:
            # stop() closed the queue while this submit was blocked on
            # backpressure: the update was NOT accepted and will not be
            # committed.  Surface that as the same documented error a
            # post-stop submit gets, not the queue's internal exception.
            raise RuntimeError("server is stopped") from None
        stats = self._maintenance_stats
        if stats is not None:
            stats.record_submit()
            if waited > 0.0:
                stats.record_backpressure(waited)

    async def submit_many(self, updates: Iterable[Any]) -> None:
        for update in updates:
            await self.submit(update)

    async def drain(self) -> None:
        """Wait until every submitted update has been committed."""
        while True:
            self._reraise()
            if (
                not len(self.queue)
                and self._inflight_oldest is None
                and self._idle.is_set()
            ):
                return
            # The event alone is not authoritative (a commit may still
            # be in flight, or a submit may have raced in after the
            # committer set it).  Clear it *before* parking so a stale
            # set-state cannot turn the wait into a hot spin; the
            # committer sets it again once it really goes idle.
            self._idle.clear()
            await self._idle.wait()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    async def lookup(self, key: tuple) -> Any:
        """Point lookup against committed state, recording staleness.

        Under snapshot reads this answers from the last published epoch
        without taking the commit lock, so it never waits for an
        in-flight commit; staleness then measures the epoch's age (the
        oldest update the epoch is missing).
        """
        self._reraise()
        if self.snapshot_reads:
            start = time.perf_counter()
            staleness = self._staleness()
            result = self.engine.lookup_snapshot(tuple(key))
            stats = self._maintenance_stats
            if stats is not None:
                stats.record_serve_read(staleness)
                stats.record_snapshot_read(time.perf_counter() - start)
            return result
        async with self._commit_lock:
            staleness = self._staleness()
            result = self.engine.lookup(tuple(key))
        stats = self._maintenance_stats
        if stats is not None:
            stats.record_serve_read(staleness)
        return result

    async def enumerate(self) -> list[tuple[tuple, Any]]:
        """Materialize the committed output.

        With change streams the server holds a ``MaterializedView``
        patched in O(δ) per published epoch, so a steady-state call
        costs one catch-up patch plus the list build — not a full
        re-drain.  Plain snapshot reads enumerate the last published
        epoch lock-free; the lock-serialized fallback caches the
        result per commit so unchanged state is never re-materialized.
        """
        self._reraise()
        view = self._matview
        if view is not None:
            start = time.perf_counter()
            view.refresh()
            result = list(view.items())
            stats = self._maintenance_stats
            if stats is not None:
                stats.record_snapshot_read(time.perf_counter() - start)
            return result
        if self.snapshot_reads:
            start = time.perf_counter()
            result = list(self.engine.enumerate_snapshot())
            stats = self._maintenance_stats
            if stats is not None:
                stats.record_snapshot_read(time.perf_counter() - start)
            return result
        async with self._commit_lock:
            cached = self._enum_cache
            if cached is not None and cached[0] == self._commit_seq:
                return list(cached[1])
            result = list(self.engine.enumerate())
            self._enum_cache = (self._commit_seq, result)
            return list(result)

    async def scalar(self) -> Any:
        """Committed payload of a Boolean (empty-head) query."""
        self._reraise()
        if self.snapshot_reads:
            start = time.perf_counter()
            result = self.engine.scalar_snapshot()
            stats = self._maintenance_stats
            if stats is not None:
                stats.record_snapshot_read(time.perf_counter() - start)
            return result
        async with self._commit_lock:
            return self.engine.scalar()

    # ------------------------------------------------------------------
    # Change feeds
    # ------------------------------------------------------------------

    def subscribe(self) -> ChangeFeed:
        """Subscribe to per-epoch output deltas (one per commit).

        Requires an engine with change-stream support and snapshot
        reads (the default when supported).  Seed an absolute state
        with :meth:`enumerate` first; see :class:`ChangeFeed`.
        """
        if self._change_source is None:
            raise TypeError(
                "change feeds need an engine with output change streams "
                "(supports_changes) and snapshot reads enabled"
            )
        feed = ChangeFeed(self)
        self._feeds.add(feed)
        return feed

    def _fanout_changes(self, item) -> None:
        """Deliver one delta (or gap error) to every feed (loop thread)."""
        for feed in list(self._feeds):
            feed._queue.put_nowait(item)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _reraise(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def _staleness(self) -> float:
        """Age of the oldest update not visible to a read now (seconds).

        Under lock-serialized reads this is called with the commit lock
        held, so no commit is in flight and the only invisible updates
        are the queued ones.  Under snapshot reads it also counts the
        batch currently committing (``_inflight_oldest``), which the
        published epoch does not include yet — both fields only mutate
        on the event-loop thread, so no lock is needed.
        """
        oldest = self.queue.oldest_arrival
        if self._inflight_oldest is not None:
            oldest = (
                self._inflight_oldest
                if oldest is None
                else min(oldest, self._inflight_oldest)
            )
        if oldest is None:
            return 0.0
        return max(0.0, time.perf_counter() - oldest)

    def _commit_batch(self, batch: list) -> None:
        """Apply one sealed batch (runs on the committer's worker thread).

        Under snapshot reads the new epoch is published right after the
        batch lands; a failed batch publishes nothing, so readers keep
        answering from the last good epoch.
        """
        self.engine.apply_batch(batch)
        self._commit_seq += 1
        if self.snapshot_reads:
            self.engine.publish_epoch()
            source = self._change_source
            if source is not None:
                prev = self._feed_epoch
                self._feed_epoch = source.epoch
                if self._feeds:
                    try:
                        item = source.changes_since(prev)
                    except EpochGapError as exc:
                        item = exc
                    loop = self._loop
                    if loop is not None:
                        loop.call_soon_threadsafe(self._fanout_changes, item)

    async def _commit_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            sealed = await self.queue.collect(self.max_batch, self.max_delay)
            if sealed is None:
                return
            batch, trigger, depth, oldest = sealed
            if not batch:
                continue
            async with self._commit_lock:
                self._inflight_oldest = oldest
                start = time.perf_counter()
                try:
                    # A worker thread keeps the loop free for submits and
                    # read scheduling — and exercises the recorder's
                    # thread safety the same way executor shards do.
                    await loop.run_in_executor(
                        None, self._commit_batch, batch
                    )
                except BaseException as exc:  # surfaced on next call
                    self._error = exc
                    stats = self._maintenance_stats
                    if stats is not None:
                        # A failed commit applied nothing: count it
                        # apart, and keep it out of the commit-latency
                        # and batch-size distributions so the
                        # percentiles only describe real commits.
                        stats.record_commit_error()
                else:
                    elapsed = time.perf_counter() - start
                    stats = self._maintenance_stats
                    if stats is not None:
                        stats.record_commit(
                            elapsed, len(batch), depth, trigger
                        )
                finally:
                    self._inflight_oldest = None
            if not len(self.queue):
                self._idle.set()
