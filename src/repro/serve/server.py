"""The asyncio serving front-end: concurrent writers, group commits.

:class:`AsyncIVMServer` wraps any engine exposing ``apply_batch`` (the
:class:`~repro.core.engine.IVMEngine` facade or a backend directly).
Concurrent writer tasks ``await server.submit(update)``; a single
committer task seals adaptive group commits off a
:class:`~repro.serve.batcher.GroupCommitQueue` and applies each batch on
a worker thread so the event loop keeps accepting submissions and
answering reads while maintenance runs.

Two read models are offered.  With **snapshot reads** (the default on
engines that support epoch snapshots), each commit publishes a new
epoch after it applies, and ``lookup`` / ``enumerate`` / ``scalar``
answer from the last *published* epoch without ever touching the
commit lock — readers never block commits and commits never block
readers.  On engines without snapshot support, reads serialize against
commits through an asyncio lock as before.  Either way each lookup
records its *staleness*: the age of the oldest update that had been
submitted but not yet visible to the read (under snapshot reads this
is the age of the published epoch's missing suffix — queued updates
plus the batch currently committing).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Iterable

from ..obs import MaintenanceStats, Observable
from ..obs.instrument import share_stats
from .batcher import GroupCommitQueue, QueueClosed


class AsyncIVMServer(Observable):
    """Async ingestion + point-read server over a maintenance engine.

    Parameters
    ----------
    engine:
        Anything with ``apply_batch(list[Update])``; ``lookup`` /
        ``enumerate`` / ``scalar`` are used when present.
    max_batch:
        Size trigger — a commit seals as soon as this many updates are
        pending.  ``1`` degenerates to per-update commits.
    max_delay:
        Latency trigger in seconds — a commit seals once its oldest
        update has waited this long, even if the batch is short.
    high_water:
        Queue bound at which ``submit`` starts blocking (backpressure).
    snapshot_reads:
        ``True`` forces epoch snapshot reads (``ValueError`` if the
        engine does not support them), ``False`` forces lock-serialized
        reads, and ``None`` (default) auto-enables snapshot reads when
        the engine advertises ``supports_snapshots``.

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly.  An exception raised by a commit is
    captured and re-raised from the next ``submit`` / ``drain`` /
    ``lookup`` / ``stop`` call.
    """

    def __init__(
        self,
        engine: Any,
        *,
        max_batch: int = 256,
        max_delay: float = 0.002,
        high_water: int = 4096,
        snapshot_reads: bool | None = None,
        stats: MaintenanceStats | None = None,
    ):
        self.engine = engine
        self.max_batch = max(int(max_batch), 1)
        self.max_delay = max(float(max_delay), 0.0)
        supported = bool(getattr(engine, "supports_snapshots", False))
        if snapshot_reads and not supported:
            raise ValueError(
                "snapshot_reads=True but the engine does not support "
                "epoch snapshots"
            )
        self.snapshot_reads = supported if snapshot_reads is None else bool(
            snapshot_reads
        )
        self.queue = GroupCommitQueue(high_water)
        self._commit_lock = asyncio.Lock()
        self._inflight_oldest: float | None = None
        self._idle = asyncio.Event()
        self._idle.set()
        self._committer: asyncio.Task | None = None
        self._error: BaseException | None = None
        self._closed = False
        if stats is not None:
            self.attach_stats(stats)

    def _propagate_stats(self, stats: MaintenanceStats | None) -> None:
        share_stats(self.engine, stats)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "AsyncIVMServer":
        """Spawn the committer task (idempotent)."""
        if self._closed:
            raise RuntimeError("server already stopped")
        if self._committer is None:
            if self.snapshot_reads:
                # Publish the pre-ingestion state so reads served before
                # the first commit already see a consistent epoch.
                self.engine.publish_epoch()
            self._committer = asyncio.get_running_loop().create_task(
                self._commit_loop()
            )
        return self

    async def stop(self) -> None:
        """Drain the queue, commit everything, and stop the committer."""
        if self._closed:
            self._reraise()
            return
        self._closed = True
        self.queue.close()
        if self._committer is not None:
            await self._committer
            self._committer = None
        self._idle.set()
        self._reraise()

    async def __aenter__(self) -> "AsyncIVMServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    async def submit(self, update: Any) -> None:
        """Enqueue one update; awaits while the queue is at high water."""
        self._reraise()
        if self._closed:
            raise RuntimeError("server is stopped")
        if self._committer is None:
            raise RuntimeError("server not started (use `async with`)")
        self._idle.clear()
        try:
            waited = await self.queue.put(update)
        except QueueClosed:
            # stop() closed the queue while this submit was blocked on
            # backpressure: the update was NOT accepted and will not be
            # committed.  Surface that as the same documented error a
            # post-stop submit gets, not the queue's internal exception.
            raise RuntimeError("server is stopped") from None
        stats = self._maintenance_stats
        if stats is not None:
            stats.record_submit()
            if waited > 0.0:
                stats.record_backpressure(waited)

    async def submit_many(self, updates: Iterable[Any]) -> None:
        for update in updates:
            await self.submit(update)

    async def drain(self) -> None:
        """Wait until every submitted update has been committed."""
        while True:
            self._reraise()
            if (
                not len(self.queue)
                and self._inflight_oldest is None
                and self._idle.is_set()
            ):
                return
            # The event alone is not authoritative (a commit may still
            # be in flight, or a submit may have raced in after the
            # committer set it).  Clear it *before* parking so a stale
            # set-state cannot turn the wait into a hot spin; the
            # committer sets it again once it really goes idle.
            self._idle.clear()
            await self._idle.wait()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    async def lookup(self, key: tuple) -> Any:
        """Point lookup against committed state, recording staleness.

        Under snapshot reads this answers from the last published epoch
        without taking the commit lock, so it never waits for an
        in-flight commit; staleness then measures the epoch's age (the
        oldest update the epoch is missing).
        """
        self._reraise()
        if self.snapshot_reads:
            start = time.perf_counter()
            staleness = self._staleness()
            result = self.engine.lookup_snapshot(tuple(key))
            stats = self._maintenance_stats
            if stats is not None:
                stats.record_serve_read(staleness)
                stats.record_snapshot_read(time.perf_counter() - start)
            return result
        async with self._commit_lock:
            staleness = self._staleness()
            result = self.engine.lookup(tuple(key))
        stats = self._maintenance_stats
        if stats is not None:
            stats.record_serve_read(staleness)
        return result

    async def enumerate(self) -> list[tuple[tuple, Any]]:
        """Materialize the committed output.

        Snapshot reads enumerate the last published epoch lock-free;
        otherwise the enumeration serializes against commits.
        """
        self._reraise()
        if self.snapshot_reads:
            start = time.perf_counter()
            result = list(self.engine.enumerate_snapshot())
            stats = self._maintenance_stats
            if stats is not None:
                stats.record_snapshot_read(time.perf_counter() - start)
            return result
        async with self._commit_lock:
            return list(self.engine.enumerate())

    async def scalar(self) -> Any:
        """Committed payload of a Boolean (empty-head) query."""
        self._reraise()
        if self.snapshot_reads:
            start = time.perf_counter()
            result = self.engine.scalar_snapshot()
            stats = self._maintenance_stats
            if stats is not None:
                stats.record_snapshot_read(time.perf_counter() - start)
            return result
        async with self._commit_lock:
            return self.engine.scalar()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _reraise(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def _staleness(self) -> float:
        """Age of the oldest update not visible to a read now (seconds).

        Under lock-serialized reads this is called with the commit lock
        held, so no commit is in flight and the only invisible updates
        are the queued ones.  Under snapshot reads it also counts the
        batch currently committing (``_inflight_oldest``), which the
        published epoch does not include yet — both fields only mutate
        on the event-loop thread, so no lock is needed.
        """
        oldest = self.queue.oldest_arrival
        if self._inflight_oldest is not None:
            oldest = (
                self._inflight_oldest
                if oldest is None
                else min(oldest, self._inflight_oldest)
            )
        if oldest is None:
            return 0.0
        return max(0.0, time.perf_counter() - oldest)

    def _commit_batch(self, batch: list) -> None:
        """Apply one sealed batch (runs on the committer's worker thread).

        Under snapshot reads the new epoch is published right after the
        batch lands; a failed batch publishes nothing, so readers keep
        answering from the last good epoch.
        """
        self.engine.apply_batch(batch)
        if self.snapshot_reads:
            self.engine.publish_epoch()

    async def _commit_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            sealed = await self.queue.collect(self.max_batch, self.max_delay)
            if sealed is None:
                return
            batch, trigger, depth, oldest = sealed
            if not batch:
                continue
            async with self._commit_lock:
                self._inflight_oldest = oldest
                start = time.perf_counter()
                try:
                    # A worker thread keeps the loop free for submits and
                    # read scheduling — and exercises the recorder's
                    # thread safety the same way executor shards do.
                    await loop.run_in_executor(
                        None, self._commit_batch, batch
                    )
                except BaseException as exc:  # surfaced on next call
                    self._error = exc
                    stats = self._maintenance_stats
                    if stats is not None:
                        # A failed commit applied nothing: count it
                        # apart, and keep it out of the commit-latency
                        # and batch-size distributions so the
                        # percentiles only describe real commits.
                        stats.record_commit_error()
                else:
                    elapsed = time.perf_counter() - start
                    stats = self._maintenance_stats
                    if stats is not None:
                        stats.record_commit(
                            elapsed, len(batch), depth, trigger
                        )
                finally:
                    self._inflight_oldest = None
            if not len(self.queue):
                self._idle.set()
