"""The asyncio serving front-end: concurrent writers, group commits.

:class:`AsyncIVMServer` wraps any engine exposing ``apply_batch`` (the
:class:`~repro.core.engine.IVMEngine` facade or a backend directly).
Concurrent writer tasks ``await server.submit(update)``; a single
committer task seals adaptive group commits off a
:class:`~repro.serve.batcher.GroupCommitQueue` and applies each batch on
a worker thread so the event loop keeps accepting submissions and
answering reads while maintenance runs.  Reads (``lookup`` /
``enumerate`` / ``scalar``) serialize against commits through an asyncio
lock, so they always observe fully committed state — and each lookup
records its *staleness*: the age of the oldest update that had been
submitted but not yet committed when the read was answered.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Iterable

from ..obs import MaintenanceStats, Observable
from ..obs.instrument import share_stats
from .batcher import GroupCommitQueue


class AsyncIVMServer(Observable):
    """Async ingestion + point-read server over a maintenance engine.

    Parameters
    ----------
    engine:
        Anything with ``apply_batch(list[Update])``; ``lookup`` /
        ``enumerate`` / ``scalar`` are used when present.
    max_batch:
        Size trigger — a commit seals as soon as this many updates are
        pending.  ``1`` degenerates to per-update commits.
    max_delay:
        Latency trigger in seconds — a commit seals once its oldest
        update has waited this long, even if the batch is short.
    high_water:
        Queue bound at which ``submit`` starts blocking (backpressure).

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly.  An exception raised by a commit is
    captured and re-raised from the next ``submit`` / ``drain`` /
    ``lookup`` / ``stop`` call.
    """

    def __init__(
        self,
        engine: Any,
        *,
        max_batch: int = 256,
        max_delay: float = 0.002,
        high_water: int = 4096,
        stats: MaintenanceStats | None = None,
    ):
        self.engine = engine
        self.max_batch = max(int(max_batch), 1)
        self.max_delay = max(float(max_delay), 0.0)
        self.queue = GroupCommitQueue(high_water)
        self._commit_lock = asyncio.Lock()
        self._inflight_oldest: float | None = None
        self._idle = asyncio.Event()
        self._idle.set()
        self._committer: asyncio.Task | None = None
        self._error: BaseException | None = None
        self._closed = False
        if stats is not None:
            self.attach_stats(stats)

    def _propagate_stats(self, stats: MaintenanceStats | None) -> None:
        share_stats(self.engine, stats)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "AsyncIVMServer":
        """Spawn the committer task (idempotent)."""
        if self._closed:
            raise RuntimeError("server already stopped")
        if self._committer is None:
            self._committer = asyncio.get_running_loop().create_task(
                self._commit_loop()
            )
        return self

    async def stop(self) -> None:
        """Drain the queue, commit everything, and stop the committer."""
        if self._closed:
            self._reraise()
            return
        self._closed = True
        self.queue.close()
        if self._committer is not None:
            await self._committer
            self._committer = None
        self._idle.set()
        self._reraise()

    async def __aenter__(self) -> "AsyncIVMServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    async def submit(self, update: Any) -> None:
        """Enqueue one update; awaits while the queue is at high water."""
        self._reraise()
        if self._closed:
            raise RuntimeError("server is stopped")
        if self._committer is None:
            raise RuntimeError("server not started (use `async with`)")
        self._idle.clear()
        waited = await self.queue.put(update)
        stats = self._maintenance_stats
        if stats is not None:
            stats.record_submit()
            if waited > 0.0:
                stats.record_backpressure(waited)

    async def submit_many(self, updates: Iterable[Any]) -> None:
        for update in updates:
            await self.submit(update)

    async def drain(self) -> None:
        """Wait until every submitted update has been committed."""
        while True:
            self._reraise()
            if (
                self._idle.is_set()
                and not len(self.queue)
                and self._inflight_oldest is None
            ):
                return
            await self._idle.wait()
            # The event alone is not authoritative (a submit may have
            # raced in): yield once and re-check from the top.
            await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    async def lookup(self, key: tuple) -> Any:
        """Point lookup against committed state, recording staleness."""
        self._reraise()
        async with self._commit_lock:
            staleness = self._staleness()
            result = self.engine.lookup(tuple(key))
        stats = self._maintenance_stats
        if stats is not None:
            stats.record_serve_read(staleness)
        return result

    async def enumerate(self) -> list[tuple[tuple, Any]]:
        """Materialize the committed output (serialized against commits)."""
        self._reraise()
        async with self._commit_lock:
            return list(self.engine.enumerate())

    async def scalar(self) -> Any:
        """Committed payload of a Boolean (empty-head) query."""
        self._reraise()
        async with self._commit_lock:
            return self.engine.scalar()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _reraise(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def _staleness(self) -> float:
        """Age of the oldest submitted-but-uncommitted update (seconds).

        Called with the commit lock held, so no commit is in flight and
        the only uncommitted updates are the queued ones.
        """
        oldest = self.queue.oldest_arrival
        if self._inflight_oldest is not None:
            oldest = (
                self._inflight_oldest
                if oldest is None
                else min(oldest, self._inflight_oldest)
            )
        if oldest is None:
            return 0.0
        return max(0.0, time.perf_counter() - oldest)

    async def _commit_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            sealed = await self.queue.collect(self.max_batch, self.max_delay)
            if sealed is None:
                return
            batch, trigger, depth, oldest = sealed
            if not batch:
                continue
            async with self._commit_lock:
                self._inflight_oldest = oldest
                start = time.perf_counter()
                try:
                    # A worker thread keeps the loop free for submits and
                    # read scheduling — and exercises the recorder's
                    # thread safety the same way executor shards do.
                    await loop.run_in_executor(
                        None, self.engine.apply_batch, batch
                    )
                except BaseException as exc:  # surfaced on next call
                    self._error = exc
                finally:
                    elapsed = time.perf_counter() - start
                    self._inflight_oldest = None
                    stats = self._maintenance_stats
                    if stats is not None:
                        stats.record_commit(
                            elapsed, len(batch), depth, trigger
                        )
            if not len(self.queue):
                self._idle.set()
