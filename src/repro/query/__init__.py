"""Queries: joins with group-by aggregates, classifiers, variable orders."""

from .analysis import OrderAnalysis, UpdateCostBound, analyse_order, update_cost_bounds
from .ast import Atom, Query, query
from .hypergraph import (
    JoinTreeNode,
    build_join_tree,
    gyo_reduce,
    is_alpha_acyclic,
    is_free_connex,
)
from .parser import QueryParseError, parse_query
from .properties import (
    dominates,
    is_free_dominant,
    is_hierarchical,
    is_input_dominant,
    is_q_hierarchical,
    witness_non_hierarchical,
)
from .rewriting import find_embedding, rewrite_using
from .variable_order import (
    InvalidVariableOrder,
    VariableOrder,
    VarOrderNode,
    canonical_order,
    order_for,
    search_order,
    validate_order,
)

__all__ = [
    "Atom",
    "OrderAnalysis",
    "InvalidVariableOrder",
    "JoinTreeNode",
    "Query",
    "UpdateCostBound",
    "QueryParseError",
    "VarOrderNode",
    "VariableOrder",
    "build_join_tree",
    "analyse_order",
    "canonical_order",
    "dominates",
    "find_embedding",
    "gyo_reduce",
    "is_alpha_acyclic",
    "is_free_connex",
    "is_free_dominant",
    "is_hierarchical",
    "is_input_dominant",
    "is_q_hierarchical",
    "order_for",
    "parse_query",
    "query",
    "rewrite_using",
    "search_order",
    "update_cost_bounds",
    "validate_order",
    "witness_non_hierarchical",
]
