"""Query hypergraphs: GYO reduction, alpha-acyclicity, join trees,
free-connexity.

These static-setting notions underpin several results the paper builds on:
q-hierarchical queries are a strict subclass of the free-connex
alpha-acyclic queries (Section 4.1), and the insert-only results of
Section 4.6 hold for all alpha-acyclic joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .ast import Atom, Query


def gyo_reduce(edges: list[frozenset[str]]) -> list[frozenset[str]]:
    """Run the GYO reduction and return the remaining hyperedges.

    Repeatedly (1) removes *ear* vertices that occur in a single edge and
    (2) removes edges contained in another edge.  The input is
    alpha-acyclic iff the residue is empty.
    """
    edges = [e for e in edges if e]
    changed = True
    while changed and edges:
        changed = False
        # Remove vertices occurring in exactly one edge.
        occurrence: dict[str, int] = {}
        for edge in edges:
            for vertex in edge:
                occurrence[vertex] = occurrence.get(vertex, 0) + 1
        reduced = []
        for edge in edges:
            trimmed = frozenset(v for v in edge if occurrence[v] > 1)
            if trimmed != edge:
                changed = True
            if trimmed:
                reduced.append(trimmed)
            else:
                changed = True
        edges = reduced
        # Remove edges contained in other edges.
        survivors: list[frozenset[str]] = []
        for i, edge in enumerate(edges):
            contained = any(
                edge <= other and (edge != other or i > j)
                for j, other in enumerate(edges)
                if j != i
            )
            if contained:
                changed = True
            else:
                survivors.append(edge)
        edges = survivors
    return edges


def is_alpha_acyclic(query: Query) -> bool:
    """True iff the query's hypergraph is alpha-acyclic (GYO test)."""
    return not gyo_reduce([a.variable_set() for a in query.atoms])


def is_free_connex(query: Query) -> bool:
    """True iff the query is free-connex alpha-acyclic.

    A query is free-connex when it is alpha-acyclic and stays alpha-acyclic
    after adding a fresh atom whose variables are exactly the free ones.
    """
    if not is_alpha_acyclic(query):
        return False
    edges = [a.variable_set() for a in query.atoms]
    if query.head:
        edges.append(frozenset(query.head))
    return not gyo_reduce(edges)


@dataclass
class JoinTreeNode:
    """A node of a join tree: one atom plus children."""

    atom: Atom
    children: list["JoinTreeNode"] = field(default_factory=list)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"JoinTreeNode({self.atom}, children={len(self.children)})"


def build_join_tree(query: Query) -> Optional[list[JoinTreeNode]]:
    """Build a join forest (one tree per connected component).

    Returns ``None`` when the query is not alpha-acyclic.  The join tree
    satisfies the running-intersection property: for every variable, the
    atoms containing it form a connected subtree.  It drives the
    insert-only maintenance of Section 4.6.
    """
    if not is_alpha_acyclic(query):
        return None
    roots: list[JoinTreeNode] = []
    for component in query.connected_components():
        atoms = list(component.atoms)
        nodes = {atom: JoinTreeNode(atom) for atom in atoms}
        # Ear-removal order: repeatedly find an ear atom and attach it to a
        # witness atom that covers its shared variables.
        remaining = list(atoms)
        parent: dict[Atom, Atom] = {}
        while len(remaining) > 1:
            ear, witness = _find_ear(remaining)
            parent[ear] = witness
            remaining.remove(ear)
        root_atom = remaining[0]
        for child_atom, parent_atom in parent.items():
            nodes[parent_atom].children.append(nodes[child_atom])
        roots.append(nodes[root_atom])
    return roots


def _find_ear(atoms: list[Atom]) -> tuple[Atom, Atom]:
    """Find an (ear, witness) pair among ``atoms``.

    An atom ``E`` is an ear with witness ``W`` when every variable of ``E``
    that also occurs in some other atom occurs in ``W``.  Existence is
    guaranteed for alpha-acyclic inputs.
    """
    for candidate in atoms:
        others = [a for a in atoms if a is not candidate]
        shared = {
            v
            for v in candidate.variables
            if any(v in other.variables for other in others)
        }
        for witness in others:
            if shared <= set(witness.variables):
                return candidate, witness
    raise ValueError("no ear found; query is not alpha-acyclic")
