"""Query ASTs: natural joins with group-by aggregates (Section 2).

A query has the shape::

    Q(X_1, ..., X_f) = SUM_{X_{f+1}} ... SUM_{X_m}  R_1(S_1) * ... * R_n(S_n)

where ``X_1..X_f`` are the free (group-by) variables and the remaining
variables are bound (marginalized).  Conjunctive queries are the special
case where aggregates are projections (COUNT lifting).

The same AST also carries the paper's orthogonal annotations:

* **access patterns** (Section 4.3): a subset of the free variables may be
  declared *input* variables, turning the query into a CQAP;
* **static relations** (Section 4.5): atom-level adornment marking
  relations that never receive updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..data.schema import Schema


@dataclass(frozen=True)
class Atom:
    """One occurrence ``R(S)`` of a relation symbol in a query body."""

    relation: str
    variables: tuple[str, ...]
    #: Section 4.5 adornment: static relations never receive updates.
    static: bool = False

    @property
    def schema(self) -> Schema:
        return Schema(self.variables)

    def variable_set(self) -> frozenset[str]:
        return frozenset(self.variables)

    def __str__(self) -> str:
        marker = "@s" if self.static else ""
        return f"{self.relation}{marker}({', '.join(self.variables)})"


@dataclass(frozen=True)
class Query:
    """A join + group-by-aggregate query over ring relations."""

    name: str
    head: tuple[str, ...]
    atoms: tuple[Atom, ...]
    #: CQAP input variables (Section 4.3); must be a subset of ``head``.
    input_variables: tuple[str, ...] = ()

    def __post_init__(self):
        body_vars = self.variables()
        for var in self.head:
            if var not in body_vars:
                raise ValueError(f"head variable {var!r} not in query body")
        if len(set(self.head)) != len(self.head):
            raise ValueError(f"duplicate head variable in {self.head!r}")
        head_set = set(self.head)
        for var in self.input_variables:
            if var not in head_set:
                raise ValueError(f"input variable {var!r} must be free")

    # ------------------------------------------------------------------
    # Variable classification
    # ------------------------------------------------------------------

    def variables(self) -> frozenset[str]:
        """All variables appearing in the body."""
        result: set[str] = set()
        for atom in self.atoms:
            result.update(atom.variables)
        return frozenset(result)

    @property
    def free_variables(self) -> frozenset[str]:
        return frozenset(self.head)

    @property
    def bound_variables(self) -> frozenset[str]:
        return self.variables() - self.free_variables

    @property
    def output_variables(self) -> tuple[str, ...]:
        """Free variables that are not input variables (CQAP view)."""
        inputs = set(self.input_variables)
        return tuple(v for v in self.head if v not in inputs)

    def is_free(self, variable: str) -> bool:
        return variable in self.free_variables

    def is_boolean(self) -> bool:
        """True for queries with an empty head (a single aggregate value)."""
        return not self.head

    # ------------------------------------------------------------------
    # Atom structure
    # ------------------------------------------------------------------

    def atoms_of(self, variable: str) -> frozenset[Atom]:
        """``atoms(X)``: the set of atoms containing ``variable``."""
        return frozenset(a for a in self.atoms if variable in a.variables)

    def relation_names(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for atom in self.atoms:
            seen.setdefault(atom.relation, None)
        return tuple(seen)

    def is_self_join_free(self) -> bool:
        """True when no relation symbol repeats (required by Theorem 4.1)."""
        names = [a.relation for a in self.atoms]
        return len(names) == len(set(names))

    def atom_for_relation(self, relation: str) -> Atom:
        """The unique atom over ``relation`` (self-join-free queries)."""
        matches = [a for a in self.atoms if a.relation == relation]
        if not matches:
            raise KeyError(f"no atom over relation {relation!r} in {self.name}")
        if len(matches) > 1:
            raise ValueError(
                f"relation {relation!r} occurs {len(matches)} times in {self.name}"
            )
        return matches[0]

    @property
    def dynamic_atoms(self) -> tuple[Atom, ...]:
        return tuple(a for a in self.atoms if not a.static)

    @property
    def static_atoms(self) -> tuple[Atom, ...]:
        return tuple(a for a in self.atoms if a.static)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def with_head(self, head: Sequence[str], name: str | None = None) -> "Query":
        return Query(name or self.name, tuple(head), self.atoms, self.input_variables)

    def with_inputs(self, inputs: Sequence[str], name: str | None = None) -> "Query":
        return Query(name or self.name, self.head, self.atoms, tuple(inputs))

    def boolean_version(self, name: str | None = None) -> "Query":
        """The Boolean (empty-head) version of this query."""
        return Query(name or f"{self.name}_bool", (), self.atoms)

    def full_version(self, name: str | None = None) -> "Query":
        """The full join (all variables free), in atom order."""
        seen: dict[str, None] = {}
        for atom in self.atoms:
            for var in atom.variables:
                seen.setdefault(var, None)
        return Query(name or f"{self.name}_full", tuple(seen), self.atoms)

    def connected_components(self) -> list["Query"]:
        """Split the body into connected components (shared-variable graph).

        The head and input annotations are restricted component-wise.
        """
        remaining = list(self.atoms)
        components: list[Query] = []
        index = 0
        while remaining:
            frontier = [remaining.pop(0)]
            component = [frontier[0]]
            vars_seen = set(frontier[0].variables)
            changed = True
            while changed:
                changed = False
                for atom in list(remaining):
                    if vars_seen & set(atom.variables):
                        remaining.remove(atom)
                        component.append(atom)
                        vars_seen.update(atom.variables)
                        changed = True
            head = tuple(v for v in self.head if v in vars_seen)
            inputs = tuple(v for v in self.input_variables if v in vars_seen)
            components.append(
                Query(f"{self.name}_c{index}", head, tuple(component), inputs)
            )
            index += 1
        return components

    def __str__(self) -> str:
        inputs = set(self.input_variables)
        if inputs:
            outs = ", ".join(self.output_variables) or "."
            ins = ", ".join(self.input_variables)
            head = f"{outs} | {ins}"
        else:
            head = ", ".join(self.head)
        body = " * ".join(str(a) for a in self.atoms)
        return f"{self.name}({head}) = {body}"


def query(name: str, head: Iterable[str], *atoms: tuple | Atom, inputs: Iterable[str] = ()) -> Query:
    """Terse constructor: ``query('Q', ['A'], ('R', 'A', 'B'), ('S', 'B'))``.

    Each atom is either an :class:`Atom` or a tuple
    ``(relation, var, var, ...)``; suffix the relation name with ``@s`` to
    mark it static, e.g. ``('T@s', 'B', 'C')``.
    """
    built = []
    for spec in atoms:
        if isinstance(spec, Atom):
            built.append(spec)
            continue
        relation, *variables = spec
        static = relation.endswith("@s")
        if static:
            relation = relation[:-2]
        built.append(Atom(relation, tuple(variables), static))
    return Query(name, tuple(head), tuple(built), tuple(inputs))
