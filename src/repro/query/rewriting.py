"""Query rewriting using other queries' outputs (Section 4.2).

To piggyback the maintenance of a non-q-hierarchical query ``Q1`` on a
q-hierarchical query ``Q2``, we need a *q-hierarchical rewriting* of
``Q1`` over ``Q2``: a homomorphism embeds ``Q2``'s body into ``Q1``'s
body, and the matched atoms are replaced by a single view atom over
``Q2``'s output.  Example 4.5 rewrites::

    Q1(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)
    Q2(A,B,C)   = R(A,B) * S(B,C)
    ==> Q1'(A,B,C,D) = Q2(A,B,C) * T(C,D)
"""

from __future__ import annotations

from itertools import permutations
from typing import Optional

from .ast import Atom, Query


def find_embedding(pattern: Query, target: Query) -> Optional[dict[str, str]]:
    """An injective homomorphism from ``pattern``'s body into ``target``'s.

    Maps each atom ``R(S)`` of the pattern to a distinct atom ``R(h(S))``
    of the target.  Returns the variable mapping, or ``None``.
    """

    def extend(
        mapping: dict[str, str], used: set[int], remaining: list[Atom]
    ) -> Optional[dict[str, str]]:
        if not remaining:
            return mapping
        atom = remaining[0]
        for candidate in target.atoms:
            if candidate.relation != atom.relation or id(candidate) in used:
                continue
            if len(candidate.variables) != len(atom.variables):
                continue
            attempt = dict(mapping)
            taken = set(attempt.values())
            ok = True
            for src, dst in zip(atom.variables, candidate.variables):
                bound = attempt.get(src)
                if bound is None:
                    if dst in taken:  # keep the mapping injective
                        ok = False
                        break
                    attempt[src] = dst
                    taken.add(dst)
                elif bound != dst:
                    ok = False
                    break
            if not ok:
                continue
            result = extend(attempt, used | {id(candidate)}, remaining[1:])
            if result is not None:
                return result
        return None

    return extend({}, set(), list(pattern.atoms))


def rewrite_using(target: Query, view: Query, name: str | None = None) -> Optional[Query]:
    """Rewrite ``target`` to use ``view``'s output as a single atom.

    Returns the rewriting, or ``None`` when no *sound* rewriting exists.
    Soundness requires that every variable of the matched atoms that is
    visible outside them — in the remaining atoms or in ``target``'s head —
    is exported by ``view``'s head (otherwise the join or the projection
    would be lost).
    """
    mapping = find_embedding(view, target)
    if mapping is None:
        return None

    matched: list[Atom] = []
    used: set[int] = set()
    # Re-run the match to recover which target atoms were consumed.
    for atom in view.atoms:
        image_vars = tuple(mapping[v] for v in atom.variables)
        for candidate in target.atoms:
            if (
                id(candidate) not in used
                and candidate.relation == atom.relation
                and candidate.variables == image_vars
            ):
                matched.append(candidate)
                used.add(id(candidate))
                break
        else:
            return None

    remaining = [a for a in target.atoms if id(a) not in used]
    matched_vars = {v for a in matched for v in a.variables}
    outside_vars = set(target.head)
    for atom in remaining:
        outside_vars.update(atom.variables)
    exported = {mapping[v] for v in view.head}
    if (matched_vars & outside_vars) - exported:
        return None

    view_atom = Atom(view.name, tuple(mapping[v] for v in view.head))
    return Query(
        name or f"{target.name}_via_{view.name}",
        target.head,
        (view_atom, *remaining),
        target.input_variables,
    )
