"""Static cost analysis of variable orders.

Given a variable order, predict — before touching any data — the shape of
the single-tuple update cost per relation and whether factorized
enumeration will have constant delay.  This is the analysis behind the
Section 4.5 classifier, generalised and exposed: the planner and the CLI
use it to annotate plans with *per-relation* guarantees instead of one
global bound.

The rule (see :mod:`repro.staticdyn.analysis` for its use in the mixed
static/dynamic setting): propagating a single-tuple delta from an atom's
anchor to the root costs O(1) iff at every node on the path, each sibling
source's schema is already bound by the delta; the first unbound sibling
group the delta must expand is the (data-dependent) growth point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .ast import Atom, Query
from .variable_order import VariableOrder, VarOrderNode


@dataclass(frozen=True)
class UpdateCostBound:
    """The statically-derived bound for one atom's single-tuple updates."""

    atom: Atom
    constant: bool
    #: The first sibling schema the delta cannot cover (None if constant).
    blocking_variables: Optional[tuple[str, ...]] = None

    @property
    def bound(self) -> str:
        return "O(1)" if self.constant else "O(N) worst-case"

    def __str__(self) -> str:
        suffix = ""
        if not self.constant and self.blocking_variables:
            suffix = f" (unbound sibling over {', '.join(self.blocking_variables)})"
        return f"{self.atom}: {self.bound}{suffix}"


def update_cost_bounds(order: VariableOrder) -> list[UpdateCostBound]:
    """Analyse every atom's anchor-to-root propagation path."""
    parent: dict[str, Optional[VarOrderNode]] = {}
    for root in order.roots:
        stack: list[tuple[VarOrderNode, Optional[VarOrderNode]]] = [(root, None)]
        while stack:
            node, par = stack.pop()
            parent[node.variable] = par
            for child in node.children:
                stack.append((child, node))

    results = []
    for atom in order.query.atoms:
        anchor = order.anchor_of(atom)
        bound_vars = set(atom.variables)
        node: Optional[VarOrderNode] = anchor
        came_from: Optional[VarOrderNode] = None
        blocking: Optional[tuple[str, ...]] = None
        while node is not None and blocking is None:
            for sibling in node.atoms:
                if node is anchor and sibling is atom:
                    continue
                if not set(sibling.variables) <= bound_vars:
                    blocking = sibling.variables
                    break
            if blocking is None:
                for child in node.children:
                    if child is came_from:
                        continue
                    if not set(child.dependency) <= bound_vars:
                        blocking = child.dependency
                        break
            bound_vars = set(node.dependency)
            came_from = node
            node = parent[node.variable]
        results.append(
            UpdateCostBound(atom, constant=blocking is None, blocking_variables=blocking)
        )
    return results


@dataclass(frozen=True)
class OrderAnalysis:
    """Full static report for a (query, variable order) pair."""

    order: VariableOrder
    costs: tuple[UpdateCostBound, ...]
    free_top: bool
    max_dependency: int

    @property
    def all_updates_constant(self) -> bool:
        return all(c.constant for c in self.costs)

    @property
    def constant_delay(self) -> bool:
        return self.free_top

    def render(self) -> str:
        lines = [
            f"variable order (max |dep| = {self.max_dependency}, "
            f"{'free-top' if self.free_top else 'not free-top'}):",
        ]
        lines.extend("  " + line for line in self.order.render().splitlines())
        lines.append("per-relation single-tuple update bounds:")
        lines.extend(f"  {cost}" for cost in self.costs)
        return "\n".join(lines)


def analyse_order(order: VariableOrder) -> OrderAnalysis:
    return OrderAnalysis(
        order,
        tuple(update_cost_bounds(order)),
        order.is_free_top(),
        order.max_dependency_size(),
    )
