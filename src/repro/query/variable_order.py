"""Variable orders: the plan language for view trees.

A *variable order* for a query is a forest over its variables such that the
variables of each atom lie along a single root-to-leaf path.  Every query
admits one (possibly with large dependency sets); hierarchical queries
admit the *canonical* order in which each variable's ancestors appear in
all atoms below it — the shape that yields constant-time single-tuple
updates (Section 4.1).

The view tree of Section 3.2/4.1 is obtained by materializing, per node,
the aggregate of the join of everything below the node; see
:mod:`repro.viewtree`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from .ast import Atom, Query
from .properties import is_hierarchical


@dataclass
class VarOrderNode:
    """One variable of the order, with anchored atoms and children."""

    variable: str
    children: list["VarOrderNode"] = field(default_factory=list)
    atoms: list[Atom] = field(default_factory=list)
    #: Ancestor variables occurring in atoms anchored within this subtree.
    dependency: tuple[str, ...] = ()

    def walk(self) -> Iterator["VarOrderNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def subtree_atoms(self) -> list[Atom]:
        result = []
        for node in self.walk():
            result.extend(node.atoms)
        return result

    def __repr__(self) -> str:
        return (
            f"VarOrderNode({self.variable!r}, dep={self.dependency!r}, "
            f"atoms={[str(a) for a in self.atoms]}, children={len(self.children)})"
        )


class InvalidVariableOrder(ValueError):
    """Raised when a forest is not a valid variable order for a query."""


@dataclass
class VariableOrder:
    """A validated variable order (forest) for a query."""

    query: Query
    roots: list[VarOrderNode]

    def walk(self) -> Iterator[VarOrderNode]:
        for root in self.roots:
            yield from root.walk()

    def node_of(self, variable: str) -> VarOrderNode:
        for node in self.walk():
            if node.variable == variable:
                return node
        raise KeyError(variable)

    def anchor_of(self, atom: Atom) -> VarOrderNode:
        """The node at which ``atom`` is anchored (its deepest variable)."""
        for node in self.walk():
            if atom in node.atoms:
                return node
        raise KeyError(str(atom))

    def parents(self) -> dict[str, Optional[str]]:
        parent: dict[str, Optional[str]] = {}
        for root in self.roots:
            parent[root.variable] = None
            stack = [root]
            while stack:
                node = stack.pop()
                for child in node.children:
                    parent[child.variable] = node.variable
                    stack.append(child)
        return parent

    def path_to_root(self, variable: str) -> list[str]:
        """Variables from ``variable`` (inclusive) up to its root."""
        parent = self.parents()
        path = [variable]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])
        return path

    def max_dependency_size(self) -> int:
        return max((len(n.dependency) for n in self.walk()), default=0)

    def is_free_top(self) -> bool:
        """Free variables form a prefix of every root-to-leaf path.

        This is the property that enables constant-delay factorized
        enumeration: the enumeration walks the free prefix top-down.
        """
        free = self.query.free_variables
        for root in self.roots:
            stack = [(root, True)]
            while stack:
                node, ancestors_free = stack.pop()
                node_free = node.variable in free
                if node_free and not ancestors_free:
                    return False
                for child in node.children:
                    stack.append((child, ancestors_free and node_free))
        return True

    def is_input_top(self) -> bool:
        """Input variables precede output variables on every path (CQAPs)."""
        inputs = set(self.query.input_variables)
        if not inputs:
            return True
        for root in self.roots:
            stack = [(root, True)]
            while stack:
                node, ancestors_input = stack.pop()
                node_input = node.variable in inputs
                if node_input and not ancestors_input:
                    return False
                for child in node.children:
                    stack.append((child, ancestors_input and node_input))
        return True

    def render(self) -> str:
        """ASCII rendering of the order, for docs and debugging."""
        lines: list[str] = []

        def visit(node: VarOrderNode, depth: int) -> None:
            dep = f" [dep: {', '.join(node.dependency)}]" if node.dependency else ""
            anchored = "  " + "; ".join(str(a) for a in node.atoms) if node.atoms else ""
            lines.append("  " * depth + node.variable + dep + anchored)
            for child in node.children:
                visit(child, depth + 1)

        for root in self.roots:
            visit(root, 0)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------


def _compute_dependencies(roots: list[VarOrderNode]) -> None:
    def visit(node: VarOrderNode, ancestors: tuple[str, ...]) -> set[str]:
        subtree_vars: set[str] = set()
        for atom in node.atoms:
            subtree_vars.update(atom.variables)
        for child in node.children:
            subtree_vars |= visit(child, ancestors + (node.variable,))
        node.dependency = tuple(v for v in ancestors if v in subtree_vars)
        return subtree_vars

    for root in roots:
        visit(root, ())


def validate_order(query: Query, roots: list[VarOrderNode]) -> VariableOrder:
    """Check validity and compute dependency sets.

    Validity: every query variable appears exactly once; every atom is
    anchored exactly once, at a node such that the atom's variables all lie
    on the path from that node to its root.
    """
    seen_vars: set[str] = set()
    for root in roots:
        for node in root.walk():
            if node.variable in seen_vars:
                raise InvalidVariableOrder(f"variable {node.variable!r} repeated")
            seen_vars.add(node.variable)
    missing = query.variables() - seen_vars
    if missing:
        raise InvalidVariableOrder(f"variables missing from order: {sorted(missing)}")

    anchored: list[Atom] = []
    order = VariableOrder(query, roots)
    for root in roots:
        _validate_paths(root, (), anchored)
    if len(anchored) != len(query.atoms):
        seen = {id(a) for a in anchored}
        extra = [str(a) for a in query.atoms if id(a) not in seen]
        raise InvalidVariableOrder(f"atoms not anchored: {extra}")

    _compute_dependencies(roots)
    return order


def _validate_paths(node: VarOrderNode, path: tuple[str, ...], anchored: list[Atom]) -> None:
    path = path + (node.variable,)
    for atom in node.atoms:
        if not set(atom.variables) <= set(path):
            raise InvalidVariableOrder(
                f"atom {atom} anchored at {node.variable!r} but its variables "
                f"are not on the path {path!r}"
            )
        if atom.variables and node.variable not in atom.variables:
            raise InvalidVariableOrder(
                f"atom {atom} anchored at {node.variable!r}, which it does not contain"
            )
        anchored.append(atom)
    for child in node.children:
        _validate_paths(child, path, anchored)


def _rank(query: Query) -> Callable[[str], tuple]:
    """Tie-breaking priority: input < free < bound, then alphabetical."""
    inputs = set(query.input_variables)
    free = query.free_variables

    def rank(variable: str) -> tuple:
        if variable in inputs:
            tier = 0
        elif variable in free:
            tier = 1
        else:
            tier = 2
        return (tier, variable)

    return rank


def canonical_order(query: Query) -> VariableOrder:
    """The canonical variable order of a hierarchical query.

    Per connected component, the variables occurring in *all* atoms of the
    component form the top chain (input variables first, then free, then
    bound); the rest recursively forms child subtrees.  For q-hierarchical
    queries the result is free-top, giving O(1) updates and O(1) delay.
    """
    if not is_hierarchical(query):
        raise InvalidVariableOrder(
            f"query {query.name} is not hierarchical; use search_order instead"
        )
    rank = _rank(query)

    def build(atoms: list[Atom], local_vars: set[str]) -> VarOrderNode:
        in_all = {
            v
            for v in local_vars
            if all(v in atom.variables for atom in atoms)
        }
        if not in_all:
            raise InvalidVariableOrder(
                "no variable occurs in all atoms of a connected component; "
                "query is not hierarchical"
            )
        chain_vars = sorted(in_all, key=rank)
        top = VarOrderNode(chain_vars[0])
        bottom = top
        for variable in chain_vars[1:]:
            node = VarOrderNode(variable)
            bottom.children.append(node)
            bottom = node
        remaining = local_vars - in_all
        exhausted = [a for a in atoms if not (set(a.variables) & remaining)]
        bottom.atoms.extend(exhausted)
        open_atoms = [a for a in atoms if set(a.variables) & remaining]
        for component_atoms, component_vars in _components(open_atoms, remaining):
            bottom.children.append(build(component_atoms, component_vars))
        return top

    roots = []
    for component in query.connected_components():
        atoms = list(component.atoms)
        local_vars = set()
        for atom in atoms:
            local_vars.update(atom.variables)
        roots.append(build(atoms, local_vars))
    return validate_order(query, roots)


def _components(
    atoms: list[Atom], variables: set[str]
) -> Iterator[tuple[list[Atom], set[str]]]:
    """Connected components of ``atoms`` linked through ``variables``."""
    remaining = list(atoms)
    while remaining:
        seed = remaining.pop(0)
        component = [seed]
        vars_seen = set(seed.variables) & variables
        changed = True
        while changed:
            changed = False
            for atom in list(remaining):
                if vars_seen & set(atom.variables):
                    remaining.remove(atom)
                    component.append(atom)
                    vars_seen |= set(atom.variables) & variables
                    changed = True
        yield component, vars_seen


def search_order(
    query: Query,
    prefer_free_top: bool = True,
    require_free_top: bool = False,
) -> VariableOrder:
    """Search for a variable order minimizing the largest dependency set.

    Works for *any* query (hierarchical, merely acyclic, or cyclic — cyclic
    queries simply get large dependency sets, hence expensive views).  The
    search recursively picks a top variable per connected component and
    keeps the choice minimizing ``(max |dep|, sum |dep|)`` over the subtree.

    With ``require_free_top`` the free variables are forced above the bound
    ones (needed for constant-delay enumeration); ``prefer_free_top`` only
    breaks cost ties in that direction.
    """
    free = query.free_variables
    # Memo key: the component's atoms plus which of their variables are
    # already bound above — the same atom set can be reached with different
    # ancestor contexts, which changes both costs and the variables that
    # still need placing.
    memo: dict[tuple, tuple[tuple[int, int], VarOrderNode]] = {}

    def candidates(local_vars: set[str]) -> list[str]:
        local_free = sorted(v for v in local_vars if v in free)
        local_bound = sorted(v for v in local_vars if v not in free)
        if require_free_top and local_free:
            return local_free
        if prefer_free_top:
            return local_free + local_bound
        return sorted(local_vars)

    def best_subtree(
        atoms: tuple[Atom, ...], bound_above: frozenset[str]
    ) -> tuple[tuple[int, int], VarOrderNode]:
        local_vars = set()
        for atom in atoms:
            local_vars.update(atom.variables)
        local_vars -= bound_above
        all_vars = {v for atom in atoms for v in atom.variables}
        key = (
            frozenset(id(a) for a in atoms),
            frozenset(bound_above & all_vars),
        )
        if key in memo:
            return memo[key]

        best: tuple[tuple[int, int], VarOrderNode] | None = None
        for variable in candidates(local_vars):
            node = VarOrderNode(variable)
            new_bound = bound_above | {variable}
            remaining_vars = local_vars - {variable}
            exhausted = [a for a in atoms if not (set(a.variables) & remaining_vars)]
            node.atoms.extend(a for a in exhausted if variable in a.variables)
            dangling = [
                a
                for a in exhausted
                if variable not in a.variables and a not in node.atoms
            ]
            if dangling:
                # An atom none of whose variables remain must contain the
                # current variable to be anchored here; otherwise this pick
                # is invalid for that atom.
                continue
            open_atoms = tuple(
                a for a in atoms if set(a.variables) & remaining_vars
            )
            cost_max = 0
            cost_sum = 0
            feasible = True
            for component_atoms, _ in _components(list(open_atoms), remaining_vars):
                sub_cost, child = best_subtree(tuple(component_atoms), new_bound)
                if child is None:
                    feasible = False
                    break
                node.children.append(child)
                cost_max = max(cost_max, sub_cost[0])
                cost_sum += sub_cost[1]
            if not feasible:
                continue
            dep_size = len(
                bound_above
                & {v for a in atoms for v in a.variables}
            )
            cost = (max(cost_max, dep_size), cost_sum + dep_size)
            if best is None or cost < best[0]:
                best = (cost, node)
        if best is None:
            raise InvalidVariableOrder(
                f"no valid variable order found for atoms {[str(a) for a in atoms]}"
            )
        memo[key] = best
        return best

    roots = []
    for component in query.connected_components():
        __, root = best_subtree(tuple(component.atoms), frozenset())
        roots.append(root)
    return validate_order(query, roots)


def order_for(query: Query) -> VariableOrder:
    """The default order: canonical when hierarchical, searched otherwise."""
    if is_hierarchical(query):
        return canonical_order(query)
    return search_order(query)
