"""A small textual syntax for queries.

Examples::

    Q(A, B) = R(A, X) * S(X, B)          # free variables A, B
    Q() = R(A, B) * S(B, C) * T(C, A)    # Boolean (triangle) query
    Q(C | A, B) = E(A, B) * E(B, C)      # CQAP: C output, A and B input
    Q(. | A, B, C) = E(A, B) * E(B, C)   # CQAP with no output variables
    Q(A, B) = R(A) * S@s(A, B) * T(B)    # S is static (Section 4.5)

Commas and ``*`` both separate atoms; whitespace is free.
"""

from __future__ import annotations

import re

from .ast import Atom, Query

_HEAD_RE = re.compile(r"^\s*(\w+)\s*\(([^)]*)\)\s*=\s*(.+)$", re.S)
_ATOM_RE = re.compile(r"(\w+)(@s)?\s*\(([^)]*)\)")


class QueryParseError(ValueError):
    """Raised on malformed query text."""


def _split_variables(text: str) -> tuple[str, ...]:
    text = text.strip()
    if not text or text == ".":
        return ()
    parts = [p.strip() for p in text.split(",")]
    if any(not p for p in parts):
        raise QueryParseError(f"empty variable in list {text!r}")
    for part in parts:
        if not re.fullmatch(r"\w+", part):
            raise QueryParseError(f"invalid variable name {part!r}")
    return tuple(parts)


def parse_query(text: str) -> Query:
    """Parse the textual syntax above into a :class:`Query`."""
    match = _HEAD_RE.match(text)
    if not match:
        raise QueryParseError(f"cannot parse query head in {text!r}")
    name, head_text, body_text = match.groups()

    if "|" in head_text:
        output_text, input_text = head_text.split("|", 1)
        outputs = _split_variables(output_text)
        inputs = _split_variables(input_text)
        head = outputs + inputs
    else:
        head = _split_variables(head_text)
        inputs = ()

    atoms = []
    consumed = 0
    for atom_match in _ATOM_RE.finditer(body_text):
        relation, static_marker, vars_text = atom_match.groups()
        variables = _split_variables(vars_text)
        atoms.append(Atom(relation, variables, static=bool(static_marker)))
        consumed += 1
    if not atoms:
        raise QueryParseError(f"no atoms found in body {body_text!r}")

    leftovers = _ATOM_RE.sub("", body_text)
    if re.sub(r"[\s,*]", "", leftovers):
        raise QueryParseError(f"unparsed body fragment in {body_text!r}")

    return Query(name, head, tuple(atoms), inputs)
