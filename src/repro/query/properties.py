"""Syntactic query classes: hierarchical, q-hierarchical, dominance.

Definitions 4.2 and 4.7 of the paper.  These checks run in time polynomial
in the query size and drive the dichotomies of Theorems 4.1 and 4.8.
"""

from __future__ import annotations

from .ast import Query


def is_hierarchical(query: Query) -> bool:
    """Definition 4.2: for any two variables X, Y the atom sets are
    comparable (one contains the other) or disjoint."""
    variables = sorted(query.variables())
    atom_sets = {v: query.atoms_of(v) for v in variables}
    for i, x in enumerate(variables):
        for y in variables[i + 1 :]:
            ax, ay = atom_sets[x], atom_sets[y]
            if not (ax <= ay or ay <= ax or not (ax & ay)):
                return False
    return True


def is_q_hierarchical(query: Query) -> bool:
    """Definition 4.2: hierarchical, and whenever ``atoms(X) ⊃ atoms(Y)``
    with Y free, X is free too.

    Queries in this class — and only these, among self-join-free CQs —
    admit O(N) preprocessing, O(1) single-tuple updates, and O(1)
    enumeration delay (Theorem 4.1).
    """
    if not is_hierarchical(query):
        return False
    variables = sorted(query.variables())
    atom_sets = {v: query.atoms_of(v) for v in variables}
    free = query.free_variables
    for x in variables:
        for y in variables:
            if atom_sets[x] > atom_sets[y] and y in free and x not in free:
                return False
    return True


def dominates(query: Query, dominator: str, dominated: str) -> bool:
    """Definition 4.7: ``dominator`` dominates ``dominated`` iff
    ``atoms(dominated) ⊂ atoms(dominator)`` (strict)."""
    return query.atoms_of(dominated) < query.atoms_of(dominator)


def is_free_dominant(query: Query) -> bool:
    """If A is free and B dominates A, then B is free (Definition 4.7).

    For queries without input variables, hierarchical + free-dominant is
    exactly q-hierarchical (footnote 4 of the paper).
    """
    free = query.free_variables
    variables = query.variables()
    for a in free:
        for b in variables:
            if dominates(query, b, a) and b not in free:
                return False
    return True


def is_input_dominant(query: Query) -> bool:
    """If A is input and B dominates A, then B is input (Definition 4.7)."""
    inputs = set(query.input_variables)
    variables = query.variables()
    for a in inputs:
        for b in variables:
            if dominates(query, b, a) and b not in inputs:
                return False
    return True


def witness_non_hierarchical(query: Query) -> tuple[str, str] | None:
    """A pair of variables violating the hierarchical condition, if any.

    Useful in error messages and in the FD-rewriting machinery, which
    targets exactly these violations.
    """
    variables = sorted(query.variables())
    atom_sets = {v: query.atoms_of(v) for v in variables}
    for i, x in enumerate(variables):
        for y in variables[i + 1 :]:
            ax, ay = atom_sets[x], atom_sets[y]
            if not (ax <= ay or ay <= ax or not (ax & ay)):
                return (x, y)
    return None
