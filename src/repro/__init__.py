"""repro: incremental view maintenance, reproducing
"Recent Increments in Incremental View Maintenance" (Gems of PODS 2024).

The package implements the paper's full technique catalogue on one shared
substrate of ring relations:

* :mod:`repro.rings` / :mod:`repro.data` — relations over rings (§2);
* :mod:`repro.delta` — classical first-order delta queries (§3.1);
* :mod:`repro.viewtree` — factorized view trees, F-IVM style (§3.2, §4.1);
* :mod:`repro.ivme` — heavy/light adaptive IVM^epsilon (§3.3, §5);
* :mod:`repro.lowerbounds` — the OuMv reduction (§3.4);
* :mod:`repro.cascade` — cascading q-hierarchical queries (§4.2);
* :mod:`repro.cqap` — free access patterns (§4.3);
* :mod:`repro.constraints` — FDs and PK-FK constraints (§4.4);
* :mod:`repro.staticdyn` — static vs dynamic relations (§4.5);
* :mod:`repro.insertonly` — insert-only maintenance (§4.6);
* :mod:`repro.core` — the planner and the :class:`IVMEngine` facade (§6).

Quickstart::

    from repro import Database, IVMEngine, parse_query

    db = Database()
    db.create("R", ["A", "B"])
    db.create("S", ["B"])
    engine = IVMEngine(parse_query("Q(A) = R(A, B) * S(B)"), db)
    engine.insert("R", 1, 2)
    engine.insert("S", 2)
    print(dict(engine.enumerate()))
"""

from .core.engine import IVMEngine
from .core.planner import Plan, plan_maintenance
from .data.database import Database
from .data.relation import Relation
from .data.schema import Schema
from .data.update import Update
from .query.ast import Atom, Query, query
from .query.parser import parse_query

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Database",
    "IVMEngine",
    "Plan",
    "Query",
    "Relation",
    "Schema",
    "Update",
    "parse_query",
    "plan_maintenance",
    "query",
    "__version__",
]
