"""IMDB/JOB-like PK-FK workload (Example 4.13).

The JOB benchmark's simplified IMDB schema joins
``Title(movie_id, ...)``, ``Movie_Companies(movie_id, company_id, ...)``
and ``Company_Name(company_id, ...)``, where the fact relation's two
foreign keys reference the dimensions' primary keys.  The real IMDB dump
is not shipped here; the generator produces the same shape — and, more
importantly for Example 4.13, *valid* update batches that may be executed
out of order, leaving the database transiently inconsistent.
"""

from __future__ import annotations

import random

from ..constraints.pkfk import Dimension, StarJoinCounter
from ..data.update import Update


def job_star_counter() -> StarJoinCounter:
    """The Example 4.13 star join as a :class:`StarJoinCounter`."""
    return StarJoinCounter(
        "Movie_Companies",
        ("movie_id", "company_id", "note"),
        [
            Dimension("Title", "movie_id"),
            Dimension("Company_Name", "company_id"),
        ],
    )


def valid_insert_batch(
    movies: int,
    companies: int,
    facts: int,
    seed: int = 0,
    out_of_order: bool = True,
) -> list[Update]:
    """A valid batch of inserts: the final database is consistent.

    With ``out_of_order`` the facts may precede the dimension tuples they
    reference — the transient inconsistency Example 4.13 analyses, where
    the one expensive dimension insert amortizes against the fact inserts
    that preceded it.
    """
    rng = random.Random(seed)
    updates: list[Update] = [
        Update("Title", (m, f"title_{m}"), 1) for m in range(movies)
    ]
    updates.extend(
        Update("Company_Name", (c, f"country_{c % 7}"), 1)
        for c in range(companies)
    )
    updates.extend(
        Update(
            "Movie_Companies",
            (rng.randrange(movies), rng.randrange(companies), i % 4),
            1,
        )
        for i in range(facts)
    )
    if out_of_order:
        rng.shuffle(updates)
    return updates


def valid_delete_batch(counter: StarJoinCounter, seed: int = 0) -> list[Update]:
    """A valid batch deleting everything currently in the counter.

    Deleting a dimension key while facts still reference it is allowed
    mid-batch; by the end all references are gone, restoring consistency
    (the empty database).
    """
    rng = random.Random(seed)
    updates: list[Update] = []
    for key, payload in list(counter.fact.items()):
        updates.append(Update(counter.fact_name, key, -payload))
    for dimension in counter.dimensions:
        aggregates = counter.dim_aggregates[dimension.name]
        for key, payload in list(aggregates.items()):
            # Reconstruct a dimension tuple: key value plus a dummy attr;
            # only the key (and payload) matters to the counter.
            updates.append(Update(dimension.name, (key[0], None), -payload))
    rng.shuffle(updates)
    return updates
