"""Synthetic Retailer workload (the Fig. 4 experiment's dataset shape).

The paper's Fig. 4 measures four IVM strategies on a q-hierarchical
five-relation join over a real-world Retailer dataset (used by F-IVM).
That dataset is not public, so this module generates a synthetic database
with the same *shape*: five relations sharing a location key, a
date/location fact table with controlled fan-outs, and an insert stream
delivered in batches of single-tuple updates.

Two query variants are provided:

* :func:`retailer_query` — q-hierarchical as-is (drives Fig. 4);
* :func:`retailer_fd_query` — Example 4.10's variant that is *not*
  hierarchical until the FD ``zip -> locn`` is taken into account.
"""

from __future__ import annotations

import random

from ..constraints.fds import FunctionalDependency
from ..data.database import Database
from ..data.update import Update
from ..query.ast import Query, query


def retailer_query() -> Query:
    """The q-hierarchical five-relation Retailer join.

    ``Q(locn, dateid, ksn) = Inventory(locn, dateid, ksn, units)
    * Weather(locn, dateid, temp) * Location(locn, zip)
    * Census(locn, population) * Demographics(locn, income)``

    atoms(locn) ⊇ atoms(dateid) ⊇ atoms(ksn) and the remaining variables
    are bound leaves, so the query is q-hierarchical and — per
    Theorem 4.1 — supports O(1) updates and O(1) enumeration delay.
    """
    return query(
        "Retailer",
        ["locn", "dateid", "ksn"],
        ("Inventory", "locn", "dateid", "ksn", "units"),
        ("Weather", "locn", "dateid", "temp"),
        ("Location", "locn", "zip"),
        ("Census", "locn", "population"),
        ("Demographics", "locn", "income"),
    )


def retailer_fd_query() -> tuple[Query, tuple[FunctionalDependency, ...]]:
    """Example 4.10: non-hierarchical until the FD ``zip -> locn`` holds.

    ``Q(locn, dateid, ksn, zip) = Inventory(locn, dateid, ksn)
    * Location(locn, zip) * Census(zip, population)
    * Weather(locn, dateid)``

    ``atoms(zip)`` and ``atoms(locn)`` overlap without containment; the
    Sigma-reduct under ``zip -> locn`` extends Census with ``locn`` and
    becomes q-hierarchical.
    """
    q = query(
        "RetailerFD",
        ["locn", "dateid", "ksn", "zip"],
        ("Inventory", "locn", "dateid", "ksn"),
        ("Location", "locn", "zip"),
        ("Census", "zip", "population"),
        ("Weather", "locn", "dateid"),
    )
    return q, (FunctionalDependency(("zip",), "locn"),)


def retailer_database(
    locations: int = 50,
    dates: int = 40,
    items: int = 120,
    inventory_rows: int = 2000,
    seed: int = 0,
) -> Database:
    """A populated Retailer database for :func:`retailer_query`."""
    rng = random.Random(seed)
    db = Database()
    inventory = db.create(
        "Inventory", ("locn", "dateid", "ksn", "units")
    )
    weather = db.create("Weather", ("locn", "dateid", "temp"))
    location = db.create("Location", ("locn", "zip"))
    census = db.create("Census", ("locn", "population"))
    demographics = db.create("Demographics", ("locn", "income"))

    for locn in range(locations):
        location.insert(locn, 10_000 + locn // 3)
        census.insert(locn, rng.randrange(1_000, 100_000))
        demographics.insert(locn, rng.randrange(20_000, 120_000))
        for dateid in range(dates):
            if rng.random() < 0.8:
                weather.insert(locn, dateid, rng.randrange(-10, 35))
    for _ in range(inventory_rows):
        inventory.insert(
            rng.randrange(locations),
            rng.randrange(dates),
            rng.randrange(items),
            rng.randrange(1, 50),
        )
    return db


def retailer_update_stream(
    count: int,
    locations: int = 50,
    dates: int = 40,
    items: int = 120,
    seed: int = 1,
    delete_fraction: float = 0.0,
) -> list[Update]:
    """An update stream shaped like Fig. 4's: batches of single-tuple
    inserts, dominated by Inventory, with optional deletes.

    Deletes re-target previously inserted keys so that multiplicities
    stay non-negative.
    """
    rng = random.Random(seed)
    updates: list[Update] = []
    inserted: list[Update] = []
    for _ in range(count):
        if inserted and rng.random() < delete_fraction:
            victim = inserted[rng.randrange(len(inserted))]
            updates.append(Update(victim.relation, victim.key, -victim.payload))
            continue
        roll = rng.random()
        if roll < 0.80:
            update = Update(
                "Inventory",
                (
                    rng.randrange(locations),
                    rng.randrange(dates),
                    rng.randrange(items),
                    rng.randrange(1, 50),
                ),
                1,
            )
        elif roll < 0.90:
            update = Update(
                "Weather",
                (rng.randrange(locations), rng.randrange(dates), rng.randrange(-10, 35)),
                1,
            )
        elif roll < 0.95:
            update = Update(
                "Census", (rng.randrange(locations), rng.randrange(1_000, 100_000)), 1
            )
        else:
            update = Update(
                "Demographics",
                (rng.randrange(locations), rng.randrange(20_000, 120_000)),
                1,
            )
        updates.append(update)
        inserted.append(update)
    return updates


def retailer_fd_database(
    locations: int = 40,
    zips: int = 15,
    dates: int = 30,
    items: int = 80,
    inventory_rows: int = 1500,
    seed: int = 0,
) -> Database:
    """Data for :func:`retailer_fd_query`, satisfying ``zip -> locn``.

    Each zip code maps to exactly one location (the FD); a location can
    own several zips.
    """
    rng = random.Random(seed)
    db = Database()
    inventory = db.create("Inventory", ("locn", "dateid", "ksn"))
    location = db.create("Location", ("locn", "zip"))
    census = db.create("Census", ("zip", "population"))
    weather = db.create("Weather", ("locn", "dateid"))

    zip_to_locn = {z: rng.randrange(locations) for z in range(zips)}
    for z, locn in zip_to_locn.items():
        location.insert(locn, z)
        census.insert(z, rng.randrange(1_000, 100_000))
    for locn in range(locations):
        for dateid in range(dates):
            if rng.random() < 0.7:
                weather.insert(locn, dateid)
    for _ in range(inventory_rows):
        inventory.insert(
            rng.randrange(locations), rng.randrange(dates), rng.randrange(items)
        )
    return db
