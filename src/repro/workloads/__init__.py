"""Workload generators for the paper's experiments."""

from .graphs import (
    TRIANGLE_RELATIONS,
    random_edges,
    sliding_window_stream,
    triangle_insert_stream,
    triangle_updates_for_edge,
    zipf_edges,
)
from .imdb_job import job_star_counter, valid_delete_batch, valid_insert_batch
from .retailer import (
    retailer_database,
    retailer_fd_database,
    retailer_fd_query,
    retailer_query,
    retailer_update_stream,
)
from .synthetic import FDImpact, WorkloadQuery, fd_impact, random_workload
from .tpch import ClassificationStudy, TPCHQuery, classify_tpch, tpch_queries

__all__ = [
    "ClassificationStudy",
    "FDImpact",
    "TPCHQuery",
    "TRIANGLE_RELATIONS",
    "WorkloadQuery",
    "classify_tpch",
    "fd_impact",
    "job_star_counter",
    "random_edges",
    "random_workload",
    "retailer_database",
    "retailer_fd_database",
    "retailer_fd_query",
    "retailer_query",
    "retailer_update_stream",
    "sliding_window_stream",
    "tpch_queries",
    "triangle_insert_stream",
    "triangle_updates_for_edge",
    "valid_delete_batch",
    "valid_insert_batch",
    "zipf_edges",
]
