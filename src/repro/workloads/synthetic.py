"""Synthetic query workloads for the FD-impact study (Section 4.4).

The paper reports that in one RelationalAI project, 76% of roughly 6000
queries become q-hierarchical once functional dependencies are taken into
account.  The workload itself is proprietary; this generator produces
random *snowflake-chain* join queries — fact tables joined through
key-to-key dimension chains (store -> city -> country), the shape of real
BI workloads — whose key FDs are exactly the kind that repair
q-hierarchicality (the Example 4.12 pattern ``X -> Y, Y -> Z``).

Whether a chain query flips under FDs depends on its group-by set: heads
that form a *suffix* of the key chain flip (the Sigma-reduct nests), while
heads with gaps keep a bound dominator above a free variable and stay
intractable.  The generator draws a realistic mix of both, so the
measured flip fraction lands in the paper's "large majority" regime
without being hard-coded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..constraints.fds import FunctionalDependency, sigma_reduct
from ..query.ast import Atom, Query
from ..query.properties import is_q_hierarchical


@dataclass(frozen=True)
class WorkloadQuery:
    query: Query
    fds: tuple[FunctionalDependency, ...]


def _chain_query(
    index: int,
    depth: int,
    head_keys: list[int],
    with_measure: bool,
    many_to_many_hop: int | None = None,
) -> WorkloadQuery:
    """``Fact(k0, m) * Dim1(k0, k1) * ... * Dim_depth(k_{depth-1}, k_depth)``
    with key FDs ``k_{i-1} -> k_i`` and a head over the chosen keys.

    ``many_to_many_hop`` marks one dimension as a many-to-many bridge
    (think product -> supplier): that hop carries no FD, so the
    Sigma-reduct cannot nest across it and the query stays intractable.
    """
    atoms = [Atom("Fact", ("k0", "m") if with_measure else ("k0",))]
    fds = []
    for i in range(1, depth + 1):
        atoms.append(Atom(f"Dim{i}", (f"k{i-1}", f"k{i}")))
        if i != many_to_many_hop:
            fds.append(FunctionalDependency((f"k{i-1}",), f"k{i}"))
    head = tuple(f"k{j}" for j in sorted(set(head_keys)))
    return WorkloadQuery(Query(f"W{index}", head, tuple(atoms)), tuple(fds))


def random_workload(
    queries: int = 200,
    max_depth: int = 4,
    seed: int = 0,
    suffix_bias: float = 0.78,
) -> list[WorkloadQuery]:
    """Random snowflake-chain queries with mixed group-by heads.

    With probability ``suffix_bias`` every hop is key-to-key and the
    Sigma-reduct nests the whole chain (the FD-repairable case).
    Otherwise one interior hop is a many-to-many bridge without an FD —
    the reduct cannot nest across it and the query stays intractable
    (the residue every real workload contains).
    """
    rng = random.Random(seed)
    workload: list[WorkloadQuery] = []
    for index in range(queries):
        depth = rng.randint(2, max_depth)
        with_measure = rng.random() < 0.7
        cut = rng.randint(0, depth)
        head_keys = list(range(cut, depth + 1))
        if rng.random() < suffix_bias:
            hop = None
        else:
            # An interior many-to-many hop needs chain on both sides of
            # the break; depth 3+ guarantees one.
            depth = max(depth, 3)
            hop = rng.randint(2, depth - 1)
            head_keys = sorted({0, depth})  # spans the broken hop
        workload.append(
            _chain_query(index, depth, head_keys, with_measure, hop)
        )
    return workload


@dataclass
class FDImpact:
    total: int
    q_hierarchical_plain: int
    q_hierarchical_with_fds: int

    @property
    def flipped(self) -> int:
        return self.q_hierarchical_with_fds - self.q_hierarchical_plain

    @property
    def flipped_fraction(self) -> float:
        """Fraction of initially-intractable queries repaired by FDs."""
        hard = self.total - self.q_hierarchical_plain
        return self.flipped / hard if hard else 0.0

    @property
    def with_fds_fraction(self) -> float:
        return self.q_hierarchical_with_fds / self.total if self.total else 0.0


def fd_impact(workload: list[WorkloadQuery]) -> FDImpact:
    """Measure how many workload queries FDs turn q-hierarchical."""
    plain = 0
    with_fds = 0
    for item in workload:
        if is_q_hierarchical(item.query):
            plain += 1
            with_fds += 1
        elif is_q_hierarchical(sigma_reduct(item.query, item.fds)):
            with_fds += 1
    return FDImpact(len(workload), plain, with_fds)
