"""Graph update streams for the triangle workloads (Sections 3.3, 3.4).

The triangle query joins three binary relations R(A,B), S(B,C), T(C,A).
Feeding the same edge set into all three counts the directed triangles of
one graph.  Besides uniform random graphs the module generates *skewed*
(Zipf-like) graphs — the regime where heavy/light partitioning pays off —
and sliding-window streams mixing inserts with deletes of the oldest
edges.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..data.update import Update

TRIANGLE_RELATIONS = ("R", "S", "T")


def triangle_updates_for_edge(edge: tuple, payload: int = 1) -> list[Update]:
    """One graph edge as updates to all three triangle relations."""
    return [Update(name, edge, payload) for name in TRIANGLE_RELATIONS]


def random_edges(
    nodes: int, edges: int, seed: int = 0, allow_loops: bool = False
) -> list[tuple[int, int]]:
    """``edges`` distinct uniform random directed edges."""
    rng = random.Random(seed)
    seen: set[tuple[int, int]] = set()
    result: list[tuple[int, int]] = []
    while len(result) < edges:
        edge = (rng.randrange(nodes), rng.randrange(nodes))
        if not allow_loops and edge[0] == edge[1]:
            continue
        if edge in seen:
            continue
        seen.add(edge)
        result.append(edge)
    return result


def zipf_edges(
    nodes: int, edges: int, skew: float = 1.2, seed: int = 0
) -> list[tuple[int, int]]:
    """Distinct edges whose endpoints follow a Zipf-like distribution.

    Low node ids act as hubs; with ``skew`` around 1 or above, a few
    values reach degree Omega(N^(1/2)) and the heavy/light distinction of
    Section 3.3 becomes material.
    """
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** skew for rank in range(nodes)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)

    def draw() -> int:
        roll = rng.random()
        lo, hi = 0, nodes - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < roll:
                lo = mid + 1
            else:
                hi = mid
        return lo

    seen: set[tuple[int, int]] = set()
    result: list[tuple[int, int]] = []
    attempts = 0
    while len(result) < edges and attempts < 100 * edges:
        attempts += 1
        edge = (draw(), draw())
        if edge[0] == edge[1] or edge in seen:
            continue
        seen.add(edge)
        result.append(edge)
    return result


def triangle_insert_stream(
    edge_list: list[tuple[int, int]]
) -> Iterator[Update]:
    """Insert stream feeding each edge into R, S, and T."""
    for edge in edge_list:
        yield from triangle_updates_for_edge(edge, 1)


def sliding_window_stream(
    edge_list: list[tuple[int, int]], window: int
) -> Iterator[Update]:
    """Insert each edge; once the window fills, delete the oldest one.

    A standard insert-delete workload: the maintained count tracks the
    triangles among the ``window`` most recent edges.
    """
    for index, edge in enumerate(edge_list):
        yield from triangle_updates_for_edge(edge, 1)
        if index >= window:
            yield from triangle_updates_for_edge(edge_list[index - window], -1)
