"""TPC-H query skeletons for the Section 4.4 classification study.

The paper cites a study of the 22 TPC-H queries: eight Boolean and 13
non-Boolean versions are hierarchical, and functional dependencies from
the TPC-H keys turn four more of each into hierarchical queries.  The
TPC-H dataset itself is irrelevant to that study — only the queries' join
structures, free variables, and key FDs matter — so this module encodes
skeletonised versions of all 22 queries: natural-join bodies over the
TPC-H join keys plus representative group-by attributes, with the FDs
each query's relations imply.

Simplifications (documented per DESIGN.md): nested/anti-join subqueries
are dropped, keeping the outer join structure; self-joins (nation pairs
in Q7/Q8) use distinct relation symbols, as Theorem 4.1 requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constraints.fds import FunctionalDependency, sigma_reduct
from ..query.ast import Query, query
from ..query.properties import is_hierarchical, is_q_hierarchical


def _fd(*text: str) -> tuple[FunctionalDependency, ...]:
    return tuple(FunctionalDependency.parse(t) for t in text)


@dataclass(frozen=True)
class TPCHQuery:
    """One skeletonised TPC-H query with its applicable key FDs."""

    name: str
    query: Query
    fds: tuple[FunctionalDependency, ...]

    @property
    def boolean(self) -> Query:
        return self.query.boolean_version()


def tpch_queries() -> list[TPCHQuery]:
    """All 22 skeletons, in query order."""
    q = query
    return [
        # Q1: pricing summary — single scan of lineitem.
        TPCHQuery(
            "Q1",
            q("Q1", ["rf", "ls"], ("L", "ok", "pk", "sk", "rf", "ls")),
            (),
        ),
        # Q2: minimum cost supplier.
        TPCHQuery(
            "Q2",
            q(
                "Q2",
                ["sk", "pk"],
                ("P", "pk", "mfgr"),
                ("PS", "pk", "sk", "cost"),
                ("S", "sk", "nk"),
                ("N", "nk", "rk"),
                ("R", "rk"),
            ),
            _fd("sk -> nk", "nk -> rk"),
        ),
        # Q3: shipping priority.
        TPCHQuery(
            "Q3",
            q(
                "Q3",
                ["ok", "odate"],
                ("C", "ck", "seg"),
                ("O", "ok", "ck", "odate"),
                ("L", "ok", "pk", "sk"),
            ),
            _fd("ok -> ck", "ok -> odate"),
        ),
        # Q4: order priority checking.
        TPCHQuery(
            "Q4",
            q(
                "Q4",
                ["opri"],
                ("O", "ok", "ck", "opri"),
                ("L", "ok", "pk", "sk"),
            ),
            _fd("ok -> ck", "ok -> opri"),
        ),
        # Q5: local supplier volume (customer and supplier share a nation).
        TPCHQuery(
            "Q5",
            q(
                "Q5",
                ["nk"],
                ("C", "ck", "nk"),
                ("O", "ok", "ck"),
                ("L", "ok", "pk", "sk"),
                ("S", "sk", "nk"),
                ("N", "nk", "rk"),
                ("R", "rk"),
            ),
            _fd("ok -> ck", "ck -> nk", "sk -> nk", "nk -> rk"),
        ),
        # Q6: forecasting revenue change — single scan.
        TPCHQuery("Q6", q("Q6", [], ("L", "ok", "pk", "sk")), ()),
        # Q7: volume shipping between two nations.
        TPCHQuery(
            "Q7",
            q(
                "Q7",
                ["nk1", "nk2"],
                ("S", "sk", "nk1"),
                ("L", "ok", "pk", "sk"),
                ("O", "ok", "ck"),
                ("C", "ck", "nk2"),
                ("N1", "nk1"),
                ("N2", "nk2"),
            ),
            _fd("sk -> nk1", "ok -> ck", "ck -> nk2"),
        ),
        # Q8: national market share.
        TPCHQuery(
            "Q8",
            q(
                "Q8",
                ["nk2"],
                ("R", "rk"),
                ("N1", "nk1", "rk"),
                ("C", "ck", "nk1"),
                ("O", "ok", "ck"),
                ("L", "ok", "pk", "sk"),
                ("P", "pk"),
                ("S", "sk", "nk2"),
                ("N2", "nk2"),
            ),
            _fd("sk -> nk2", "ok -> ck", "ck -> nk1", "nk1 -> rk"),
        ),
        # Q9: product type profit measure.
        TPCHQuery(
            "Q9",
            q(
                "Q9",
                ["nk"],
                ("P", "pk"),
                ("PS", "pk", "sk"),
                ("L", "ok", "pk", "sk"),
                ("O", "ok", "ck"),
                ("S", "sk", "nk"),
                ("N", "nk"),
            ),
            _fd("sk -> nk", "ok -> ck"),
        ),
        # Q10: returned item reporting.
        TPCHQuery(
            "Q10",
            q(
                "Q10",
                ["ck"],
                ("C", "ck", "nk"),
                ("O", "ok", "ck"),
                ("L", "ok", "pk", "sk"),
                ("N", "nk"),
            ),
            _fd("ok -> ck", "ck -> nk"),
        ),
        # Q11: important stock identification.
        TPCHQuery(
            "Q11",
            q(
                "Q11",
                ["pk"],
                ("PS", "pk", "sk"),
                ("S", "sk", "nk"),
                ("N", "nk"),
            ),
            _fd("sk -> nk"),
        ),
        # Q12: shipping modes and order priority.
        TPCHQuery(
            "Q12",
            q(
                "Q12",
                ["sm"],
                ("O", "ok", "ck"),
                ("L", "ok", "pk", "sk", "sm"),
            ),
            _fd("ok -> ck"),
        ),
        # Q13: customer distribution.
        TPCHQuery(
            "Q13",
            q("Q13", ["ck"], ("C", "ck"), ("O", "ok", "ck")),
            _fd("ok -> ck"),
        ),
        # Q14: promotion effect.
        TPCHQuery(
            "Q14", q("Q14", [], ("L", "ok", "pk", "sk"), ("P", "pk")), ()
        ),
        # Q15: top supplier.
        TPCHQuery(
            "Q15",
            q("Q15", ["sk"], ("S", "sk", "nk"), ("L", "ok", "pk", "sk")),
            _fd("sk -> nk"),
        ),
        # Q16: parts/supplier relationship.
        TPCHQuery(
            "Q16",
            q("Q16", ["brand", "pk"], ("P", "pk", "brand"), ("PS", "pk", "sk")),
            _fd("pk -> brand"),
        ),
        # Q17: small-quantity-order revenue.
        TPCHQuery(
            "Q17", q("Q17", [], ("L", "ok", "pk", "sk"), ("P", "pk")), ()
        ),
        # Q18: large volume customer.
        TPCHQuery(
            "Q18",
            q(
                "Q18",
                ["ck", "ok"],
                ("C", "ck"),
                ("O", "ok", "ck"),
                ("L", "ok", "pk", "sk"),
            ),
            _fd("ok -> ck"),
        ),
        # Q19: discounted revenue.
        TPCHQuery(
            "Q19", q("Q19", [], ("L", "ok", "pk", "sk"), ("P", "pk")), ()
        ),
        # Q20: potential part promotion.
        TPCHQuery(
            "Q20",
            q(
                "Q20",
                ["sk"],
                ("S", "sk", "nk"),
                ("N", "nk"),
                ("PS", "pk", "sk"),
                ("P", "pk"),
            ),
            _fd("sk -> nk"),
        ),
        # Q21: suppliers who kept orders waiting.
        TPCHQuery(
            "Q21",
            q(
                "Q21",
                ["sk"],
                ("S", "sk", "nk"),
                ("L", "ok", "pk", "sk"),
                ("O", "ok", "ck"),
                ("N", "nk"),
            ),
            _fd("sk -> nk", "ok -> ck"),
        ),
        # Q22: global sales opportunity.
        TPCHQuery(
            "Q22",
            q("Q22", ["cntry"], ("C", "ck", "cntry"), ("O", "ok", "ck")),
            _fd("ok -> ck", "ck -> cntry"),
        ),
    ]


@dataclass
class ClassificationStudy:
    """Counts of (q-)hierarchical TPC-H queries, with and without FDs."""

    hierarchical_boolean: list[str]
    hierarchical_non_boolean: list[str]
    fd_gain_boolean: list[str]
    fd_gain_non_boolean: list[str]

    def summary_rows(self) -> list[tuple[str, int, int]]:
        """(variant, plain count, +FD count) rows for the report table."""
        return [
            (
                "Boolean",
                len(self.hierarchical_boolean),
                len(self.hierarchical_boolean) + len(self.fd_gain_boolean),
            ),
            (
                "non-Boolean",
                len(self.hierarchical_non_boolean),
                len(self.hierarchical_non_boolean)
                + len(self.fd_gain_non_boolean),
            ),
        ]


def tpch_q3_database(
    customers: int = 100,
    orders_per_customer: int = 5,
    lineitems_per_order: int = 3,
    seed: int = 0,
):
    """Synthetic data for the Q3 skeleton (C, O, L) satisfying its FDs.

    ``ok -> ck`` and ``ok -> odate`` hold by construction (each order has
    one customer and one date), which is exactly what Theorem 4.11 needs
    for the FD-guided engine to maintain Q3 with O(1) updates.
    """
    import random as _random

    from ..data.database import Database

    rng = _random.Random(seed)
    db = Database()
    c = db.create("C", ("ck", "seg"))
    o = db.create("O", ("ok", "ck", "odate"))
    l = db.create("L", ("ok", "pk", "sk"))
    ok = 0
    for ck in range(customers):
        c.insert(ck, f"seg{ck % 5}")
        for _ in range(orders_per_customer):
            odate = rng.randrange(30)
            o.insert(ok, ck, odate)
            for _ in range(lineitems_per_order):
                l.insert(ok, rng.randrange(customers * 2), rng.randrange(50))
            ok += 1
    return db


def classify_tpch() -> ClassificationStudy:
    """Run the Section 4.4 study over the skeletons."""
    hb: list[str] = []
    hn: list[str] = []
    gb: list[str] = []
    gn: list[str] = []
    for item in tpch_queries():
        boolean = item.boolean
        if is_hierarchical(boolean):
            hb.append(item.name)
        elif is_hierarchical(sigma_reduct(boolean, item.fds)):
            gb.append(item.name)
        if is_hierarchical(item.query):
            hn.append(item.name)
        elif is_hierarchical(sigma_reduct(item.query, item.fds)):
            gn.append(item.name)
    return ClassificationStudy(hb, hn, gb, gn)
