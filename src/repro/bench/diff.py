"""Cross-commit benchmark regression tracking over ``repro.bench/1`` JSON.

``python -m repro benchdiff OLD.json NEW.json [--band 0.2]`` compares two
benchmark records (the files ``benchmarks/results/BENCH_*.json`` written
by every bench) and reports per-cell movements in the metric columns it
recognizes.  A movement beyond the noise band *in the bad direction* is a
regression and makes the command exit non-zero — the CI gate from the
ROADMAP's cross-commit tracking item.

Direction is inferred from the column name:

* **higher is better** — throughput columns (``upd/s``, ``throughput``,
  ``tuples/s``, ``req/s``, ``speedup``);
* **lower is better** — cost columns (``ops``, ``seconds``, ``latency``,
  ``delay``, ``time``).

Unrecognized columns (labels, sizes, configuration echo) are ignored as
metrics, as are cells that do not parse as numbers.  Rows are matched by
the tuple of *all* their non-metric cells (the compound row label — e.g.
``(query, workload)``) within tables matched by title, so reordering
rows, appending new ones, or repeating a value in the first column never
produces spurious findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional

#: Substrings marking a column where larger values are better.
HIGHER_IS_BETTER = (
    "upd/s", "throughput", "tuples/s", "req/s", "speedup", "per sec"
)

#: Substrings marking a column where smaller values are better.
LOWER_IS_BETTER = ("ops", "seconds", "latency", "delay", "time (", " time", "ms")


@dataclass(frozen=True)
class Finding:
    """One compared cell: old value, new value, and the verdict."""

    table: str
    row: str
    column: str
    old: float
    new: float
    direction: str  # "higher" or "lower"
    regressed: bool

    @property
    def change(self) -> float:
        """Relative change of ``new`` against ``old`` (signed)."""
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return (self.new - self.old) / abs(self.old)

    def render(self) -> str:
        arrow = "REGRESSION" if self.regressed else "ok"
        return (
            f"[{arrow}] {self.table} / {self.row} / {self.column}: "
            f"{self.old:g} -> {self.new:g} ({self.change:+.1%}, "
            f"{self.direction} is better)"
        )


def parse_number(cell: Any) -> Optional[float]:
    """Best-effort numeric parse of a table cell; ``None`` when not numeric.

    Accepts the formats the report tables emit: plain numbers,
    thousands separators (``12,345``), ratio suffixes (``3.2x``), and
    percentage suffixes (``+12%``).
    """
    if isinstance(cell, (int, float)):
        return float(cell)
    if not isinstance(cell, str):
        return None
    text = cell.strip().replace(",", "")
    if text.endswith(("x", "X", "%")):
        text = text[:-1]
    if text.startswith("+"):
        text = text[1:]
    try:
        return float(text)
    except ValueError:
        return None


def column_direction(column: str) -> Optional[str]:
    """``"higher"``/``"lower"`` for metric columns, ``None`` otherwise."""
    lowered = column.lower()
    for marker in HIGHER_IS_BETTER:
        if marker in lowered:
            return "higher"
    for marker in LOWER_IS_BETTER:
        if marker in lowered:
            return "lower"
    return None


def _tables_of(record: dict) -> list[dict]:
    tables = record.get("tables")
    if tables:
        return list(tables)
    # Pre-``tables`` records only carry the top-level series view.
    series = record.get("series") or {}
    if not series:
        return []
    columns = list(series)
    length = max((len(v) for v in series.values()), default=0)
    rows = [
        [series[c][i] if i < len(series[c]) else None for c in columns]
        for i in range(length)
    ]
    return [{"title": record.get("name", ""), "columns": columns, "rows": rows}]


def _row_label(row: list, columns: list[str]) -> tuple[str, ...]:
    """The row's compound label: every cell under a non-metric column.

    Falls back to the first cell when every column is a metric, so
    all-numeric tables still match positionally-labelled rows.
    """
    label = tuple(
        str(row[i])
        for i, column in enumerate(columns)
        if i < len(row) and column_direction(column) is None
    )
    return label if label else (str(row[0]),)


def diff_records(
    old: dict, new: dict, band: float = 0.2
) -> list[Finding]:
    """Compare two ``repro.bench/1`` records; return per-cell findings.

    ``band`` is the symmetric noise band: a metric may move by up to
    ``band * old`` in the bad direction before it counts as a regression.
    Improvements never regress, however large.
    """
    findings: list[Finding] = []
    new_tables = {t.get("title", ""): t for t in _tables_of(new)}
    for old_table in _tables_of(old):
        title = old_table.get("title", "")
        new_table = new_tables.get(title)
        if new_table is None:
            continue
        columns = [str(c) for c in old_table.get("columns", [])]
        new_columns = [str(c) for c in new_table.get("columns", [])]
        new_rows = {
            _row_label(row, new_columns): row
            for row in new_table.get("rows", [])
            if row
        }
        for old_row in old_table.get("rows", []):
            if not old_row:
                continue
            label_cells = _row_label(old_row, columns)
            new_row = new_rows.get(label_cells)
            if new_row is None:
                continue
            label = " / ".join(label_cells) if label_cells else str(old_row[0])
            for index, column in enumerate(columns):
                direction = column_direction(column)
                if direction is None or index == 0:
                    continue
                try:
                    new_index = new_columns.index(column)
                except ValueError:
                    continue
                old_value = (
                    parse_number(old_row[index])
                    if index < len(old_row)
                    else None
                )
                new_value = (
                    parse_number(new_row[new_index])
                    if new_index < len(new_row)
                    else None
                )
                if old_value is None or new_value is None:
                    continue
                if direction == "higher":
                    regressed = new_value < old_value * (1.0 - band)
                else:
                    regressed = new_value > old_value * (1.0 + band)
                findings.append(
                    Finding(
                        title, label, column,
                        old_value, new_value, direction, regressed,
                    )
                )
    return findings


def load_record(path: str) -> dict:
    with open(path) as handle:
        record = json.load(handle)
    schema = record.get("schema")
    if schema != "repro.bench/1":
        raise ValueError(
            f"{path}: expected a repro.bench/1 record, got schema {schema!r}"
        )
    return record


def benchdiff(
    old_path: str, new_path: str, band: float = 0.2, quiet: bool = False
) -> int:
    """CLI entry: diff two bench JSON files, print findings, return code.

    Returns 0 when no metric regressed beyond the band, 1 otherwise.
    """
    old = load_record(old_path)
    new = load_record(new_path)
    findings = diff_records(old, new, band)
    regressions = [f for f in findings if f.regressed]
    if not quiet:
        name = new.get("name") or old.get("name") or "bench"
        print(
            f"benchdiff {name}: {len(findings)} metric cells compared, "
            f"band ±{band:.0%}"
        )
        for finding in findings:
            if finding.regressed or abs(finding.change) > band:
                print("  " + finding.render())
        if not regressions:
            print("  no regressions beyond the band")
    return 1 if regressions else 0
