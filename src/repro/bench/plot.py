"""Render ``repro.bench/1`` JSON records as charts.

``python -m repro benchplot BENCH_*.json -o out/`` turns every table in
every record into one chart: a grouped bar chart per metric column, with
one group per row (labelled by the row's non-metric cells, the same
compound label ``benchdiff`` matches rows by).

Matplotlib is optional.  When it is importable the charts are PNG files;
when it is not (the CI container deliberately carries no plotting
dependencies) the same data is rendered as fixed-width ASCII bar tables
in ``.txt`` files, so the plotting layer degrades instead of failing.
``--ascii`` forces the text renderer even when matplotlib is present.
"""

from __future__ import annotations

import os
import re

from .diff import _row_label, _tables_of, column_direction, load_record

#: Width, in characters, of a full-scale ASCII bar.
ASCII_BAR_WIDTH = 40


def _matplotlib():
    """The pyplot module with a headless backend, or ``None``."""
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except Exception:
        return None
    return plt


def _slug(text: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")
    return slug or "table"


def _metric_series(table: dict):
    """``(labels, {column: values})`` for one table's metric columns.

    Rows are labelled by their non-metric cells (configuration echo);
    metric cells that fail to parse become ``None`` so a sparse column
    (e.g. a speedup only some rows report) still lines up.
    """
    from .diff import parse_number

    columns = [str(c) for c in table.get("columns", [])]
    rows = [row for row in table.get("rows", []) if row]
    labels = [" / ".join(_row_label(row, columns)) for row in rows]
    series: dict[str, list] = {}
    for index, column in enumerate(columns):
        if column_direction(column) is None:
            continue
        series[column] = [
            parse_number(row[index]) if index < len(row) else None
            for row in rows
        ]
    return labels, series


def _render_ascii(title: str, labels: list[str], series: dict) -> str:
    """One fixed-width bar block per metric column."""
    lines = [title, "=" * len(title)]
    width = max((len(label) for label in labels), default=0)
    for column, values in series.items():
        lines.append("")
        lines.append(f"  {column}")
        numeric = [v for v in values if v is not None]
        scale = max((abs(v) for v in numeric), default=0.0)
        for label, value in zip(labels, values):
            if value is None:
                lines.append(f"    {label:<{width}}  (n/a)")
                continue
            filled = (
                round(abs(value) / scale * ASCII_BAR_WIDTH) if scale else 0
            )
            bar = "#" * filled
            lines.append(f"    {label:<{width}}  {bar} {value:g}")
    lines.append("")
    return "\n".join(lines)


def _render_png(plt, path: str, title: str, labels, series) -> None:
    """Grouped bars: one group per row, one bar per metric column."""
    columns = list(series)
    groups = range(len(labels))
    bar_width = 0.8 / max(len(columns), 1)
    fig, axis = plt.subplots(
        figsize=(max(6.0, 1.2 * len(labels)), 4.5)
    )
    for offset, column in enumerate(columns):
        values = [v if v is not None else 0.0 for v in series[column]]
        axis.bar(
            [g + offset * bar_width for g in groups],
            values,
            width=bar_width,
            label=column,
        )
    axis.set_xticks([g + 0.4 - bar_width / 2 for g in groups])
    axis.set_xticklabels(labels, rotation=30, ha="right", fontsize=8)
    axis.set_title(title)
    axis.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    plt.close(fig)


def benchplot(paths: list[str], out_dir: str, ascii_only: bool = False) -> int:
    """CLI entry: plot each record's tables into ``out_dir``; return 0.

    Returns 1 when no record yields a plottable table (bad paths or
    records without metric columns).
    """
    plt = None if ascii_only else _matplotlib()
    if plt is None and not ascii_only:
        print("matplotlib unavailable; falling back to ASCII charts")
    os.makedirs(out_dir, exist_ok=True)
    written = 0
    for path in paths:
        record = load_record(path)
        record_name = record.get("name") or _slug(
            os.path.splitext(os.path.basename(path))[0]
        )
        for table in _tables_of(record):
            title = str(table.get("title", "")) or record_name
            labels, series = _metric_series(table)
            if not labels or not series:
                continue
            stem = f"{_slug(record_name)}--{_slug(title)}"
            if plt is not None:
                target = os.path.join(out_dir, stem + ".png")
                _render_png(plt, target, title, labels, series)
            else:
                target = os.path.join(out_dir, stem + ".txt")
                with open(target, "w") as handle:
                    handle.write(_render_ascii(title, labels, series))
            print(f"wrote {target}")
            written += 1
    if not written:
        print("no plottable tables found")
        return 1
    return 0
