"""Benchmark harness utilities: timing, throughput runs, report tables.

All benches in ``benchmarks/`` print their results through these helpers
so that the paper-shaped tables and series look uniform and are easy to
diff against EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..obs import MaintenanceStats, observed_enumeration


def time_call(operation: Callable[[], Any]) -> tuple[float, Any]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = operation()
    return time.perf_counter() - start, result


@dataclass
class ThroughputResult:
    """Outcome of one strategy run over an update stream."""

    strategy: str
    updates: int
    enumerations: int
    seconds: float
    tuples_enumerated: int = 0

    @property
    def throughput(self) -> float:
        """Updates processed per second (including enumeration time).

        Guarded against degenerate zero-duration runs (empty update
        streams, timer resolution): those report 0.0 rather than ``inf``,
        which would otherwise leak into tables and growth fits.
        """
        if self.seconds <= 0.0:
            return 0.0
        return self.updates / self.seconds

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "updates": self.updates,
            "enumerations": self.enumerations,
            "seconds": self.seconds,
            "tuples_enumerated": self.tuples_enumerated,
            "throughput": self.throughput,
        }


def run_throughput(
    strategy_name: str,
    apply_update: Callable[[Any], None],
    enumerate_all: Callable[[], Iterable],
    updates: Sequence,
    batch_size: int,
    enum_interval: int,
    time_budget: float | None = None,
    stats: MaintenanceStats | None = None,
) -> ThroughputResult:
    """Replay the Fig. 4 protocol: apply update batches; after every
    ``enum_interval`` batches issue a full enumeration request.

    ``time_budget`` (seconds) mirrors the paper's 50-hour cutoff: a run
    exceeding it stops early and reports the throughput achieved so far.
    The budget is checked both before and after each enumeration pass, so
    a slow ``enumerate_all`` can overshoot it by at most one pass rather
    than being entered with the budget already spent.

    ``stats`` optionally records the run into a
    :class:`~repro.obs.MaintenanceStats`: per-update latency samples and
    per-tuple enumeration delays (this adds two clock reads per update,
    so leave it off for pure throughput numbers).
    """
    start = time.perf_counter()
    applied = 0
    enumerations = 0
    tuples_seen = 0
    batch_index = 0
    over_budget = (
        (lambda: time.perf_counter() - start > time_budget)
        if time_budget is not None
        else (lambda: False)
    )
    for offset in range(0, len(updates), batch_size):
        if stats is None:
            for update in updates[offset : offset + batch_size]:
                apply_update(update)
                applied += 1
        else:
            for update in updates[offset : offset + batch_size]:
                update_start = time.perf_counter()
                apply_update(update)
                stats.record_update(time.perf_counter() - update_start)
                applied += 1
        batch_index += 1
        if over_budget():
            break
        if enum_interval and batch_index % enum_interval == 0:
            enumerations += 1
            if stats is None:
                for _ in enumerate_all():
                    tuples_seen += 1
            else:
                for _ in observed_enumeration(stats, enumerate_all()):
                    tuples_seen += 1
            if over_budget():
                break
    seconds = time.perf_counter() - start
    return ThroughputResult(
        strategy_name, applied, enumerations, seconds, tuples_seen
    )


@dataclass
class Table:
    """A fixed-width text table, printed like the paper's result tables."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add(self, *row: Any) -> None:
        self.rows.append(row)

    def render(self) -> str:
        cells = [[str(c) for c in self.columns]] + [
            [_format(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
        print()


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) vs log(x): the measured growth rate.

    Used by scaling benches to check claims like "update time grows like
    N^(1/2)" without relying on absolute constants.
    """
    pairs = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    if len(pairs) < 2:
        return float("nan")
    n = len(pairs)
    sx = sum(p[0] for p in pairs)
    sy = sum(p[1] for p in pairs)
    sxx = sum(p[0] * p[0] for p in pairs)
    sxy = sum(p[0] * p[1] for p in pairs)
    denominator = n * sxx - sx * sx
    if denominator == 0:
        return float("nan")
    return (n * sxy - sx * sy) / denominator


# ----------------------------------------------------------------------
# Machine-readable export (the ``repro.bench/1`` JSON contract)
# ----------------------------------------------------------------------

#: Version tag of the benchmark JSON payload; bump only on breaking change.
BENCH_SCHEMA = "repro.bench/1"


def table_record(table: Table) -> dict:
    """One table as a JSON-able record with a per-column ``series`` view.

    ``series`` maps each column name to the list of its values down the
    rows — the shape plotting scripts want — while ``rows`` preserves the
    row-major table for diffing against the text rendering.
    """
    columns = [str(column) for column in table.columns]
    rows = [list(row) for row in table.rows]
    series = {
        column: [row[i] if i < len(row) else None for row in rows]
        for i, column in enumerate(columns)
    }
    return {
        "title": table.title,
        "columns": columns,
        "rows": rows,
        "series": series,
    }


def bench_record(
    name: str,
    tables: Table | Sequence[Table],
    stats: MaintenanceStats | None = None,
    meta: dict[str, Any] | None = None,
) -> dict:
    """The full JSON document for one benchmark run."""
    if isinstance(tables, Table):
        tables = [tables]
    records = [table_record(table) for table in tables]
    record: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "meta": dict(meta or {}),
        "tables": records,
        # Convenience: the first table's series at top level, which is
        # what single-table benches (the common case) read back.
        "series": records[0]["series"] if records else {},
    }
    if stats is not None:
        record["stats"] = stats.to_dict()
    return record


def write_bench_json(
    directory: str,
    name: str,
    tables: Table | Sequence[Table],
    stats: MaintenanceStats | None = None,
    meta: dict[str, Any] | None = None,
) -> str:
    """Write ``BENCH_<name>.json`` under ``directory``; returns the path.

    Values that are not JSON-native (ring payloads, tuples as table
    cells) are serialized via ``str`` so the file always parses.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(bench_record(name, tables, stats, meta), handle,
                  indent=2, default=str)
        handle.write("\n")
    return path
