"""Benchmark harness utilities: timing, throughput runs, report tables.

All benches in ``benchmarks/`` print their results through these helpers
so that the paper-shaped tables and series look uniform and are easy to
diff against EXPERIMENTS.md.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence


def time_call(operation: Callable[[], Any]) -> tuple[float, Any]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = operation()
    return time.perf_counter() - start, result


@dataclass
class ThroughputResult:
    """Outcome of one strategy run over an update stream."""

    strategy: str
    updates: int
    enumerations: int
    seconds: float
    tuples_enumerated: int = 0

    @property
    def throughput(self) -> float:
        """Updates processed per second (including enumeration time)."""
        return self.updates / self.seconds if self.seconds else math.inf


def run_throughput(
    strategy_name: str,
    apply_update: Callable[[Any], None],
    enumerate_all: Callable[[], Iterable],
    updates: Sequence,
    batch_size: int,
    enum_interval: int,
    time_budget: float | None = None,
) -> ThroughputResult:
    """Replay the Fig. 4 protocol: apply update batches; after every
    ``enum_interval`` batches issue a full enumeration request.

    ``time_budget`` (seconds) mirrors the paper's 50-hour cutoff: a run
    exceeding it stops early and reports the throughput achieved so far.
    """
    start = time.perf_counter()
    applied = 0
    enumerations = 0
    tuples_seen = 0
    batch_index = 0
    for offset in range(0, len(updates), batch_size):
        for update in updates[offset : offset + batch_size]:
            apply_update(update)
            applied += 1
        batch_index += 1
        if enum_interval and batch_index % enum_interval == 0:
            enumerations += 1
            for _ in enumerate_all():
                tuples_seen += 1
        if time_budget is not None and time.perf_counter() - start > time_budget:
            break
    seconds = time.perf_counter() - start
    return ThroughputResult(
        strategy_name, applied, enumerations, seconds, tuples_seen
    )


@dataclass
class Table:
    """A fixed-width text table, printed like the paper's result tables."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add(self, *row: Any) -> None:
        self.rows.append(row)

    def render(self) -> str:
        cells = [[str(c) for c in self.columns]] + [
            [_format(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
        print()


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def growth_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) vs log(x): the measured growth rate.

    Used by scaling benches to check claims like "update time grows like
    N^(1/2)" without relying on absolute constants.
    """
    pairs = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    if len(pairs) < 2:
        return float("nan")
    n = len(pairs)
    sx = sum(p[0] for p in pairs)
    sy = sum(p[1] for p in pairs)
    sxx = sum(p[0] * p[0] for p in pairs)
    sxy = sum(p[0] * p[1] for p in pairs)
    denominator = n * sxx - sx * sx
    if denominator == 0:
        return float("nan")
    return (n * sxy - sx * sy) / denominator
