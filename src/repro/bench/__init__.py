"""Benchmark harness helpers."""

from .harness import (
    BENCH_SCHEMA,
    Table,
    ThroughputResult,
    bench_record,
    growth_exponent,
    run_throughput,
    table_record,
    time_call,
    write_bench_json,
)

__all__ = [
    "BENCH_SCHEMA",
    "Table",
    "ThroughputResult",
    "bench_record",
    "growth_exponent",
    "run_throughput",
    "table_record",
    "time_call",
    "write_bench_json",
]
