"""Benchmark harness helpers."""

from .diff import Finding, benchdiff, diff_records, load_record
from .plot import benchplot
from .harness import (
    BENCH_SCHEMA,
    Table,
    ThroughputResult,
    bench_record,
    growth_exponent,
    run_throughput,
    table_record,
    time_call,
    write_bench_json,
)

__all__ = [
    "BENCH_SCHEMA",
    "Finding",
    "Table",
    "ThroughputResult",
    "bench_record",
    "benchdiff",
    "benchplot",
    "diff_records",
    "growth_exponent",
    "load_record",
    "run_throughput",
    "table_record",
    "time_call",
    "write_bench_json",
]
