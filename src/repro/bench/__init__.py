"""Benchmark harness helpers."""

from .harness import (
    Table,
    ThroughputResult,
    growth_exponent,
    run_throughput,
    time_call,
)

__all__ = [
    "Table",
    "ThroughputResult",
    "growth_exponent",
    "run_throughput",
    "time_call",
]
