"""View trees: higher-order IVM with factorized views (Sections 3.2, 4.1).

A view tree materializes, for each node of a variable order, the aggregate
of the join of everything below the node.  Following F-IVM:

* each query atom becomes a *leaf* relation of the tree (a live copy of
  the database relation, renamed to the atom's variables);
* the view at node ``X`` has schema ``dep(X)`` — the node's dependency
  set — and aggregates away ``X`` from the join of the node's children
  views and anchored leaves;
* when more than one source constrains ``X``, the node additionally
  materializes the pre-marginalization join (the *guard*), which is what
  enumeration iterates over.

On a single-tuple update, deltas propagate along the leaf-to-root path;
each step joins the delta with the sibling sources.  For q-hierarchical
queries under their canonical order, each such join is a constant number
of hash lookups, so updates take O(1) — Theorem 4.1's upper bound.
Enumeration walks the free-variable prefix of the order top-down and emits
output tuples with constant delay (Example 4.4).

Like the paper (end of Section 2), enumeration assumes *valid* update
batches: between enumeration requests, multiplicities may transiently go
negative, but at enumeration time all input tuples must have positive
multiplicities.  Otherwise an aggregate view entry can cancel to zero
while individual output tuples below it are non-zero, and the factorized
walk would skip them.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..data.database import Database
from ..data.relation import Relation
from ..data.schema import Schema
from ..data.update import Update, coalesce_grouped
from ..naive.algebra import join_all, join_pair, marginalize, union_into
from ..obs import Observable, observed, observed_enumeration
from ..query.ast import Atom, Query
from ..query.variable_order import VariableOrder, VarOrderNode, order_for
from ..data.columnar import coalesce_columnar
from ..rings.lifting import LiftingMap
from .codegen import (
    DeltaKernel,
    EnumKernel,
    compile_delta_kernel,
    compile_enum_kernel,
    new_codegen_info,
)
from .changes import ChangeTracker, MaterializedView, OutputDelta
from .compile import DeltaPlan, compile_delta_plans
from .enumplan import EnumPlan, _flatten, compile_enum_plan
from .epoch import EpochSnapshot


class ViewNode:
    """One node of a view tree."""

    __slots__ = (
        "variable",
        "dependency",
        "is_free",
        "children",
        "parent",
        "leaves",
        "view",
        "guard",
    )

    def __init__(self, variable: str, dependency: tuple[str, ...], is_free: bool):
        self.variable = variable
        self.dependency = dependency
        self.is_free = is_free
        self.children: list[ViewNode] = []
        self.parent: Optional[ViewNode] = None
        #: (atom, leaf relation) pairs anchored at this node.
        self.leaves: list[tuple[Atom, Relation]] = []
        #: The node view V_X over dep(X) (X marginalized away).
        self.view: Relation | None = None
        #: Materialized pre-marginalization join, when >1 source exists.
        self.guard: Relation | None = None

    def sources(self) -> list[Relation]:
        """The relations joined at this node: anchored leaves + child views."""
        result = [leaf for _, leaf in self.leaves]
        result.extend(child.view for child in self.children)
        return result

    def guard_relation(self) -> Relation:
        """The relation enumerating candidate values for this variable."""
        if self.guard is not None:
            return self.guard
        for relation in self.sources():
            if self.variable in relation.schema:
                return relation
        raise RuntimeError(
            f"node {self.variable!r} has no source containing its variable"
        )

    def walk(self) -> Iterator["ViewNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"ViewNode({self.variable!r}, dep={self.dependency!r}, "
            f"view_size={len(self.view) if self.view is not None else None})"
        )


class ViewTreeEngine(Observable):
    """Eager factorized IVM over a variable order (the F-IVM engine)."""

    #: Sample view sizes into an attached recorder every N single-tuple
    #: updates (0 disables periodic memory sampling).
    view_sample_interval: int = 64

    #: Minimum batch size routed through the compiled batch kernel.
    #: Below it there is nothing to coalesce or share, so the per-tuple
    #: compiled path wins on plain call overhead.
    batch_compile_threshold: int = 2

    #: Engines exposing publish_epoch / *_snapshot reads (feature probe
    #: for the serving tier's snapshot-read mode).
    supports_snapshots: bool = True

    def __init__(
        self,
        query: Query,
        database: Database,
        order: VariableOrder | None = None,
        lifting: LiftingMap | None = None,
        stats=None,
        leaf_filter=None,
        compile_plans: bool = True,
        compile_enum: bool = True,
        codegen: bool = True,
    ):
        """Build the view tree over ``database``.

        ``stats`` injects a :class:`~repro.obs.MaintenanceStats` recorder
        at construction time (equivalent to calling :meth:`attach_stats`
        immediately) — shard coordinators use this to hand every shard
        its own labelled recorder.

        ``leaf_filter`` is an optional ``(relation_name, key) -> bool``
        predicate; when given, leaves materialize only the base tuples it
        accepts.  Combined with ``apply(update, update_base=False)`` this
        lets several engines share one database, each maintaining a
        disjoint hash shard of it.

        ``compile_plans`` pre-compiles one :class:`~repro.viewtree.compile.
        DeltaPlan` per (base relation, anchor) pair so single-tuple
        updates run through the allocation-free kernel; pass ``False``
        to force the generic interpretation path (the ``--no-compile``
        escape hatch).  Batch rebuilds always use the generic bottom-up
        rebuild regardless.

        ``compile_enum`` is the read-side twin: it pre-compiles one
        :class:`~repro.viewtree.enumplan.EnumPlan` from the free-top
        variable order so :meth:`enumerate` (including prebound CQAP
        lookups) runs through the flat slot-array kernel; pass ``False``
        (the ``--no-compile-enum`` escape hatch) for the generic
        recursive walk.  Empty-head queries and non-free-top orders
        always use the generic path.

        ``codegen`` takes the compiled plans one rung further: each
        :class:`DeltaPlan`/:class:`EnumPlan` is source-generated into an
        exec-compiled kernel (:mod:`repro.viewtree.codegen`) with the
        step loops unrolled and projections/ring ops inlined; batches
        run over columnar key/payload lists.  Pass ``False`` (the
        ``--no-codegen`` escape hatch) to run the interpreted plans —
        the bit-identical differential-testing oracle.  A plan whose
        generation fails falls back to interpretation (counted as
        ``fallbacks`` in the ``codegen`` obs block) without affecting
        the others.
        """
        self.query = query
        self.database = database
        self.ring = database.ring
        self.lifting = lifting if lifting is not None else LiftingMap(self.ring)
        self.order = order if order is not None else order_for(query)
        if self.order.query is not query and (
            self.order.query.atoms != query.atoms
            or self.order.query.head != query.head
        ):
            raise ValueError("variable order was built for a different query")
        self._leaf_filter = leaf_filter

        self.roots: list[ViewNode] = []
        #: relation name -> list of (atom, anchor ViewNode, leaf Relation)
        self._anchors: dict[str, list[tuple[Atom, ViewNode, Relation]]] = {}
        for var_root in self.order.roots:
            self.roots.append(self._build_node(var_root, None))
        #: relation name -> list of DeltaPlans, parallel to _anchors.
        self._plans: dict[str, list[DeltaPlan]] = {}
        self.compiled = False
        if compile_plans:
            self._plans = compile_delta_plans(self)
            self.compiled = True
        #: Compiled enumeration plan (None -> generic recursive walk).
        self._enum_plan: EnumPlan | None = (
            compile_enum_plan(self) if compile_enum else None
        )
        self.enum_compiled = self._enum_plan is not None
        #: Source-generated kernels: relation name -> list parallel to
        #: _plans (None entries fall back to the interpreted plan), plus
        #: the read-path kernel.  Built only when ``codegen`` is set.
        self._kernels: dict[str, list[DeltaKernel | None]] = {}
        self._enum_kernel: EnumKernel | None = None
        #: Generation counters, recorded into the first attached stats
        #: recorder (then cleared, so re-attachment never double-counts).
        self._codegen_info: dict | None = None
        self.codegen = False
        if codegen and (self.compiled or self._enum_plan is not None):
            info = new_codegen_info()
            for name, plans in self._plans.items():
                row: list[DeltaKernel | None] = []
                for plan in plans:
                    try:
                        row.append(compile_delta_kernel(plan, info))
                    except Exception:
                        info["fallbacks"] += 1
                        row.append(None)
                self._kernels[name] = row
            if self._enum_plan is not None:
                try:
                    self._enum_kernel = compile_enum_kernel(
                        self._enum_plan, info
                    )
                except Exception:
                    info["fallbacks"] += 1
            self.codegen = self._enum_kernel is not None or any(
                kernel is not None
                for row in self._kernels.values()
                for kernel in row
            )
            self._codegen_info = info
        #: Lazily-built flat schedule for the generic fallback walk.
        self._enum_schedule: list | None = None
        #: Last published epoch number and its frozen snapshot.
        self.epoch = 0
        self._epoch_snapshot: EpochSnapshot | None = None
        #: Lazily-created per-epoch output change tracker (track_changes).
        self._change_tracker: ChangeTracker | None = None
        self._updates_since_sample = 0
        if stats is not None:
            self.attach_stats(stats)

    def __getstate__(self):
        # Epoch snapshots are keyed by object identity, which does not
        # survive pickling (process-pool shards ship whole engines);
        # the receiving side republishes after adoption.  The change
        # tracker holds snapshots too, so it is likewise dropped — the
        # receiver re-enables tracking (subscribers see an epoch gap and
        # fall back to a full drain).
        state = self.__dict__.copy()
        state["_epoch_snapshot"] = None
        state["_change_tracker"] = None
        return state

    def _propagate_stats(self, stats) -> None:
        # Report kernel-generation counters to the first recorder that
        # attaches, then drop them: re-attachment (or attaching a fresh
        # recorder after a pickle round-trip) must not double-count
        # compilations that happened once.
        info = self._codegen_info
        if stats is not None and info is not None:
            stats.record_codegen(
                info["kernels"],
                info["time_ms"],
                info["cache_hits"],
                info["fallbacks"],
            )
            self._codegen_info = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_node(self, var_node: VarOrderNode, parent: Optional[ViewNode]) -> ViewNode:
        node = ViewNode(
            var_node.variable,
            var_node.dependency,
            var_node.variable in self.query.free_variables,
        )
        node.parent = parent
        for atom in var_node.atoms:
            leaf = self._make_leaf(atom)
            node.leaves.append((atom, leaf))
            self._anchors.setdefault(atom.relation, []).append((atom, node, leaf))
        for child in var_node.children:
            node.children.append(self._build_node(child, node))

        sources = node.sources()
        joined = join_all(sources, self.ring, name=f"G_{node.variable}")
        if len(sources) > 1:
            node.guard = joined
        lift = None
        if not node.is_free:
            if not self.lifting.is_trivial(node.variable):
                lift = self.lifting.for_variable(node.variable)
        node.view = marginalize(
            joined, node.variable, self.ring, lift, name=f"V_{node.variable}"
        )
        return node

    def _make_leaf(self, atom: Atom) -> Relation:
        base = self.database[atom.relation]
        if len(atom.variables) != len(base.schema):
            raise ValueError(
                f"atom {atom} arity does not match relation "
                f"{base.schema.variables!r}"
            )
        leaf = Relation(f"leaf_{atom}", Schema(atom.variables), self.ring)
        if self._leaf_filter is None:
            leaf.data = dict(base.data)
        else:
            keep = self._leaf_filter
            leaf.data = {
                key: payload
                for key, payload in base.data.items()
                if keep(atom.relation, key)
            }
        return leaf

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    @observed
    def apply(self, update: Update, update_base: bool = True) -> None:
        """Process one single-tuple update.

        ``update_base`` also applies the update to the database relation;
        pass ``False`` when a coordinator shares one database among
        several engines and applies base updates itself.

        With compiled plans (the default) the delta runs through the
        allocation-free :meth:`~repro.viewtree.compile.DeltaPlan.push`
        kernel; otherwise — or for a relation without a plan — it falls
        back to the generic :meth:`_propagate` interpretation.
        """
        if update_base and update.relation in self.database:
            self.database[update.relation].add(update.key, update.payload)
        anchors = self._anchors.get(update.relation, ())
        plans = self._plans.get(update.relation) if self.compiled else None
        if plans is not None:
            stats = self._maintenance_stats
            kernels = self._kernels.get(update.relation)
            if kernels is None:
                kernels = (None,) * len(plans)
            for (_atom, _node, leaf), plan, kernel in zip(
                anchors, plans, kernels
            ):
                leaf.add(update.key, update.payload)
                if kernel is not None:
                    kernel.push(update.key, update.payload, stats)
                else:
                    plan.push(update.key, update.payload, stats)
        else:
            for atom, node, leaf in anchors:
                delta = Relation(f"d_{atom}", leaf.schema, self.ring)
                delta.add(update.key, update.payload)
                leaf.add(update.key, update.payload)
                self._propagate(node, delta, exclude=leaf)
        if self._maintenance_stats is not None:
            self._maybe_sample_views()

    @observed
    def apply_batch(
        self,
        batch,
        update_base: bool = True,
        rebuild_factor: float | None = None,
    ) -> None:
        """Apply a batch of single-tuple updates (three-way heuristic).

        The paper's opening observation cuts both ways: small changes are
        worth propagating, but a batch comparable to the database size is
        cheaper to *recompute*.  The heuristic, in order:

        1. **rebuild** — with ``rebuild_factor`` set, a batch larger than
           ``rebuild_factor * |leaves|`` skips propagation: updates land
           on the leaves directly and all views are rebuilt bottom-up in
           one pass (see the batch-rebuild ablation bench for the
           crossover);
        2. **compiled batch** — with compiled plans and at least
           ``batch_compile_threshold`` updates, the batch is coalesced
           (same-key deltas ring-summed, cancellations dropped) and each
           per-relation group runs through
           :meth:`~repro.viewtree.compile.DeltaPlan.push_batch` — bulk
           leaf writes, sibling probes shared across the group;
        3. **per-tuple** — otherwise, one :meth:`apply` per update (the
           generic interpretation when plans are disabled).
        """
        batch = list(batch)
        if rebuild_factor is not None:
            # Count each base relation once: a relation anchored at
            # several atoms contributes one leaf copy per atom, and
            # summing every copy inflated the crossover against batches
            # measured in distinct database tuples.
            leaf_size = sum(
                len(anchors[0][2]) for anchors in self._anchors.values()
            )
            if len(batch) >= rebuild_factor * max(leaf_size, 1):
                for update in batch:
                    if update_base and update.relation in self.database:
                        self.database[update.relation].add(
                            update.key, update.payload
                        )
                    for _atom, _node, leaf in self._anchors.get(
                        update.relation, ()
                    ):
                        leaf.add(update.key, update.payload)
                self.rebuild()
                if self._maintenance_stats is not None:
                    self.sample_view_sizes()
                return
        if self.compiled and len(batch) >= self.batch_compile_threshold:
            self._apply_batch_compiled(batch, update_base)
            return
        for update in batch:
            self.apply(update, update_base)

    def _apply_batch_compiled(self, batch, update_base: bool) -> None:
        """Coalesce the batch and push one grouped delta per anchor.

        Correctness rests on two facts.  Update batches over a ring
        commute, so ring-summing same-key deltas and regrouping by
        relation preserves the batch's cumulative effect.  And for each
        relation the anchor loop mirrors the per-tuple path at batch
        granularity — bulk leaf insert, then one :meth:`push_batch` —
        so by the telescoping identity ``Δ(L1·L2) = Δ·L2_old +
        L1_new·Δ`` the grouped pushes land exactly the summed per-tuple
        deltas (self-joins included: the anchor's own leaf is updated
        before its push and excluded from its first sibling join, while
        later anchors of the same relation see the earlier leaves'
        post-batch state, matching the per-tuple interleaving's sum).
        """
        stats = self._maintenance_stats
        if self._kernels:
            # Columnar twin of the dict path below: coalesce straight
            # into parallel key/payload lists and feed the generated
            # batch kernels; anchors whose kernel fell back to the
            # interpreted plan get the dict view built on demand.
            grouped_columnar = coalesce_columnar(batch, self.ring)
            if stats is not None:
                stats.record_batch_coalesce(
                    len(batch),
                    sum(len(keys) for keys, _ in grouped_columnar.values()),
                )
            database = self.database
            for name, (keys, pays) in grouped_columnar.items():
                if update_base and name in database:
                    database[name].add_delta(zip(keys, pays))
                plans = self._plans.get(name)
                if not plans:
                    continue
                kernels = self._kernels.get(name)
                if kernels is None:
                    kernels = (None,) * len(plans)
                deltas = None
                for (_atom, _node, leaf), plan, kernel in zip(
                    self._anchors[name], plans, kernels
                ):
                    leaf.add_delta(zip(keys, pays))
                    if kernel is not None:
                        kernel.push_batch(keys, pays, stats)
                    else:
                        if deltas is None:
                            deltas = dict(zip(keys, pays))
                        plan.push_batch(deltas, stats)
            if stats is not None:
                self._maybe_sample_views(len(batch))
            return
        grouped = coalesce_grouped(batch, self.ring)
        if stats is not None:
            stats.record_batch_coalesce(
                len(batch), sum(len(deltas) for deltas in grouped.values())
            )
        database = self.database
        for name, deltas in grouped.items():
            if update_base and name in database:
                database[name].add_delta(deltas.items())
            plans = self._plans.get(name)
            if not plans:
                continue
            for (_atom, _node, leaf), plan in zip(self._anchors[name], plans):
                leaf.add_delta(deltas.items())
                plan.push_batch(deltas, stats)
        if stats is not None:
            self._maybe_sample_views(len(batch))

    def rebuild(self) -> None:
        """Recompute every guard and view from the current leaves."""
        for root in self.roots:
            self._rebuild_node(root)

    def _rebuild_node(self, node: ViewNode) -> None:
        for child in node.children:
            self._rebuild_node(child)
        sources = node.sources()
        joined = join_all(sources, self.ring, name=f"G_{node.variable}")
        if node.guard is not None:
            node.guard.clear()
            union_into(node.guard, joined)
        lift = None
        if not node.is_free and not self.lifting.is_trivial(node.variable):
            lift = self.lifting.for_variable(node.variable)
        fresh = marginalize(
            joined, node.variable, self.ring, lift, name=f"V_{node.variable}"
        )
        node.view.clear()
        union_into(node.view, fresh)

    def _propagate(self, node: ViewNode, delta: Relation, exclude: Relation) -> None:
        """Propagate a delta from ``node`` to the root.

        ``exclude`` is the source whose change ``delta`` describes; it is
        left out of the sibling join at the first step (its new value is
        already reflected by the delta plus its pre-update contribution).
        """
        while node is not None:
            siblings = [s for s in node.sources() if s is not exclude]
            delta_guard = delta
            for sibling in siblings:
                if len(delta_guard) == 0:
                    break
                delta_guard = join_pair(delta_guard, sibling, self.ring)
            if len(delta_guard) == 0:
                return  # the change is absorbed; nothing above moves
            if node.guard is not None:
                union_into(node.guard, delta_guard)
            lift = None
            if not node.is_free and not self.lifting.is_trivial(node.variable):
                lift = self.lifting.for_variable(node.variable)
            delta_view = marginalize(delta_guard, node.variable, self.ring, lift)
            union_into(node.view, delta_view)
            stats = self._maintenance_stats
            if stats is not None:
                stats.record_delta(f"V_{node.variable}", len(delta_view))
            delta = delta_view
            exclude = node.view
            node = node.parent

    # ------------------------------------------------------------------
    # Epoch snapshots
    # ------------------------------------------------------------------

    def _snapshot_relations(self) -> Iterator[Relation]:
        """Every relation a read path can touch: views, guards, leaves."""
        for root in self.roots:
            for node in root.walk():
                yield node.view
                if node.guard is not None:
                    yield node.guard
                for _, leaf in node.leaves:
                    yield leaf

    def publish_epoch(self, record: bool = True) -> EpochSnapshot:
        """Freeze the current committed state as the next readable epoch.

        Readers started after this call (``enumerate_snapshot``,
        ``lookup_snapshot``, ``scalar_snapshot``) see exactly this state
        — bit-identical to a serialized read at this instant — no matter
        how maintenance mutates the live relations afterwards.  The swap
        is a single attribute assignment, atomic under the GIL, so a
        publish never blocks readers and readers never block maintenance;
        the cost is deferred to copy-on-write work on the write path.

        ``record`` feeds the attached recorder (``epochs_published``,
        ``cow_buckets_copied``); a shard coordinator passes ``False`` and
        records one aggregate publish itself.
        """
        if self._enum_plan is None and self.query.head and self.order.is_free_top():
            # The generic walk builds guard group-indexes lazily on first
            # enumeration; force them into existence so the snapshot
            # captures them (the snapshot path never mutates the engine).
            schedule = self._enum_schedule
            if schedule is None:
                schedule = self._enum_schedule = self._enum_schedule_specs()
            for spec in schedule:
                if spec[0]:
                    spec[2].index_on(spec[3])
        self.epoch += 1
        snap = EpochSnapshot.capture(self.epoch, self._snapshot_relations())
        self._epoch_snapshot = snap
        # The change tracker diffs against the previous snapshot on every
        # publish regardless of ``record`` — shard workers publish with
        # record=False but their subscribers still need the delta stream.
        tracker = self._change_tracker
        delta = tracker.on_publish(snap) if tracker is not None else None
        if record:
            stats = self._maintenance_stats
            if stats is not None:
                stats.record_epoch_publish(
                    snap.cow_buckets,
                    snap.cow_tables,
                    len(delta) if delta is not None else 0,
                )
                if delta is not None:
                    stats.record_change_delta(len(delta))
        return snap

    def snapshot(self) -> EpochSnapshot:
        """The last published epoch (publishing one first if none exists)."""
        snap = self._epoch_snapshot
        if snap is None:
            snap = self.publish_epoch()
        return snap

    # ------------------------------------------------------------------
    # Output change streams
    # ------------------------------------------------------------------

    @property
    def supports_changes(self) -> bool:
        """Whether per-epoch output deltas are available.

        Change extraction re-enumerates dirty patterns, so it needs the
        factorized enumeration — a free-top order — or an empty head
        (where the diff is one scalar comparison).
        """
        return not self.query.head or self.order.is_free_top()

    def track_changes(self) -> None:
        """Start emitting per-epoch output deltas (idempotent).

        Baselines at the current published snapshot (publishing one if
        none exists): ``changes_since`` answers from the next publish
        on, and anything older than the baseline is an epoch gap.
        """
        if self._change_tracker is None:
            if not self.supports_changes:
                raise TypeError(
                    f"query {self.query.name!r} has no free-top order; "
                    "output change streams are unavailable"
                )
            self._change_tracker = ChangeTracker(self)

    def changes_since(self, epoch: int) -> OutputDelta:
        """One composed output delta from ``epoch`` to the latest publish.

        Raises :class:`~repro.viewtree.changes.EpochGapError` when
        ``epoch`` predates the retained window (or tracking enablement)
        — never a silent partial delta.
        """
        self.track_changes()
        return self._change_tracker.changes_since(epoch)

    def subscribe(self, ratio_threshold: float = 0.5) -> MaterializedView:
        """Register a maintained dict materialization of the output.

        The returned :class:`~repro.viewtree.changes.MaterializedView`
        is primed with a full drain of the current epoch; each
        ``refresh()`` afterwards patches it forward in O(δ).
        """
        self.track_changes()
        return MaterializedView(self, ratio_threshold)

    def scalar_snapshot(self, snap: EpochSnapshot | None = None) -> Any:
        """:meth:`scalar` against the published epoch."""
        if self.query.head:
            raise ValueError("scalar() requires an empty-head query")
        if snap is None:
            snap = self.snapshot()
        ring = self.ring
        payload = ring.one
        for root in self.roots:
            value = snap.data_of(root.view).get((), ring.zero)
            payload = ring.mul(payload, value)
        return payload

    def enumerate_snapshot(
        self,
        prebound: dict[str, Any] | None = None,
        snap: EpochSnapshot | None = None,
    ) -> Iterator[tuple[tuple, Any]]:
        """:meth:`enumerate` against the published epoch.

        Safe to drive from any thread while maintenance runs: every probe
        resolves against the epoch's frozen dicts, never the live ones.
        """
        if snap is None:
            snap = self.snapshot()
        stats = self._maintenance_stats
        return observed_enumeration(
            stats, self._enumerate(prebound, stats, epoch=snap)
        )

    def lookup_snapshot(
        self, key: tuple, snap: EpochSnapshot | None = None
    ) -> Any:
        """:meth:`lookup` against the published epoch."""
        if snap is None:
            snap = self.snapshot()
        key = tuple(key)
        head = self.query.head
        if len(key) != len(head):
            raise ValueError(
                f"lookup key {key!r} does not match head {head!r}"
            )
        if not head:
            return self.scalar_snapshot(snap)
        stats = self._maintenance_stats
        prebound = dict(zip(head, key))
        result = self.ring.zero
        for found, payload in self._enumerate(prebound, stats, epoch=snap):
            if found == key:
                result = payload
                break
        if stats is not None:
            stats.record_point_lookup()
        return result

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------

    def scalar(self) -> Any:
        """The payload of a Boolean (empty-head) query."""
        if self.query.head:
            raise ValueError("scalar() requires an empty-head query")
        payload = self.ring.one
        for root in self.roots:
            key = tuple()
            payload = self.ring.mul(payload, root.view.get(key))
        return payload

    def enumerate(
        self, prebound: dict[str, Any] | None = None
    ) -> Iterator[tuple[tuple, Any]]:
        """Enumerate output tuples, sampling delay when stats are attached."""
        stats = self._maintenance_stats
        return observed_enumeration(stats, self._enumerate(prebound, stats))

    def lookup(self, key: tuple) -> Any:
        """Payload of one output tuple (ring zero when absent).

        Binds every head variable, so the enumeration degenerates into a
        chain of guard probes — at most one candidate per depth — and the
        iterator is abandoned after the first (unique) match.
        """
        key = tuple(key)
        head = self.query.head
        if len(key) != len(head):
            raise ValueError(
                f"lookup key {key!r} does not match head {head!r}"
            )
        if not head:
            return self.scalar()
        stats = self._maintenance_stats
        prebound = dict(zip(head, key))
        result = self.ring.zero
        for found, payload in self._enumerate(prebound, stats):
            if found == key:
                result = payload
                break
        if stats is not None:
            stats.record_point_lookup()
        return result

    def _enumerate(
        self,
        prebound: dict[str, Any] | None = None,
        stats=None,
        epoch: EpochSnapshot | None = None,
    ) -> Iterator[tuple[tuple, Any]]:
        """Dispatch to the compiled kernel or the generic recursive walk.

        ``stats`` feeds the kernel's structural read-path counters
        (``enum_compiled``, guard probes); internal materializations pass
        ``None`` so they leave no trace in an attached recorder.

        ``epoch`` redirects every probe to a published
        :class:`EpochSnapshot` instead of the live relations (the
        snapshot-read path).
        """
        kernel = self._enum_kernel
        if kernel is not None:
            return kernel.iterate(prebound, stats, epoch=epoch)
        plan = self._enum_plan
        if plan is not None:
            return plan.iterate(prebound, stats, epoch=epoch)
        return self._enumerate_generic(prebound, epoch=epoch)

    def _enum_schedule_specs(self) -> list[tuple]:
        """Flatten the enumeration walk for the generic fallback.

        The recursion's ``children + rest`` continuation is data
        independent, so the node sequence — with per-node guard,
        group-variable, and leaf specs — is computed once instead of per
        candidate (the schema position lookups and list concatenations
        dominated the old generic profile).
        """
        specs: list[tuple] = []
        for is_free, node in _flatten(self.roots):
            if not is_free:
                specs.append((False, node.view, node.view.schema.variables))
                continue
            guard = node.guard_relation()
            guard_vars = guard.schema.variables
            specs.append(
                (
                    True,
                    node.variable,
                    guard,
                    tuple(v for v in guard_vars if v != node.variable),
                    guard.schema.position(node.variable),
                    guard_vars,
                    tuple((leaf, atom.variables) for atom, leaf in node.leaves),
                )
            )
        return specs

    def _enumerate_generic(
        self,
        prebound: dict[str, Any] | None = None,
        epoch: EpochSnapshot | None = None,
    ) -> Iterator[tuple[tuple, Any]]:
        """Enumerate output tuples (key over the head, payload).

        Requires a free-top variable order; for q-hierarchical queries
        under the canonical order the delay between consecutive tuples is
        constant (Theorem 4.1, Example 4.4).

        ``prebound`` fixes values for some free variables — used for CQAP
        access requests (Section 4.3), where the input variables sit above
        the output variables in the order and arrive bound: instead of
        iterating a node's candidates, the engine checks the given value
        with one guard lookup.

        With ``epoch`` set, every probe reads the snapshot's frozen dicts
        (raw probes, no op accounting) instead of the live relations.
        """
        if not self.order.is_free_top():
            raise ValueError(
                f"variable order for {self.query.name} is not free-top; "
                "factorized enumeration is unavailable"
            )
        ring = self.ring
        zero = ring.zero
        head = self.query.head
        prebound = prebound or {}
        binding: dict[str, Any] = {}
        schedule = self._enum_schedule
        if schedule is None:
            schedule = self._enum_schedule = self._enum_schedule_specs()
        nsteps = len(schedule)
        # Per-step frozen dicts when reading an epoch, resolved up front
        # so a publish racing with this generator cannot mix epochs.
        resolved: list[tuple] | None = None
        if epoch is not None:
            resolved = []
            for spec in schedule:
                if not spec[0]:
                    resolved.append((epoch.data_of(spec[1]),))
                else:
                    guard, group_vars = spec[2], spec[3]
                    resolved.append(
                        (
                            epoch.data_of(guard),
                            epoch.groups_of(guard, group_vars),
                            tuple(
                                epoch.data_of(leaf) for leaf, _ in spec[6]
                            ),
                        )
                    )

        def rec(i: int, payload: Any) -> Iterator[tuple[tuple, Any]]:
            if ring.is_zero(payload):
                return
            if i == nsteps:
                yield tuple(binding[v] for v in head), payload
                return
            spec = schedule[i]
            if not spec[0]:
                # A fully-bound subtree contributes its view value.
                _, view, view_vars = spec
                key = tuple(binding[v] for v in view_vars)
                if resolved is None:
                    value = view.get(key)
                else:
                    value = resolved[i][0].get(key, zero)
                yield from rec(i + 1, ring.mul(payload, value))
                return
            _, variable, guard, group_vars, var_pos, guard_vars, leaf_specs = spec
            if variable in prebound:
                # Access-pattern lookup: verify the given value instead of
                # iterating candidates (one O(1) guard probe).
                binding[variable] = prebound[variable]
                probe = tuple(binding[v] for v in guard_vars)
                if resolved is None:
                    candidates = [] if ring.is_zero(guard.get(probe)) else [probe]
                else:
                    # Stored payloads are non-zero by construction, so
                    # membership alone decides the probe.
                    candidates = [probe] if probe in resolved[i][0] else []
            else:
                group_key = tuple(binding[v] for v in group_vars)
                if resolved is None:
                    candidates = guard.group(group_vars, group_key)
                else:
                    candidates = resolved[i][1].get(group_key, ())
            leaf_datas = resolved[i][2] if resolved is not None else None
            for key in candidates:
                binding[variable] = key[var_pos]
                factor = ring.one
                ok = True
                for j, (leaf, leaf_vars) in enumerate(leaf_specs):
                    if leaf_datas is None:
                        value = leaf.get(tuple(binding[v] for v in leaf_vars))
                    else:
                        value = leaf_datas[j].get(
                            tuple(binding[v] for v in leaf_vars), zero
                        )
                    if ring.is_zero(value):
                        ok = False
                        break
                    factor = ring.mul(factor, value)
                if ok:
                    yield from rec(i + 1, ring.mul(payload, factor))

        if not head:
            payload = (
                self.scalar() if epoch is None else self.scalar_snapshot(epoch)
            )
            if not ring.is_zero(payload):
                yield (), payload
            return
        yield from rec(0, ring.one)

    def output_relation(self, name: str | None = None) -> Relation:
        """Materialize the output (mainly for tests and small results).

        Runs through the *unobserved* internal iterator: materialization
        is not an enumeration request, so it must not inject phantom
        ``enum_delay`` samples into an attached recorder.
        """
        out = Relation(name or self.query.name, Schema(self.query.head), self.ring)
        for key, payload in self._enumerate():
            out.add(key, payload)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_view_size(self) -> int:
        """Number of entries across all materialized views and guards."""
        total = 0
        for root in self.roots:
            for node in root.walk():
                total += len(node.view)
                if node.guard is not None:
                    total += len(node.guard)
                for _, leaf in node.leaves:
                    total += len(leaf)
        return total

    def sample_view_sizes(self, stats=None) -> None:
        """Record one memory sample into ``stats`` (default: attached).

        Samples :meth:`total_view_size` plus the size of every node view
        and guard — the space side of the IVM trade-off, exported under
        ``memory`` in the ``repro.obs/1`` payload.
        """
        stats = stats if stats is not None else self._maintenance_stats
        if stats is None:
            return
        per_view: dict[str, int] = {}
        total = 0
        for root in self.roots:
            for node in root.walk():
                size = len(node.view)
                per_view[f"V_{node.variable}"] = size
                total += size
                if node.guard is not None:
                    size = len(node.guard)
                    per_view[f"G_{node.variable}"] = size
                    total += size
                for _, leaf in node.leaves:
                    total += len(leaf)
        stats.record_view_sizes(total, per_view)

    def _maybe_sample_views(self, count: int = 1) -> None:
        """Periodic memory sampling: every ``view_sample_interval`` updates.

        ``count`` credits several logical updates at once — the batch
        kernel samples once per batch, not per update.
        """
        interval = self.view_sample_interval
        if not interval:
            return
        self._updates_since_sample += count
        if self._updates_since_sample >= interval:
            self._updates_since_sample = 0
            self.sample_view_sizes()

    def describe(self) -> str:
        """ASCII rendering of the view tree with sizes."""
        lines: list[str] = []

        def visit(node: ViewNode, depth: int) -> None:
            pad = "  " * depth
            dep = ", ".join(node.view.schema.variables)
            marker = "*" if node.is_free else ""
            lines.append(
                f"{pad}V_{node.variable}{marker}({dep}) size={len(node.view)}"
                + (f" guard={len(node.guard)}" if node.guard is not None else "")
            )
            for atom, leaf in node.leaves:
                lines.append(f"{pad}  leaf {atom} size={len(leaf)}")
            for child in node.children:
                visit(child, depth + 1)

        for root in self.roots:
            visit(root, 0)
        return "\n".join(lines)
