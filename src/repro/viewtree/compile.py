"""Compiled delta-propagation kernels for the view-tree hot path.

The generic maintenance path (:meth:`ViewTreeEngine._propagate`) is
already asymptotically optimal — for q-hierarchical queries under their
canonical order, a single-tuple update is a constant number of hash
operations (Theorem 4.1) — but it pays a large *constant* for that bound:
every update allocates a fresh delta :class:`~repro.data.relation.Relation`,
and every propagation step re-derives output schemas, projector closures,
join-key assembly plans, and sibling orders inside ``join_pair`` and
``marginalize``, all of which depend only on the *query*, never on the
update.

This module moves all of that work to engine construction.  For every
(base relation, anchor) pair, :func:`compile_delta_plans` walks the
leaf-to-root path once and records, per node:

* the sibling relations joined at the node (resolved object references,
  in the exact order the generic path would join them),
* for each sibling join, the probe mode and the precomputed position
  tuples — where the shared variables sit in the flowing delta key, how
  to assemble the output key from the delta key and a matching sibling
  key, and (when the sibling is probed through a group index) the
  resolved :class:`~repro.data.relation.GroupIndex` itself,
* the position plans projecting the joined delta onto the node's guard
  and view schemas,
* the resolved lifting callable (or ``None`` for trivial COUNT lifting)
  and the position of the marginalized variable,
* pre-bound ring operations.

:meth:`DeltaPlan.push` then propagates a single-tuple delta as a plain
``{key: payload}`` dict through straight-line probe/multiply/accumulate
loops: **zero Relation allocations and zero schema re-derivation** per
update.  Only the terminal accumulation into each view/guard goes through
:meth:`Relation.add`, which keeps zero-elimination, group-index
maintenance, and write accounting exactly as the generic path leaves
them.

Why this preserves Theorem 4.1's O(1) bound while cutting the constant:
the kernel executes the *same* probe sequence as the generic path — for a
q-hierarchical query under the canonical order, each sibling join is a
constant number of hash probes (the sibling's schema is contained in the
delta's, so the join is one ``dict.get``), and each marginalization
shrinks the delta key by one position.  Nothing about the asymptotics
changes; what disappears is the per-update interpretation overhead (on
the order of a dozen object allocations and closure constructions per
propagation step), which benchmarks show is worth >2x single-tuple apply
throughput (``benchmarks/bench_delta_kernel.py``).  For non-q-hierarchical
queries the kernel degrades exactly as the generic path does: group-index
probes enumerate the same matching sets, so update cost stays
proportional to the number of affected view entries.

Elementary-operation accounting: probes and per-match enumeration steps
are counted in bulk — one ``COUNTER.bump(kind, n)`` per push instead of
one call per operation — so COUNTER-based complexity assertions see the
same asymptotic shape at a fraction of the bookkeeping cost.

Batch execution: :meth:`DeltaPlan.push_batch` runs a whole *coalesced*
batch group (one ``{key: payload}`` delta per base relation, same-key
updates ring-summed and cancelled upstream) through the same compiled
path.  On top of the per-tuple kernel's savings it shares sibling probes
across the group — each sibling is probed once per distinct join key,
memoized in a per-join cache — and lands every step's aggregated delta
on its guard/view through one bulk
:meth:`~repro.data.relation.Relation.add_delta` write.
:meth:`ViewTreeEngine.apply_batch` routes batches here under its
three-way heuristic (compiled-batch / per-tuple / rebuild).

Everything stored here is positions, relation references, named
callables, and ring singletons, so compiled plans pickle with their
engine — the process-pool shard executor ships compiled engines whole,
and the pickle memo preserves the identity between a plan's relation
references and the view tree's own.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Any, Optional

from ..data.opcounter import COUNTER
from ..data.relation import GroupIndex, Relation
from ..rings.base import Semiring

#: Sibling probe modes.
DIRECT = 0  #: sibling schema is contained in the delta schema: one dict.get
INDEXED = 1  #: probe the sibling's group index on the shared variables
CROSS = 2  #: no shared variables: cross product with every sibling entry

#: Probe-cache miss sentinel for :meth:`DeltaPlan.push_batch` — ``None``
#: is a legitimate cached result (an absent sibling entry/bucket).
_MISS = object()


def _tuple_getter(positions: tuple[int, ...]):
    """A ``key -> projected tuple`` callable for a position tuple.

    ``operator.itemgetter`` (C speed) for two or more positions; small
    closures for the one- and zero-position cases, where itemgetter
    would return a bare element instead of a tuple.  Getters are built
    per :meth:`DeltaPlan.push_batch` call and never stored on the plan,
    which must stay picklable for the process-pool shard executor.
    """
    if len(positions) >= 2:
        return itemgetter(*positions)
    if positions:
        index = positions[0]
        return lambda key: (key[index],)
    return lambda key: ()


class SiblingJoin:
    """One precompiled sibling join: probe plan + output-key assembly."""

    __slots__ = ("relation", "mode", "probe_positions", "extend_positions", "index")

    def __init__(
        self,
        relation: Relation,
        mode: int,
        probe_positions: tuple[int, ...],
        extend_positions: tuple[int, ...],
        index: Optional[GroupIndex],
    ):
        self.relation = relation
        self.mode = mode
        #: Positions in the flowing delta key holding the shared variables
        #: (in the sibling's schema order — the group index key order).
        self.probe_positions = probe_positions
        #: Positions in the sibling key holding its new variables, which
        #: extend the delta key on a match.
        self.extend_positions = extend_positions
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = ("direct", "indexed", "cross")[self.mode]
        return f"SiblingJoin({self.relation.name!r}, {mode})"


class PlanStep:
    """One node of the leaf-to-root path, fully resolved."""

    __slots__ = (
        "variable",
        "view_label",
        "siblings",
        "guard",
        "guard_positions",
        "view",
        "out_positions",
        "lift",
        "lift_position",
    )

    def __init__(
        self,
        variable: str,
        siblings: tuple[SiblingJoin, ...],
        guard: Optional[Relation],
        guard_positions: tuple[int, ...],
        view: Relation,
        out_positions: tuple[int, ...],
        lift,
        lift_position: int,
    ):
        self.variable = variable
        self.view_label = f"V_{variable}"
        self.siblings = siblings
        self.guard = guard
        self.guard_positions = guard_positions
        self.view = view
        #: Positions in the joined delta key for the view's schema order.
        self.out_positions = out_positions
        self.lift = lift
        self.lift_position = lift_position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlanStep({self.variable!r}, siblings={len(self.siblings)}, "
            f"guard={self.guard is not None})"
        )


class DeltaPlan:
    """The compiled leaf-to-root propagation path for one anchor."""

    __slots__ = ("relation_name", "leaf", "steps", "ring")

    def __init__(
        self,
        relation_name: str,
        leaf: Relation,
        steps: tuple[PlanStep, ...],
        ring: Semiring,
    ):
        self.relation_name = relation_name
        self.leaf = leaf
        self.steps = steps
        self.ring = ring

    def push(self, key: tuple, payload: Any, stats=None) -> None:
        """Propagate one single-tuple delta along the compiled path.

        Mirrors :meth:`ViewTreeEngine._propagate` exactly — same sibling
        order, same early exits, same per-view delta-size samples into
        ``stats`` — but runs on plain dicts and precomputed positions.
        """
        ring = self.ring
        if ring.is_zero(payload):
            return
        mul = ring.mul
        add = ring.add
        is_zero = ring.is_zero
        delta: dict[tuple, Any] = {key: payload}
        lookups = 0
        matches = 0
        try:
            for step in self.steps:
                for join in step.siblings:
                    if not delta:
                        break
                    data = join.relation.data
                    mode = join.mode
                    out: dict[tuple, Any] = {}
                    if mode == DIRECT:
                        positions = join.probe_positions
                        lookups += len(delta)
                        for dkey, dpayload in delta.items():
                            other = data.get(tuple(dkey[i] for i in positions))
                            if other is None:
                                continue
                            product = mul(dpayload, other)
                            if not is_zero(product):
                                out[dkey] = product
                    elif mode == INDEXED:
                        positions = join.probe_positions
                        extend = join.extend_positions
                        groups = join.index.groups
                        lookups += len(delta)
                        for dkey, dpayload in delta.items():
                            bucket = groups.get(
                                tuple(dkey[i] for i in positions)
                            )
                            if not bucket:
                                continue
                            matches += len(bucket)
                            for skey in bucket:
                                product = mul(dpayload, data[skey])
                                if is_zero(product):
                                    continue
                                out[
                                    dkey + tuple(skey[i] for i in extend)
                                ] = product
                    else:  # CROSS
                        extend = join.extend_positions
                        matches += len(data) * len(delta)
                        for dkey, dpayload in delta.items():
                            for skey, spayload in data.items():
                                product = mul(dpayload, spayload)
                                if is_zero(product):
                                    continue
                                out[
                                    dkey + tuple(skey[i] for i in extend)
                                ] = product
                    delta = out
                if not delta:
                    return
                guard = step.guard
                if guard is not None:
                    positions = step.guard_positions
                    for dkey, dpayload in delta.items():
                        guard.add(
                            tuple(dkey[i] for i in positions), dpayload
                        )
                # Marginalize the node variable: aggregate onto the view
                # schema, dropping entries that cancel to the ring zero.
                positions = step.out_positions
                lift = step.lift
                aggregated: dict[tuple, Any] = {}
                if lift is None:
                    for dkey, dpayload in delta.items():
                        okey = tuple(dkey[i] for i in positions)
                        previous = aggregated.get(okey)
                        aggregated[okey] = (
                            dpayload
                            if previous is None
                            else add(previous, dpayload)
                        )
                else:
                    lift_position = step.lift_position
                    for dkey, dpayload in delta.items():
                        okey = tuple(dkey[i] for i in positions)
                        lifted = mul(dpayload, lift(dkey[lift_position]))
                        previous = aggregated.get(okey)
                        aggregated[okey] = (
                            lifted
                            if previous is None
                            else add(previous, lifted)
                        )
                view = step.view
                delta = {}
                for okey, opayload in aggregated.items():
                    if is_zero(opayload):
                        continue
                    view.add(okey, opayload)
                    delta[okey] = opayload
                if stats is not None:
                    stats.record_delta(step.view_label, len(delta))
                if not delta:
                    return
        finally:
            if COUNTER.enabled:
                if lookups:
                    COUNTER.bump("lookup", lookups)
                if matches:
                    COUNTER.bump("enum", matches)

    def push_batch(self, delta: dict, stats=None) -> None:
        """Propagate one *coalesced* multi-tuple delta along the path.

        ``delta`` maps key tuples to non-zero ring payloads — the
        per-relation group a batch coalesces to (see
        :func:`repro.data.update.coalesce_grouped`).  The propagation is
        exactly :meth:`push` lifted to a dict of deltas, so the batch
        equals the telescoped sum of its per-tuple pushes, with two batch
        fusions on top:

        * **shared sibling probes** — each sibling is probed once per
          *distinct* join key across the whole delta, not once per
          update.  A probe cache per sibling join memoizes the payload
          (DIRECT) or the index bucket (INDEXED); repeated join keys —
          the common case under skew — hit the cache instead of the
          relation.  Cache hits are *not* counted as elementary lookups:
          ``COUNTER`` sees only the probes actually issued, which is the
          point (the saved probes are reported to ``stats`` instead).
        * **fused view writes** — each step's aggregated delta lands on
          the guard/view through one bulk
          :meth:`~repro.data.relation.Relation.add_delta` pass instead
          of one :meth:`~repro.data.relation.Relation.add` call per
          entry.

        Output keys never collide across the batch: every delta key has
        the step's full schema, so two distinct keys extend to distinct
        joined keys and the single-tuple assignment logic carries over;
        only the marginalization (which drops a position) aggregates.
        """
        if not delta:
            return
        ring = self.ring
        mul = ring.mul
        add = ring.add
        is_zero = ring.is_zero
        # Inline the zero test for exact-zero rings: ``!= zero`` is one
        # C-level comparison where ``is_zero`` is a Python call per
        # payload — on the integer ring that call dominates otherwise.
        exact = ring.exact_zero
        zero = ring.zero
        lookups = 0
        matches = 0
        shared = 0
        miss = _MISS
        try:
            for step in self.steps:
                for join in step.siblings:
                    if not delta:
                        break
                    data = join.relation.data
                    mode = join.mode
                    out: dict[tuple, Any] = {}
                    if mode == DIRECT:
                        probe_of = _tuple_getter(join.probe_positions)
                        cache: dict[tuple, Any] = {}
                        for dkey, dpayload in delta.items():
                            probe = probe_of(dkey)
                            other = cache.get(probe, miss)
                            if other is miss:
                                lookups += 1
                                other = data.get(probe)
                                cache[probe] = other
                            else:
                                shared += 1
                            if other is None:
                                continue
                            product = mul(dpayload, other)
                            if (
                                (product != zero)
                                if exact
                                else not is_zero(product)
                            ):
                                out[dkey] = product
                    elif mode == INDEXED:
                        probe_of = _tuple_getter(join.probe_positions)
                        extend_of = _tuple_getter(join.extend_positions)
                        groups = join.index.groups
                        cache = {}
                        for dkey, dpayload in delta.items():
                            probe = probe_of(dkey)
                            bucket = cache.get(probe, miss)
                            if bucket is miss:
                                lookups += 1
                                bucket = groups.get(probe)
                                cache[probe] = bucket
                            else:
                                shared += 1
                            if not bucket:
                                continue
                            matches += len(bucket)
                            for skey in bucket:
                                product = mul(dpayload, data[skey])
                                if (
                                    (product == zero)
                                    if exact
                                    else is_zero(product)
                                ):
                                    continue
                                out[dkey + extend_of(skey)] = product
                    else:  # CROSS
                        extend_of = _tuple_getter(join.extend_positions)
                        matches += len(data) * len(delta)
                        entries = list(data.items())
                        for dkey, dpayload in delta.items():
                            for skey, spayload in entries:
                                product = mul(dpayload, spayload)
                                if (
                                    (product == zero)
                                    if exact
                                    else is_zero(product)
                                ):
                                    continue
                                out[dkey + extend_of(skey)] = product
                    delta = out
                if not delta:
                    return
                guard = step.guard
                if guard is not None:
                    guard_of = _tuple_getter(step.guard_positions)
                    guard.add_delta(
                        (guard_of(dkey), dpayload)
                        for dkey, dpayload in delta.items()
                    )
                out_of = _tuple_getter(step.out_positions)
                lift = step.lift
                aggregated: dict[tuple, Any] = {}
                if lift is None:
                    for dkey, dpayload in delta.items():
                        okey = out_of(dkey)
                        previous = aggregated.get(okey)
                        aggregated[okey] = (
                            dpayload
                            if previous is None
                            else add(previous, dpayload)
                        )
                else:
                    lift_position = step.lift_position
                    for dkey, dpayload in delta.items():
                        okey = out_of(dkey)
                        lifted = mul(dpayload, lift(dkey[lift_position]))
                        previous = aggregated.get(okey)
                        aggregated[okey] = (
                            lifted
                            if previous is None
                            else add(previous, lifted)
                        )
                if exact:
                    delta = {
                        okey: opayload
                        for okey, opayload in aggregated.items()
                        if opayload != zero
                    }
                else:
                    delta = {
                        okey: opayload
                        for okey, opayload in aggregated.items()
                        if not is_zero(opayload)
                    }
                if delta:
                    step.view.add_delta(delta.items())
                if stats is not None:
                    stats.record_delta(step.view_label, len(delta))
                if not delta:
                    return
        finally:
            if COUNTER.enabled:
                if lookups:
                    COUNTER.bump("lookup", lookups)
                if matches:
                    COUNTER.bump("enum", matches)
            if stats is not None and (lookups or shared):
                stats.record_probe_sharing(lookups, shared)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaPlan({self.relation_name!r}, steps={len(self.steps)})"
        )


def _compile_sibling(
    in_vars: tuple[str, ...], sibling: Relation
) -> tuple[SiblingJoin, tuple[str, ...]]:
    """Compile one sibling join against a delta over ``in_vars``.

    Returns the join plus the delta's variable tuple after the join —
    ``in_vars`` followed by the sibling's new variables in its schema
    order, matching ``join_pair``'s ``left.union(right)`` output schema.
    """
    sibling_vars = sibling.schema.variables
    in_positions = {v: i for i, v in enumerate(in_vars)}
    shared = tuple(v for v in sibling_vars if v in in_positions)
    new_vars = tuple(v for v in sibling_vars if v not in in_positions)
    out_vars = in_vars + new_vars
    if not shared:
        extend = tuple(range(len(sibling_vars)))
        return SiblingJoin(sibling, CROSS, (), extend, None), out_vars
    probe_positions = tuple(in_positions[v] for v in shared)
    if not new_vars:
        return SiblingJoin(sibling, DIRECT, probe_positions, (), None), in_vars
    index = sibling.index_on(shared)
    extend = sibling.schema.positions(new_vars)
    return (
        SiblingJoin(sibling, INDEXED, probe_positions, extend, index),
        out_vars,
    )


def compile_anchor_plan(engine, atom, node, leaf) -> DeltaPlan:
    """Compile the full leaf-to-root path for one anchored atom."""
    ring = engine.ring
    lifting = engine.lifting
    steps: list[PlanStep] = []
    delta_vars: tuple[str, ...] = atom.variables
    exclude: Relation = leaf
    current = node
    while current is not None:
        siblings = []
        for source in current.sources():
            if source is exclude:
                continue
            join, delta_vars = _compile_sibling(delta_vars, source)
            siblings.append(join)
        delta_positions = {v: i for i, v in enumerate(delta_vars)}
        guard = current.guard
        guard_positions = (
            tuple(delta_positions[v] for v in guard.schema.variables)
            if guard is not None
            else ()
        )
        view = current.view
        out_positions = tuple(
            delta_positions[v] for v in view.schema.variables
        )
        lift = None
        if not current.is_free and not lifting.is_trivial(current.variable):
            lift = lifting.for_variable(current.variable)
        steps.append(
            PlanStep(
                current.variable,
                tuple(siblings),
                guard,
                guard_positions,
                view,
                out_positions,
                lift,
                delta_positions[current.variable],
            )
        )
        delta_vars = view.schema.variables
        exclude = view
        current = current.parent
    return DeltaPlan(atom.relation, leaf, tuple(steps), ring)


def compile_delta_plans(engine) -> dict[str, list[DeltaPlan]]:
    """Compile one :class:`DeltaPlan` per (base relation, anchor) pair.

    The result maps a base relation name to the plans of its anchors, in
    the same order as ``engine._anchors[name]`` — ``apply()`` zips the
    two, so an update's leaf insert and its compiled propagation stay in
    lock-step with the generic path's anchor loop.
    """
    plans: dict[str, list[DeltaPlan]] = {}
    for name, anchors in engine._anchors.items():
        plans[name] = [
            compile_anchor_plan(engine, atom, node, leaf)
            for atom, node, leaf in anchors
        ]
    return plans
