"""Per-epoch output change streams: O(δ) maintained reads.

IVM's founding bargain (PAPER.md §3–§4) is that consumers pay for
*changes*, not recomputation — yet a full materialization
(``output_relation`` / ``enumerate_snapshot``) re-drains the whole
output in O(view size) even when a commit touched a handful of tuples.
This module closes that gap at the serving boundary: after each
``publish_epoch()`` the engine diffs the new snapshot against the
previous one and emits a compact :class:`OutputDelta` —
``(epoch_from, epoch_to, [(key, old_payload, new_payload)])`` — that a
:class:`MaterializedView` subscriber applies in O(δ).

**Change oracle.** Bucket-level COW alone cannot name the changed keys
(an emptied index bucket is discarded from the owned set, and
payload-only updates never touch indexes), so tracked relations record
the *keys* of their writes (:meth:`Relation.track_dirty` — a single
``None`` test per write when disabled).  Only the relations the
enumeration actually reads are tracked: free-node guards and leaves,
and the boundary views of non-free subtrees.  In a free-top order every
one of those has schema ⊆ head, so a dirty key *is* a pattern over head
variables: any output tuple whose enumeration changed must project onto
some dirty key, and re-enumerating both snapshots under each pattern
(``prebound`` probes, O(1) per step) yields exactly the changed region.
Untouched patterns enumerate identically on both sides and are never
visited.  Empty-head queries shortcut to an O(1) scalar comparison.

**Retention.** Per-epoch deltas live in a window of
:data:`RETAIN_EPOCHS` (matching the shard workers' snapshot window);
``changes_since`` composes them and raises :class:`EpochGapError` for
anything older — never a silent partial delta.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Iterator

try:  # pragma: no cover - exercised indirectly via the encoders
    import numpy as _np
except Exception:  # pragma: no cover - numpy is baked into CI images
    _np = None

#: How many per-epoch deltas stay addressable.  Deliberately equal to
#: the shard workers' snapshot window (`repro.shard.worker` imports
#: this), so a subscriber that can catch up on a local engine can catch
#: up on a sharded one too.
RETAIN_EPOCHS = 4


class EpochGapError(RuntimeError):
    """Changes requested from an epoch outside the retained window.

    Raised instead of returning a partial delta; consumers
    (:class:`MaterializedView`) fall back to a full drain.
    """


class OutputDelta:
    """The output view's change between two published epochs.

    ``entries`` is a list of ``(key, old_payload, new_payload)`` with
    ``None`` meaning *absent*: an insert is ``(k, None, p)``, a delete
    ``(k, p, None)``, an update ``(k, p, p')``.  Payloads are the exact
    objects the two snapshots enumerate, so applying a delta stream to a
    stale materialization is bit-identical to a fresh drain (floats
    included — patches set absolute values, they never re-add).
    """

    __slots__ = ("epoch_from", "epoch_to", "entries")

    def __init__(
        self,
        epoch_from: int,
        epoch_to: int,
        entries: list[tuple[tuple, Any, Any]],
    ):
        self.epoch_from = epoch_from
        self.epoch_to = epoch_to
        self.entries = entries

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[tuple[tuple, Any, Any]]:
        return iter(self.entries)

    def apply_to(self, state: dict) -> None:
        """Patch a dict materialization to this delta's ``epoch_to``.

        Set-to-absolute semantics: values are overwritten, absences
        deleted.  Applying to a state that already reflects part of a
        *later* epoch still converges (every key that moved is in some
        retained delta), which is what makes the full-refresh epoch
        bookkeeping race-free under concurrent publishes.
        """
        pop = state.pop
        for key, _old, new in self.entries:
            if new is None:
                pop(key, None)
            else:
                state[key] = new

    def __repr__(self) -> str:
        return (
            f"OutputDelta({self.epoch_from}->{self.epoch_to}, "
            f"{len(self.entries)} entries)"
        )


def compose_deltas(
    deltas: list[OutputDelta], epoch_from: int, epoch_to: int
) -> OutputDelta:
    """Collapse consecutive per-epoch deltas into one.

    Per key: the *old* payload comes from the first delta mentioning it,
    the *new* from the last; keys that round-trip back to their original
    payload drop out entirely.
    """
    old_of: dict[tuple, Any] = {}
    new_of: dict[tuple, Any] = {}
    for delta in deltas:
        for key, old, new in delta.entries:
            if key not in old_of:
                old_of[key] = old
            new_of[key] = new
    entries = [
        (key, old_of[key], new)
        for key, new in new_of.items()
        if old_of[key] != new
    ]
    return OutputDelta(epoch_from, epoch_to, entries)


# ----------------------------------------------------------------------
# Ring-aware wire encoding (shard worker CHANGES command, feeds)
# ----------------------------------------------------------------------


def encode_delta(delta: OutputDelta, ring) -> tuple:
    """Encode a delta for the pipe, columnar like ``encode_batch``.

    For rings with a ``numeric_dtype`` the old/new payload columns ship
    as raw numpy bytes with ``0`` as the *absent* sentinel — sound
    because stored payloads are never ring-zero (``Relation`` removes
    cancelled entries), so ``0`` can't collide with a real payload.
    Everything else ships plain Python columns.
    """
    entries = delta.entries
    keys = [entry[0] for entry in entries]
    if _np is not None and ring.numeric_dtype is not None:
        dtype = ring.numeric_dtype
        olds = _np.asarray(
            [0 if entry[1] is None else entry[1] for entry in entries],
            dtype=dtype,
        ).tobytes()
        news = _np.asarray(
            [0 if entry[2] is None else entry[2] for entry in entries],
            dtype=dtype,
        ).tobytes()
        return (delta.epoch_from, delta.epoch_to, "np", keys, olds, news)
    olds_py = [entry[1] for entry in entries]
    news_py = [entry[2] for entry in entries]
    return (delta.epoch_from, delta.epoch_to, "py", keys, olds_py, news_py)


def decode_delta(wire: tuple, ring) -> OutputDelta:
    """Decode :func:`encode_delta` output (bit-identical payloads)."""
    epoch_from, epoch_to, tag, keys, olds, news = wire
    if tag == "np":
        if _np is None:  # pragma: no cover - symmetric container
            raise RuntimeError(
                "numpy-encoded delta received without numpy available"
            )
        dtype = ring.numeric_dtype
        old_col = _np.frombuffer(olds, dtype=dtype).tolist()
        new_col = _np.frombuffer(news, dtype=dtype).tolist()
        entries = [
            (key, old if old else None, new if new else None)
            for key, old, new in zip(keys, old_col, new_col)
        ]
    else:
        entries = list(zip(keys, olds, news))
    return OutputDelta(epoch_from, epoch_to, entries)


def wire_size(wire: tuple) -> int:
    """Approximate payload bytes of an encoded delta (obs accounting)."""
    _f, _t, tag, keys, olds, news = wire
    if tag == "np":
        return len(olds) + len(news) + 16 * len(keys)
    return 48 * len(keys)


# ----------------------------------------------------------------------
# Retained per-epoch delta window (shared by engine + shard trackers)
# ----------------------------------------------------------------------


class DeltaWindow:
    """A bounded, contiguous window of per-epoch output deltas.

    Mutations and reads may come from different threads (the serve
    tier publishes on its commit worker thread while the event loop
    composes catch-up deltas), so the deque is guarded by a lock.
    """

    def __init__(self, baseline_epoch: int, retain: int = RETAIN_EPOCHS):
        #: Epoch the window starts at: ``changes_since(baseline)`` is
        #: answerable (possibly empty), anything older is a gap.
        self.baseline = baseline_epoch
        self.epoch = baseline_epoch
        self._deltas: deque[OutputDelta] = deque(maxlen=retain)
        self._lock = threading.Lock()

    def append(self, delta: OutputDelta) -> None:
        with self._lock:
            if delta.epoch_from != self.epoch:
                raise ValueError(
                    f"non-contiguous delta "
                    f"{delta.epoch_from}->{delta.epoch_to} "
                    f"appended at epoch {self.epoch}"
                )
            self._deltas.append(delta)
            self.epoch = delta.epoch_to

    def reset(self, baseline_epoch: int) -> None:
        """Restart the window (pool rebuilds): older epochs become gaps."""
        with self._lock:
            self.baseline = baseline_epoch
            self.epoch = baseline_epoch
            self._deltas.clear()

    def changes_since(self, epoch: int) -> OutputDelta:
        """One composed delta from ``epoch`` to the window's newest.

        Raises :class:`EpochGapError` when ``epoch`` predates the
        window, ``ValueError`` when it lies in the future.
        """
        with self._lock:
            if epoch > self.epoch:
                raise ValueError(
                    f"epoch {epoch} not published yet (at {self.epoch})"
                )
            if epoch == self.epoch:
                return OutputDelta(epoch, epoch, [])
            selected = [d for d in self._deltas if d.epoch_from >= epoch]
            if not selected or selected[0].epoch_from != epoch:
                raise EpochGapError(
                    f"epoch {epoch} is outside the retained change window "
                    f"(oldest available: "
                    f"{selected[0].epoch_from if selected else self.epoch})"
                )
            return compose_deltas(selected, epoch, self.epoch)


# ----------------------------------------------------------------------
# Engine-side tracker
# ----------------------------------------------------------------------


class ChangeTracker:
    """Maintains a :class:`DeltaWindow` for one ``ViewTreeEngine``.

    Created lazily by ``ViewTreeEngine.track_changes()``: enables
    dirty-key recording on exactly the relations enumeration reads and
    baselines at the engine's current published snapshot.  On every
    subsequent publish, :meth:`on_publish` drains the dirty sets into
    patterns, re-enumerates both snapshots under each pattern, and
    appends the resulting per-epoch delta.
    """

    def __init__(self, engine):
        self.engine = engine
        # Baseline at a *fresh* publish, not the last one: writes that
        # landed after the previous publish are not in any dirty set, so
        # an older baseline would silently under-report the next delta.
        # record=False: enabling tracking is not an application-level
        # epoch publish (keeps `epochs_published == commits + 1` for
        # the serve tier).
        snap = engine.publish_epoch(record=False)
        head = engine.query.head
        self.tracked: list = []
        if head:
            seen: dict[int, Any] = {}
            schedule = engine._enum_schedule
            if schedule is None:
                schedule = engine._enum_schedule = (
                    engine._enum_schedule_specs()
                )
            head_set = set(head)
            for spec in schedule:
                rels = (
                    [spec[1]]
                    if not spec[0]
                    else [spec[2], *(leaf for leaf, _ in spec[6])]
                )
                for rel in rels:
                    if not set(rel.schema.variables) <= head_set:
                        raise TypeError(
                            f"relation {rel.name!r} (schema "
                            f"{rel.schema.variables!r}) escapes the head "
                            f"{head!r}; change streams need a free-top "
                            "order"
                        )
                    seen[id(rel)] = rel
            self.tracked = list(seen.values())
        for rel in self.tracked:
            rel.track_dirty()
        self._prev = snap
        self.window = DeltaWindow(snap.number)

    def on_publish(self, snap) -> OutputDelta:
        """Diff the freshly-captured snapshot against the previous one."""
        engine = self.engine
        prev = self._prev
        if engine.query.head:
            entries = self._diff_patterns(prev, snap)
        else:
            entries = self._diff_scalar(prev, snap)
        delta = OutputDelta(prev.number, snap.number, entries)
        self._prev = snap
        self.window.append(delta)
        return delta

    def _diff_scalar(self, prev, snap) -> list:
        engine = self.engine
        is_zero = engine.ring.is_zero
        old = engine.scalar_snapshot(prev)
        new = engine.scalar_snapshot(snap)
        old_v = None if is_zero(old) else old
        new_v = None if is_zero(new) else new
        if old_v == new_v:
            return []
        return [((), old_v, new_v)]

    def _diff_patterns(self, prev, snap) -> list:
        engine = self.engine
        patterns: dict[tuple, dict] = {}
        for rel in self.tracked:
            dirty = rel._dirty
            if dirty:
                rel._dirty = set()
                variables = rel.schema.variables
                for key in dirty:
                    pat = (variables, key)
                    if pat not in patterns:
                        patterns[pat] = dict(zip(variables, key))
        if not patterns:
            return []
        old_region: dict[tuple, Any] = {}
        new_region: dict[tuple, Any] = {}
        enumerate_ = engine._enumerate
        for prebound in patterns.values():
            # Overlapping patterns re-derive identical payloads for a
            # shared output key, so plain dict overwrites dedupe them.
            for key, payload in enumerate_(dict(prebound), None, epoch=prev):
                old_region[key] = payload
            for key, payload in enumerate_(dict(prebound), None, epoch=snap):
                new_region[key] = payload
        entries = []
        for key, old in old_region.items():
            new = new_region.get(key)
            if new is None:
                entries.append((key, old, None))
            elif new != old:
                entries.append((key, old, new))
        for key, new in new_region.items():
            if key not in old_region:
                entries.append((key, None, new))
        return entries

    def changes_since(self, epoch: int) -> OutputDelta:
        return self.window.changes_since(epoch)


# ----------------------------------------------------------------------
# Subscriber-side maintained materialization
# ----------------------------------------------------------------------


class MaterializedView:
    """A dict materialization of the output, patched per epoch in O(δ).

    ``source`` is any engine-like object exposing ``epoch`` (last
    published epoch number), ``changes_since(epoch)`` and
    ``enumerate_snapshot()`` — ``ViewTreeEngine``, ``ShardedEngine``
    and the ``IVMEngine`` facade all qualify.  :meth:`refresh` patches
    the state forward; it falls back to a full snapshot drain (counted
    as ``full_refresh_fallbacks``) when the subscriber fell out of the
    retained window or the delta/state ratio exceeds
    ``ratio_threshold``.
    """

    def __init__(self, source, ratio_threshold: float = 0.5, stats=None):
        self.source = source
        self.ratio_threshold = ratio_threshold
        self._stats = stats
        self.state: dict[tuple, Any] = {}
        self.epoch = 0
        self.full_refreshes = 0
        self._full_refresh(initial=True)

    # -- stats plumbing -------------------------------------------------

    def _recorder(self):
        if self._stats is not None:
            return self._stats
        return getattr(self.source, "_maintenance_stats", None)

    # -- read surface ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.state)

    def items(self) -> Iterator[tuple[tuple, Any]]:
        return iter(self.state.items())

    def get(self, key: tuple, default: Any = None) -> Any:
        return self.state.get(key, default)

    @property
    def scalar(self) -> Any:
        """Maintained empty-head payload (``None`` when the output is zero)."""
        return self.state.get(())

    # -- maintenance ----------------------------------------------------

    def refresh(self) -> bool:
        """Catch the materialization up to the last published epoch.

        Returns ``True`` when anything changed (including a fallback
        drain), ``False`` when already current.
        """
        target = self.source.epoch
        if target == self.epoch:
            return False
        try:
            delta = self.source.changes_since(self.epoch)
        except EpochGapError:
            self._full_refresh()
            return True
        size = len(self.state)
        if len(delta.entries) > self.ratio_threshold * max(size, 1):
            self._full_refresh()
            return True
        start = time.perf_counter()
        delta.apply_to(self.state)
        self.epoch = delta.epoch_to
        stats = self._recorder()
        if stats is not None:
            stats.record_change_patch(
                time.perf_counter() - start,
                len(delta.entries),
                len(delta.entries) / max(size, 1),
            )
        return True

    def _full_refresh(self, initial: bool = False) -> None:
        # Epoch is read *before* the drain: if a publish lands mid-drain
        # the state may mix epochs, but the next patch (set-to-absolute)
        # re-converges it — see OutputDelta.apply_to.
        epoch = self.source.epoch
        self.state = dict(self.source.enumerate_snapshot())
        self.epoch = epoch
        if not initial:
            self.full_refreshes += 1
            stats = self._recorder()
            if stats is not None:
                stats.record_full_refresh()
