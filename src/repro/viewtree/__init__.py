"""View trees: higher-order factorized IVM (Sections 3.2 and 4.1)."""

from .compile import DeltaPlan, compile_delta_plans
from .engine import ViewNode, ViewTreeEngine
from .strategies import (
    STRATEGIES,
    EagerFact,
    EagerList,
    LazyFact,
    LazyList,
    MaintenanceStrategy,
    make_strategy,
)

__all__ = [
    "DeltaPlan",
    "EagerFact",
    "compile_delta_plans",
    "EagerList",
    "LazyFact",
    "LazyList",
    "MaintenanceStrategy",
    "STRATEGIES",
    "ViewNode",
    "ViewTreeEngine",
    "make_strategy",
]
