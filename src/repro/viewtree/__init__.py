"""View trees: higher-order factorized IVM (Sections 3.2 and 4.1)."""

from .changes import (
    EpochGapError,
    MaterializedView,
    OutputDelta,
    RETAIN_EPOCHS,
)
from .codegen import (
    DeltaKernel,
    EnumKernel,
    compile_delta_kernel,
    compile_enum_kernel,
    ring_identity,
    shape_cache_size,
)
from .compile import DeltaPlan, compile_delta_plans
from .engine import ViewNode, ViewTreeEngine
from .enumplan import EnumPlan, compile_enum_plan
from .strategies import (
    STRATEGIES,
    EagerFact,
    EagerList,
    LazyFact,
    LazyList,
    MaintenanceStrategy,
    make_strategy,
)

__all__ = [
    "DeltaKernel",
    "DeltaPlan",
    "EagerFact",
    "EnumKernel",
    "EnumPlan",
    "EpochGapError",
    "MaterializedView",
    "OutputDelta",
    "RETAIN_EPOCHS",
    "compile_delta_kernel",
    "compile_delta_plans",
    "compile_enum_kernel",
    "compile_enum_plan",
    "EagerList",
    "LazyFact",
    "LazyList",
    "MaintenanceStrategy",
    "STRATEGIES",
    "ViewNode",
    "ViewTreeEngine",
    "make_strategy",
    "ring_identity",
    "shape_cache_size",
]
