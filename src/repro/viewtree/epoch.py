"""Epoch snapshots: immutable, consistent views of a committed prefix.

The serving tier's concurrency model (ROADMAP "epoch-based snapshot
reads"): maintenance keeps writing into the live relations while any
number of reader threads enumerate a frozen *epoch* — the state of every
view, guard, and leaf at the last ``publish_epoch()`` call — with the
same constant-delay guarantees as a serialized read.

The mechanism is copy-on-write at two granularities (see
:meth:`repro.data.relation.Relation.share_version`):

* each relation's payload dict is frozen by reference; the first
  post-publish write copies it (``tables_copied``);
* each :class:`~repro.data.relation.GroupIndex` freezes its bucket dict;
  post-publish writes copy the top-level mapping once and then each
  touched bucket exactly once per epoch (``buckets_copied``).

An :class:`EpochSnapshot` is just the bag of frozen references, keyed by
relation identity, published with a single attribute assignment (atomic
under the GIL) so readers either see the whole previous epoch or the
whole new one — never a mix.  Multiple epochs coexist naturally: an old
snapshot pins its dicts alive until the last reader drops it.
"""

from __future__ import annotations

from typing import Any, Iterable


class EpochSnapshot:
    """Frozen references to every relation of one published epoch.

    ``tables`` maps ``id(relation)`` to its frozen payload dict;
    ``groups`` maps ``(id(relation), group_vars)`` to the frozen bucket
    dict of that relation's group index.  ``cow_buckets`` /
    ``cow_tables`` report the copy-on-write work the *previous* epoch
    cost (buckets and payload dicts copied since the prior publish).
    """

    __slots__ = ("number", "tables", "groups", "cow_buckets", "cow_tables")

    def __init__(
        self,
        number: int,
        tables: dict[int, dict],
        groups: dict[tuple[int, tuple[str, ...]], dict],
        cow_buckets: int = 0,
        cow_tables: int = 0,
    ):
        self.number = number
        self.tables = tables
        self.groups = groups
        self.cow_buckets = cow_buckets
        self.cow_tables = cow_tables

    @classmethod
    def capture(cls, number: int, relations: Iterable[Any]) -> "EpochSnapshot":
        """Freeze ``relations`` (views, guards, leaves) into one snapshot."""
        tables: dict[int, dict] = {}
        groups: dict[tuple[int, tuple[str, ...]], dict] = {}
        cow_buckets = 0
        cow_tables = 0
        for relation in relations:
            ident = id(relation)
            if ident in tables:
                continue
            data, rel_groups, buckets, copied = relation.share_version()
            tables[ident] = data
            cow_buckets += buckets
            cow_tables += copied
            for group_vars, bucket_map in rel_groups.items():
                groups[(ident, group_vars)] = bucket_map
        return cls(number, tables, groups, cow_buckets, cow_tables)

    def data_of(self, relation: Any) -> dict:
        """The frozen payload dict of ``relation`` in this epoch."""
        try:
            return self.tables[id(relation)]
        except KeyError:
            raise RuntimeError(
                f"relation {getattr(relation, 'name', relation)!r} is not "
                f"covered by epoch {self.number}; call publish_epoch() "
                "after structural changes"
            ) from None

    def groups_of(self, relation: Any, group_vars: tuple[str, ...]) -> dict:
        """The frozen bucket dict of ``relation``'s index on ``group_vars``."""
        try:
            return self.groups[(id(relation), group_vars)]
        except KeyError:
            raise RuntimeError(
                f"index on {group_vars!r} of relation "
                f"{getattr(relation, 'name', relation)!r} is not covered by "
                f"epoch {self.number}; call publish_epoch() after "
                "structural changes"
            ) from None
