"""Compiled constant-delay enumeration kernels for the view-tree read path.

This is the read-side twin of :mod:`repro.viewtree.compile`.  The generic
factorized enumeration (:meth:`ViewTreeEngine._enumerate_generic`) already
achieves the constant-delay bound of Theorem 4.1 / Example 4.4 for
q-hierarchical queries under a free-top order, but — exactly like the
pre-compilation write path — it pays a large *constant* for it: every
surviving candidate allocates a fresh continuation list, every binding
goes through a dict keyed by variable name, every key assembly re-reads
``schema.position``, and every output tuple is yielded through a chain of
nested generator frames proportional to the variable-order depth.

All of that depends only on the *query*, never on the data.
:func:`compile_enum_plan` therefore flattens the enumeration walk once,
at engine construction:

* the recursive ``children + rest`` scheduling collapses into a fixed
  pre-order sequence of *steps*, one per free variable, each carrying the
  deterministic bound-view probes that follow it (bound subtrees
  contribute a single view factor and are never descended into);
* the name-keyed binding dict becomes a flat *slot array*; every probe —
  guard group keys, prebound guard checks, anchored-leaf lookups, bound
  view lookups, head projection — is a precomputed tuple of slot
  positions, assembled with ``operator.itemgetter`` at C speed;
* the guard of every free step resolves to its
  :class:`~repro.data.relation.GroupIndex` (created at compile time and
  incrementally maintained by every subsequent update, exactly as the
  generic path's lazy ``index_on`` would);
* ring operations bind once per enumeration and the zero test inlines to
  one ``==`` comparison for :attr:`~repro.rings.base.Semiring.exact_zero`
  rings;
* the driver (:meth:`EnumPlan.iterate`) is a *single* generator running
  an explicit stack of candidate iterators — output tuples surface
  through one frame regardless of the variable-order depth.

Access-pattern requests (``enumerate(prebound=...)``, the CQAP engine of
Section 4.3) run through the same plan: a prebound variable's step swaps
its candidate iteration for one O(1) guard probe, so a fully-bound point
lookup is a constant number of hash probes end to end.

The kernel executes the *same* probe sequence as the generic walk — same
guard buckets in the same insertion order, same leaf/view lookups, same
zero tests — so outputs are bit-identical (the differential suites in
``tests/test_enum_kernel.py`` and ``benchmarks/bench_enum_kernel.py``
pin this) and the constant-delay asymptotics are untouched.  Elementary
operations are counted with the generic path's shape (one ``lookup`` per
probe, one ``enum`` per candidate consumed) and flushed to the global
:data:`~repro.data.opcounter.COUNTER` at every yield, so delay-profile
assertions over the counter see the same flat gaps.

Everything stored on a plan is positions, relation references, group
indexes, and the ring singleton, so compiled enumeration plans pickle
with their engine — process-pool shards ship engines whole, and the
pickle memo keeps plan references identical to the view tree's own
relations.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..data.opcounter import COUNTER
from ..data.relation import GroupIndex, Relation
from ..rings.base import Semiring
from .compile import _tuple_getter

#: Sentinel distinguishing "no prebound value" / "iterator exhausted"
#: from legitimate ``None`` values.
_MISS = object()


class EnumStep:
    """One free variable of the flattened enumeration walk."""

    __slots__ = (
        "variable",
        "var_slot",
        "var_pos",
        "guard",
        "index",
        "group_positions",
        "probe_positions",
        "leaf_probes",
        "post_probes",
    )

    def __init__(
        self,
        variable: str,
        var_slot: int,
        var_pos: int,
        guard: Relation,
        index: GroupIndex,
        group_positions: tuple[int, ...],
        probe_positions: tuple[int, ...],
        leaf_probes: tuple[tuple[Relation, tuple[int, ...]], ...],
        post_probes: tuple[tuple[Relation, tuple[int, ...]], ...],
    ):
        self.variable = variable
        #: Slot receiving the candidate value bound at this step.
        self.var_slot = var_slot
        #: Position of the variable inside the guard's key tuples.
        self.var_pos = var_pos
        self.guard = guard
        #: Guard group index on the step's ancestor variables.
        self.index = index
        #: Slot positions assembling the group key (guard schema order).
        self.group_positions = group_positions
        #: Slot positions assembling a full guard key (prebound checks).
        self.probe_positions = probe_positions
        #: Anchored leaves probed per candidate: (relation, slot positions).
        self.leaf_probes = leaf_probes
        #: Bound-subtree views probed after this step, before the next one.
        self.post_probes = post_probes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EnumStep({self.variable!r}, leaves={len(self.leaf_probes)}, "
            f"post={len(self.post_probes)})"
        )


class EnumPlan:
    """The compiled enumeration walk for one engine's free-top order."""

    __slots__ = ("ring", "nslots", "head_positions", "prefix_probes", "steps")

    def __init__(
        self,
        ring: Semiring,
        nslots: int,
        head_positions: tuple[int, ...],
        prefix_probes: tuple[tuple[Relation, tuple[int, ...]], ...],
        steps: tuple[EnumStep, ...],
    ):
        self.ring = ring
        self.nslots = nslots
        #: Slot positions projecting the slot array onto the query head.
        self.head_positions = head_positions
        #: Bound-root views probed once, before any free step runs
        #: (connected components with no free variable).
        self.prefix_probes = prefix_probes
        self.steps = steps

    def iterate(
        self, prebound: dict[str, Any] | None = None, stats=None, epoch=None
    ) -> Iterator[tuple[tuple, Any]]:
        """Enumerate ``(head key, payload)`` pairs through the plan.

        Mirrors the generic recursive walk exactly — same candidate
        order, same probes, same zero tests, same ring-operation order
        (so float payloads stay bit-identical) — on flat slot arrays and
        one explicit stack.  ``stats`` receives the structural read-path
        counters (``enum_compiled``, guard probes); pass ``None`` for an
        unobserved materialization.

        ``epoch`` (an :class:`~repro.viewtree.epoch.EpochSnapshot`)
        redirects every dict binding — guard data, group buckets, leaf
        and view payloads — to the published snapshot's frozen dicts, so
        the walk is identical but reads a consistent committed state
        while maintenance mutates the live relations from another thread.
        """
        ring = self.ring
        mul = ring.mul
        is_zero = ring.is_zero
        exact = ring.exact_zero
        zero = ring.zero
        one = ring.one
        counter = COUNTER
        miss = _MISS
        steps = self.steps
        nsteps = len(steps)
        lookups = 0
        enums = 0
        guard_probes = 0
        if stats is not None:
            stats.record_compiled_enumeration()
        try:
            # Dict source: live relation attributes, or — for snapshot
            # reads — the epoch's frozen dicts.  Everything below this
            # pair of accessors is identical in both modes.
            if epoch is None:
                data_of = None
            else:
                data_of = epoch.data_of
            slots: list = [None] * self.nslots
            payload = one
            for view, positions in self.prefix_probes:
                lookups += 1
                vdata = view.data if data_of is None else data_of(view)
                factor = vdata.get(_tuple_getter(positions)(slots))
                if factor is None:
                    return
                payload = mul(payload, factor)
                if (payload == zero) if exact else is_zero(payload):
                    return

            # Per-call locals: plain parallel lists so the hot loop pays
            # list indexing instead of attribute lookups, and itemgetters
            # (built here, never stored — plans must stay picklable).
            modes = (
                [prebound.get(step.variable, miss) for step in steps]
                if prebound
                else None
            )
            if data_of is None:
                guard_data = [step.guard.data for step in steps]
                groups = [step.index.groups for step in steps]
            else:
                guard_data = [data_of(step.guard) for step in steps]
                groups = [
                    epoch.groups_of(step.guard, step.index.group_vars)
                    for step in steps
                ]
            group_of = [_tuple_getter(step.group_positions) for step in steps]
            probe_of = [_tuple_getter(step.probe_positions) for step in steps]
            var_slot = [step.var_slot for step in steps]
            var_pos = [step.var_pos for step in steps]
            leaf_probes = [
                tuple(
                    (
                        leaf.data if data_of is None else data_of(leaf),
                        _tuple_getter(positions),
                    )
                    for leaf, positions in step.leaf_probes
                )
                for step in steps
            ]
            post_probes = [
                tuple(
                    (
                        view.data if data_of is None else data_of(view),
                        _tuple_getter(positions),
                    )
                    for view, positions in step.post_probes
                )
                for step in steps
            ]
            head_of = _tuple_getter(self.head_positions)

            # Explicit-stack driver.  ``iters[d]`` holds the candidate
            # iterator at depth ``d``, ``pay_in[d]`` the payload entering
            # that depth; ``pending`` marks a freshly-entered depth whose
            # iterator still needs creating.
            iters: list = [None] * nsteps
            pay_in: list = [None] * nsteps
            checked = [False] * nsteps
            pay_in[0] = payload
            last = nsteps - 1
            depth = 0
            pending = True
            while depth >= 0:
                if pending:
                    pending = False
                    value = modes[depth] if modes is not None else miss
                    guard_probes += 1
                    lookups += 1
                    if value is miss:
                        checked[depth] = False
                        bucket = groups[depth].get(group_of[depth](slots))
                        if not bucket:
                            depth -= 1
                            continue
                        iters[depth] = iter(bucket)
                    else:
                        checked[depth] = True
                        # Access-pattern check: one O(1) guard probe for
                        # the given value instead of candidate iteration.
                        slots[var_slot[depth]] = value
                        probe = probe_of[depth](slots)
                        if probe not in guard_data[depth]:
                            depth -= 1
                            continue
                        iters[depth] = iter((probe,))
                key = next(iters[depth], miss)
                if key is miss:
                    depth -= 1
                    continue
                if not checked[depth]:
                    enums += 1
                slots[var_slot[depth]] = key[var_pos[depth]]
                p = pay_in[depth]
                factor = one
                dead = False
                for data, get in leaf_probes[depth]:
                    lookups += 1
                    value = data.get(get(slots))
                    if value is None:
                        dead = True
                        break
                    factor = mul(factor, value)
                if dead:
                    continue
                p = mul(p, factor)
                if (p == zero) if exact else is_zero(p):
                    continue
                for data, get in post_probes[depth]:
                    lookups += 1
                    value = data.get(get(slots))
                    if value is None:
                        dead = True
                        break
                    p = mul(p, value)
                    if (p == zero) if exact else is_zero(p):
                        dead = True
                        break
                if dead:
                    continue
                if depth == last:
                    if counter.enabled:
                        if lookups:
                            counter.bump("lookup", lookups)
                            lookups = 0
                        if enums:
                            counter.bump("enum", enums)
                            enums = 0
                    yield head_of(slots), p
                    continue
                depth += 1
                pay_in[depth] = p
                pending = True
        finally:
            if counter.enabled:
                if lookups:
                    counter.bump("lookup", lookups)
                if enums:
                    counter.bump("enum", enums)
            if stats is not None and guard_probes:
                stats.record_enum_probes(guard_probes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnumPlan(steps={len(self.steps)}, slots={self.nslots})"


def _flatten(roots) -> list[tuple[bool, Any]]:
    """The fixed visit sequence of the factorized walk.

    The generic recursion's continuation — ``children + rest`` at a free
    node, ``rest`` at a bound one — depends only on the tree, so the
    whole walk flattens to one pre-order sequence in which bound nodes
    are leaves (their view summarizes the subtree).
    """
    sequence: list[tuple[bool, Any]] = []
    worklist = list(roots)
    while worklist:
        node = worklist.pop(0)
        if node.is_free:
            sequence.append((True, node))
            worklist = list(node.children) + worklist
        else:
            sequence.append((False, node))
    return sequence


def compile_enum_plan(engine) -> Optional[EnumPlan]:
    """Compile the engine's enumeration walk into an :class:`EnumPlan`.

    Requires a free-top order and a non-empty head (callers gate on
    both; empty-head queries go through ``scalar()``).  Returns ``None``
    when there is nothing to compile.
    """
    query = engine.query
    if not query.head or not engine.order.is_free_top():
        return None
    sequence = _flatten(engine.roots)
    slot_of: dict[str, int] = {}
    prefix_probes: list[tuple[Relation, tuple[int, ...]]] = []
    steps: list[EnumStep] = []
    pending_posts: list[tuple[Relation, tuple[int, ...]]] = []

    def slots_for(variables) -> tuple[int, ...]:
        return tuple(slot_of[v] for v in variables)

    for is_free, node in sequence:
        if not is_free:
            probe = (node.view, slots_for(node.view.schema.variables))
            if steps:
                pending_posts.append(probe)
            else:
                prefix_probes.append(probe)
            continue
        if steps:
            previous = steps[-1]
            previous.post_probes = tuple(pending_posts)
        pending_posts.clear()
        slot = slot_of.setdefault(node.variable, len(slot_of))
        guard = node.guard_relation()
        guard_vars = guard.schema.variables
        group_vars = tuple(v for v in guard_vars if v != node.variable)
        steps.append(
            EnumStep(
                node.variable,
                slot,
                guard.schema.position(node.variable),
                guard,
                guard.index_on(group_vars),
                slots_for(group_vars),
                slots_for(guard_vars),
                tuple(
                    (leaf, slots_for(atom.variables))
                    for atom, leaf in node.leaves
                ),
                (),
            )
        )
    if not steps:
        return None
    steps[-1].post_probes = tuple(pending_posts)
    return EnumPlan(
        engine.ring,
        len(slot_of),
        tuple(slot_of[v] for v in query.head),
        tuple(prefix_probes),
        tuple(steps),
    )
