"""Source-generated kernels: the compiled plans compiled one rung further.

:mod:`repro.viewtree.compile` and :mod:`repro.viewtree.enumplan` already
flattened the interpreter into step lists, but the hot loops still walk
those lists in Python: every push pays a ``for step in steps`` /
``for join in step.siblings`` dispatch, a mode test per sibling, a
``tuple(dkey[i] for i in positions)`` genexpr per projection, and a ring
method call per multiplication.  All of that is constant per *plan* —
so this module emits it away (the classic ORM/serializer trick, cf.
stepping's profiling notes in SNIPPETS.md and OpenIVM's compile-to-code
design in PAPERS.md):

* for each :class:`~repro.viewtree.compile.DeltaPlan` it generates
  Python source with the step loop fully unrolled — one straight-line
  block per sibling join and per marginalization, projections as literal
  index tuples (``(dkey[0], dkey[2])``), ring operations inlined to
  ``a * b`` / ``a + b`` when the ring declares
  :attr:`~repro.rings.base.Semiring.mul_operator`, and
  :attr:`~repro.rings.base.Semiring.exact_zero` tests inlined to one
  comparison — and ``exec``\\ s it into specialized ``push`` /
  ``push_batch`` functions;
* for each :class:`~repro.viewtree.enumplan.EnumPlan` it generates the
  enumeration walk as *nested literal loops* over named slot locals
  (``s0``, ``s1``, …) instead of the explicit-stack driver, one block
  per depth with its guard probe, leaf probes, and bound-view probes
  unrolled in place.

The generated functions execute the **same probe sequence, the same
ring-operation order, and the same elementary-operation accounting** as
the interpreted plans — the interpreted kernels remain the bit-identical
differential-testing oracle (``tests/test_codegen.py``).

Shape cache
-----------
Generated source depends only on the plan's *shape* — step/sibling
structure, position tuples, and the **ring identity** (type plus
instance state such as a :class:`~repro.rings.standard.FloatRing`
tolerance, recursively for :class:`~repro.rings.standard.ProductRing`
factors) — never on relation or anchor *names*.  Identical shapes across
anchors, engines, and shards therefore compile once per process: the
module-level cache maps a structural shape key to the exec'd factory,
and instantiating a kernel for a concrete plan just calls the factory
with that plan's environment (relation/index objects, bound
``add``/``add_delta`` methods, ring callables, labels).  Keying on the
ring identity and schema positions — not names — is what keeps two views
over same-named relations with *different* rings from ever sharing a
kernel.

Copy-on-write safety: environments bind :class:`Relation` /
:class:`GroupIndex` **objects** (and bound methods), never their
``data``/``groups`` dicts — the generated code re-reads ``.data`` and
``.groups`` at call time, exactly like the interpreted plans, so epoch
publication (which swaps those dicts on the next write) keeps working.

Pickling: a kernel's functions are closures over live objects and cannot
pickle, so :class:`DeltaKernel`/:class:`EnumKernel` implement
``__reduce__`` as "regenerate from the plan" — the plan itself pickles
with the engine (the pickle memo keeps its relation references identical
to the view tree's own), and unpickling hits the shape cache.
"""

from __future__ import annotations

import threading
from operator import itemgetter
from time import perf_counter
from typing import Any, Optional

from ..data.opcounter import COUNTER
from ..rings.base import Semiring
from .compile import CROSS, DIRECT, INDEXED, _MISS, DeltaPlan
from .enumplan import EnumPlan

__all__ = [
    "DeltaKernel",
    "EnumKernel",
    "compile_delta_kernel",
    "compile_enum_kernel",
    "new_codegen_info",
    "ring_identity",
]


def new_codegen_info() -> dict[str, Any]:
    """A fresh mutable counter bag for one engine's kernel generation."""
    return {"kernels": 0, "cache_hits": 0, "time_ms": 0.0, "fallbacks": 0}


# ----------------------------------------------------------------------
# Ring identity and shape keys
# ----------------------------------------------------------------------


def ring_identity(ring: Semiring) -> tuple:
    """A hashable structural identity for a ring instance.

    Two rings share generated code only when this key matches: same
    type, same ``exact_zero``/operator declarations, and same instance
    state (e.g. ``FloatRing.tolerance``; ``ProductRing.factors``
    recurse).  Unhashable state degrades to its ``repr``.
    """
    state = []
    attrs = getattr(ring, "__dict__", None)
    if attrs:
        for name in sorted(attrs):
            value = attrs[name]
            if isinstance(value, Semiring):
                value = ring_identity(value)
            elif isinstance(value, tuple):
                value = tuple(
                    ring_identity(v) if isinstance(v, Semiring) else v
                    for v in value
                )
            try:
                hash(value)
            except TypeError:
                value = repr(value)
            state.append((name, value))
    return (
        type(ring).__module__,
        type(ring).__qualname__,
        ring.exact_zero,
        ring.add_operator,
        ring.mul_operator,
        tuple(state),
    )


def _delta_shape(plan: DeltaPlan) -> tuple:
    return (
        "delta",
        ring_identity(plan.ring),
        len(plan.leaf.schema.variables),
        tuple(
            (
                tuple(
                    (join.mode, join.probe_positions, join.extend_positions)
                    for join in step.siblings
                ),
                step.guard is not None,
                step.guard_positions,
                step.out_positions,
                step.lift is not None,
                step.lift_position,
            )
            for step in plan.steps
        ),
    )


def _enum_shape(plan: EnumPlan) -> tuple:
    return (
        "enum",
        ring_identity(plan.ring),
        plan.nslots,
        plan.head_positions,
        tuple(positions for _, positions in plan.prefix_probes),
        tuple(
            (
                step.var_slot,
                step.var_pos,
                step.group_positions,
                step.probe_positions,
                tuple(positions for _, positions in step.leaf_probes),
                tuple(positions for _, positions in step.post_probes),
            )
            for step in plan.steps
        ),
    )


# ----------------------------------------------------------------------
# Source-emission helpers
# ----------------------------------------------------------------------


class _Writer:
    """Tiny indented-source builder."""

    def __init__(self, indent: int = 0):
        self.lines: list[str] = []
        self.indent = indent

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def block(self) -> "_Block":
        return _Block(self)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Block:
    def __init__(self, writer: _Writer):
        self.writer = writer

    def __enter__(self):
        self.writer.indent += 1

    def __exit__(self, *exc):
        self.writer.indent -= 1


class _Ops:
    """Ring-operation expression templates for one ring."""

    def __init__(self, ring: Semiring):
        self.exact = ring.exact_zero
        self.add_op = ring.add_operator
        self.mul_op = ring.mul_operator

    def mul(self, a: str, b: str) -> str:
        if self.mul_op:
            return f"({a} {self.mul_op} {b})"
        return f"MUL({a}, {b})"

    def add(self, a: str, b: str) -> str:
        if self.add_op:
            return f"({a} {self.add_op} {b})"
        return f"ADD({a}, {b})"

    def is_zero(self, x: str) -> str:
        # ``add_operator = "+"`` asserts numeric payloads (see the sum()
        # fold), where truthiness coincides exactly with ``== 0`` — one
        # bytecode instead of a global load plus a rich comparison.  Only
        # ever emitted as a bare ``if`` condition.
        if self.exact:
            return f"not {x}" if self.add_op == "+" else f"{x} == ZERO"
        return f"IS_ZERO({x})"

    def nonzero(self, x: str) -> str:
        if self.exact:
            return x if self.add_op == "+" else f"{x} != ZERO"
        return f"not IS_ZERO({x})"


def _proj(var: str, positions: tuple[int, ...], arity: int | None = None) -> str:
    """A literal tuple expression projecting ``var`` onto ``positions``."""
    if arity is not None and positions == tuple(range(arity)):
        return var
    if not positions:
        return "()"
    inner = ", ".join(f"{var}[{i}]" for i in positions)
    if len(positions) == 1:
        return f"({inner},)"
    return f"({inner})"


def _wrap_factory(body: _Writer, env_names: list[str], returns: str) -> str:
    """Wrap generated function bodies in the shared ``_make(env)`` factory.

    The factory is exec'd once per *shape*; calling it with a concrete
    plan's environment binds every name as a closure local (fast
    ``LOAD_DEREF``, no globals lookups in the hot path).
    """
    w = _Writer()
    w.emit("def _make(env):")
    with w.block():
        for name in env_names:
            w.emit(f"{name} = env[{name!r}]")
        w.emit()
    w.lines.extend(body.lines)
    with w.block():
        w.emit(f"return {returns}")
    return w.source()


# ----------------------------------------------------------------------
# Delta-kernel source
# ----------------------------------------------------------------------


def _delta_getters(plan: DeltaPlan) -> dict[str, tuple[int, ...]]:
    """Positions for the ``itemgetter`` closures the batch body maps.

    ``map(itemgetter(...), keys)`` runs a projection at C speed; the
    batch emitter uses one per non-trivial probe (``PG_{s}_{j}``) and per
    non-identity marginalization (``OG_{s}``, lift-free only — lifting
    needs the full key in the loop).  Computed once here so the env
    builder and the emitter agree exactly on which getters exist.
    """
    getters: dict[str, tuple[int, ...]] = {}
    arity = len(plan.leaf.schema.variables)
    for s, step in enumerate(plan.steps):
        for j, join in enumerate(step.siblings):
            full_key = len(join.probe_positions) == arity
            if join.mode != CROSS and join.probe_positions and not full_key:
                getters[f"PG_{s}_{j}"] = join.probe_positions
            arity += len(join.extend_positions)
        identity = step.out_positions == tuple(range(arity))
        if step.out_positions and not identity and step.lift is None:
            getters[f"OG_{s}"] = step.out_positions
        arity = len(step.out_positions)
    return getters


def _delta_env_names(plan: DeltaPlan) -> list[str]:
    names = ["MUL", "ADD", "IS_ZERO", "ZERO", "COUNTER", "MISS"]
    for s, step in enumerate(plan.steps):
        names.append(f"LBL_{s}")
        names.append(f"VADD_{s}")
        names.append(f"VREL_{s}")
        if step.guard is not None:
            names.append(f"GADD_{s}")
            names.append(f"GREL_{s}")
        if step.lift is not None:
            names.append(f"LIFT_{s}")
        for j, join in enumerate(step.siblings):
            names.append(f"REL_{s}_{j}")
            if join.index is not None:
                names.append(f"IDX_{s}_{j}")
    names.extend(_delta_getters(plan))
    return names


def _delta_env(plan: DeltaPlan) -> dict[str, Any]:
    ring = plan.ring
    env: dict[str, Any] = {
        "MUL": ring.mul,
        "ADD": ring.add,
        "IS_ZERO": ring.is_zero,
        "ZERO": ring.zero,
        "COUNTER": COUNTER,
        "MISS": _MISS,
    }
    for s, step in enumerate(plan.steps):
        env[f"LBL_{s}"] = step.view_label
        env[f"VADD_{s}"] = step.view.add
        env[f"VREL_{s}"] = step.view
        if step.guard is not None:
            env[f"GADD_{s}"] = step.guard.add
            env[f"GREL_{s}"] = step.guard
        if step.lift is not None:
            env[f"LIFT_{s}"] = step.lift
        for j, join in enumerate(step.siblings):
            env[f"REL_{s}_{j}"] = join.relation
            if join.index is not None:
                env[f"IDX_{s}_{j}"] = join.index
    for name, positions in _delta_getters(plan).items():
        env[name] = itemgetter(*positions)
    return env


def _emit_push(w: _Writer, plan: DeltaPlan, ops: _Ops) -> None:
    """The single-tuple ``push`` body, mirroring :meth:`DeltaPlan.push`.

    The flowing delta starts as one ``(dk, dp)`` pair and stays scalar
    straight-line code through DIRECT joins and marginalizations; the
    first INDEXED/CROSS join fans it out into parallel-iteration list
    code.  Probe sequence, counter accounting, per-view
    ``stats.record_delta`` calls, and ring-operation order all match the
    interpreted plan exactly.
    """
    w.emit("def push(key, payload, stats=None):")
    with w.block():
        w.emit(f"if {ops.is_zero('payload')}:")
        with w.block():
            w.emit("return")
        w.emit("lookups = 0")
        w.emit("matches = 0")
        w.emit("try:")
        with w.block():
            w.emit("dk = key")
            w.emit("dp = payload")
            single = True
            arity = len(plan.leaf.schema.variables)
            for s, step in enumerate(plan.steps):
                w.emit(f"# step {s} ({step.variable})")
                for j, join in enumerate(step.siblings):
                    probe = _proj("dk", join.probe_positions, arity)
                    if join.mode == DIRECT:
                        if single:
                            w.emit("lookups += 1")
                            w.emit(f"val = REL_{s}_{j}.data.get({probe})")
                            w.emit("if val is None:")
                            with w.block():
                                w.emit("return")
                            w.emit(f"dp = {ops.mul('dp', 'val')}")
                            w.emit(f"if {ops.is_zero('dp')}:")
                            with w.block():
                                w.emit("return")
                        else:
                            w.emit("lookups += len(items)")
                            w.emit(f"data = REL_{s}_{j}.data")
                            w.emit("out = []")
                            w.emit("for dk, dp in items:")
                            with w.block():
                                w.emit(f"val = data.get({probe})")
                                w.emit("if val is None:")
                                with w.block():
                                    w.emit("continue")
                                w.emit(f"prod = {ops.mul('dp', 'val')}")
                                w.emit(f"if {ops.nonzero('prod')}:")
                                with w.block():
                                    w.emit("out.append((dk, prod))")
                            w.emit("items = out")
                            w.emit("if not items:")
                            with w.block():
                                w.emit("return")
                    elif join.mode == INDEXED:
                        extend = _proj("sk", join.extend_positions)
                        if single:
                            w.emit("lookups += 1")
                            w.emit(f"bucket = IDX_{s}_{j}.groups.get({probe})")
                            w.emit("if not bucket:")
                            with w.block():
                                w.emit("return")
                            w.emit("matches += len(bucket)")
                            w.emit(f"data = REL_{s}_{j}.data")
                            w.emit("items = []")
                            w.emit("for sk in bucket:")
                            with w.block():
                                w.emit(f"prod = {ops.mul('dp', 'data[sk]')}")
                                w.emit(f"if {ops.is_zero('prod')}:")
                                with w.block():
                                    w.emit("continue")
                                w.emit(f"items.append((dk + {extend}, prod))")
                            w.emit("if not items:")
                            with w.block():
                                w.emit("return")
                            single = False
                        else:
                            w.emit("lookups += len(items)")
                            w.emit(f"groups = IDX_{s}_{j}.groups")
                            w.emit(f"data = REL_{s}_{j}.data")
                            w.emit("out = []")
                            w.emit("for dk, dp in items:")
                            with w.block():
                                w.emit(f"bucket = groups.get({probe})")
                                w.emit("if not bucket:")
                                with w.block():
                                    w.emit("continue")
                                w.emit("matches += len(bucket)")
                                w.emit("for sk in bucket:")
                                with w.block():
                                    w.emit(f"prod = {ops.mul('dp', 'data[sk]')}")
                                    w.emit(f"if {ops.is_zero('prod')}:")
                                    with w.block():
                                        w.emit("continue")
                                    w.emit(f"out.append((dk + {extend}, prod))")
                            w.emit("items = out")
                            w.emit("if not items:")
                            with w.block():
                                w.emit("return")
                    else:  # CROSS
                        extend = _proj("sk", join.extend_positions)
                        w.emit(f"data = REL_{s}_{j}.data")
                        if single:
                            w.emit("matches += len(data)")
                            w.emit("items = []")
                            w.emit("for sk, sp in data.items():")
                            with w.block():
                                w.emit(f"prod = {ops.mul('dp', 'sp')}")
                                w.emit(f"if {ops.is_zero('prod')}:")
                                with w.block():
                                    w.emit("continue")
                                w.emit(f"items.append((dk + {extend}, prod))")
                            w.emit("if not items:")
                            with w.block():
                                w.emit("return")
                            single = False
                        else:
                            w.emit("matches += len(data) * len(items)")
                            w.emit("out = []")
                            w.emit("for dk, dp in items:")
                            with w.block():
                                w.emit("for sk, sp in data.items():")
                                with w.block():
                                    w.emit(f"prod = {ops.mul('dp', 'sp')}")
                                    w.emit(f"if {ops.is_zero('prod')}:")
                                    with w.block():
                                        w.emit("continue")
                                    w.emit(f"out.append((dk + {extend}, prod))")
                            w.emit("items = out")
                            w.emit("if not items:")
                            with w.block():
                                w.emit("return")
                    arity += len(join.extend_positions)

                if step.guard is not None:
                    gproj = _proj("dk", step.guard_positions, arity)
                    if single:
                        w.emit(f"GADD_{s}({gproj}, dp)")
                    else:
                        w.emit("for dk, dp in items:")
                        with w.block():
                            w.emit(f"GADD_{s}({gproj}, dp)")

                # Marginalize the node variable onto the view schema.
                oproj = _proj("dk", step.out_positions, arity)
                if single:
                    if step.lift is not None:
                        lifted = ops.mul("dp", f"LIFT_{s}(dk[{step.lift_position}])")
                        w.emit(f"dp = {lifted}")
                    if oproj != "dk":
                        w.emit(f"dk = {oproj}")
                    w.emit(f"if {ops.is_zero('dp')}:")
                    with w.block():
                        w.emit("if stats is not None:")
                        with w.block():
                            w.emit(f"stats.record_delta(LBL_{s}, 0)")
                        w.emit("return")
                    w.emit(f"VADD_{s}(dk, dp)")
                    w.emit("if stats is not None:")
                    with w.block():
                        w.emit(f"stats.record_delta(LBL_{s}, 1)")
                else:
                    w.emit("agg = {}")
                    w.emit("for dk, dp in items:")
                    with w.block():
                        w.emit(f"okey = {oproj}")
                        if step.lift is not None:
                            lifted = ops.mul(
                                "dp", f"LIFT_{s}(dk[{step.lift_position}])"
                            )
                            w.emit(f"dp = {lifted}")
                        w.emit("prev = agg.get(okey)")
                        w.emit(
                            "agg[okey] = dp if prev is None else "
                            + ops.add("prev", "dp")
                        )
                    w.emit("items = []")
                    w.emit("for okey, dp in agg.items():")
                    with w.block():
                        w.emit(f"if {ops.is_zero('dp')}:")
                        with w.block():
                            w.emit("continue")
                        w.emit(f"VADD_{s}(okey, dp)")
                        w.emit("items.append((okey, dp))")
                    w.emit("if stats is not None:")
                    with w.block():
                        w.emit(f"stats.record_delta(LBL_{s}, len(items))")
                    if s + 1 < len(plan.steps):
                        w.emit("if not items:")
                        with w.block():
                            w.emit("return")
                arity = len(step.out_positions)
        w.emit("finally:")
        with w.block():
            w.emit("if COUNTER.enabled:")
            with w.block():
                w.emit("if lookups:")
                with w.block():
                    w.emit('COUNTER.bump("lookup", lookups)')
                w.emit("if matches:")
                with w.block():
                    w.emit('COUNTER.bump("enum", matches)')


def _emit_sink(w: _Writer, ops: _Ops, rel: str, key_expr: str) -> None:
    """Inline one fused view/guard write pass over ``zip(dks, dps)``.

    This is :meth:`Relation.add_delta` unrolled in place — same
    copy-on-write unshare, same ``old -> ring_add -> cancel-or-write``
    sequence, same index postings, same one-bulk-``write`` accounting —
    minus the per-entry zero test (every payload reaching a sink is
    already non-zero) and the per-entry ring/method calls.  Group
    indexes (guards of enum-compiled trees carry one) take the indexed
    loop; bare views take the tight one.
    """
    w.emit(f"vrel = {rel}")
    w.emit("if vrel._cow:")
    with w.block():
        w.emit("vrel._unshare()")
    w.emit("vdata = vrel.data")
    w.emit("vget = vdata.get")
    w.emit("if vrel._indexes:")

    def body(indexed: bool) -> None:
        w.emit("for dk, dp in zip(dks, dps):")
        with w.block():
            if key_expr != "dk":
                w.emit(f"vk = {key_expr}")
            vk = "vk" if key_expr != "dk" else "dk"
            w.emit(f"old = vget({vk})")
            w.emit("if old is None:")
            with w.block():
                w.emit(f"vdata[{vk}] = dp")
                if indexed:
                    w.emit("for ix in ixs:")
                    with w.block():
                        w.emit(f"ix.add({vk})")
                w.emit("continue")
            w.emit(f"new = {ops.add('old', 'dp')}")
            w.emit(f"if {ops.is_zero('new')}:")
            with w.block():
                w.emit(f"del vdata[{vk}]")
                if indexed:
                    w.emit("for ix in ixs:")
                    with w.block():
                        w.emit(f"ix.remove({vk})")
            w.emit("else:")
            with w.block():
                w.emit(f"vdata[{vk}] = new")

    with w.block():
        w.emit("ixs = list(vrel._indexes.values())")
        body(indexed=True)
    w.emit("else:")
    with w.block():
        body(indexed=False)
    # Dirty-key oracle (Relation.track_dirty): re-read per call so
    # enabling change tracking after kernel generation still takes, and
    # recompute the projection only on the tracked path.
    w.emit("vdirty = vrel._dirty")
    w.emit("if vdirty is not None:")
    with w.block():
        if key_expr == "dk":
            w.emit("vdirty.update(dks)")
        else:
            w.emit(f"vdirty.update(({key_expr}) for dk in dks)")
    w.emit('COUNTER.bump("write", len(dks))')


def _emit_agg_sink(w: _Writer, ops: _Ops, rel: str, wrap: bool = False) -> None:
    """Fused filter + view write over a marginalization's ``agg`` dict.

    One pass per aggregated key replaces the oracle's filtered-dict copy
    plus bulk :meth:`Relation.add_delta`: survivors land on the view and
    in the ``dks``/``dps`` lists (the step's outgoing delta) in the same
    ``agg`` insertion order the oracle filters in, so payload-combination
    order — and therefore every non-commutative-rounding ring — is
    untouched.  With ``wrap``, ``agg`` is keyed by bare values (a
    single-position projection aggregated via ``itemgetter``) and each
    surviving key is boxed back into the view's 1-tuple here, once per
    distinct key instead of once per delta entry.
    """
    w.emit(f"vrel = {rel}")
    w.emit("if vrel._cow:")
    with w.block():
        w.emit("vrel._unshare()")
    w.emit("vdata = vrel.data")
    w.emit("vget = vdata.get")
    w.emit("dks = []")
    w.emit("dps = []")
    w.emit("ka = dks.append")
    w.emit("pa = dps.append")
    w.emit("if vrel._indexes:")
    vk = "vk" if wrap else "okey"

    def body(indexed: bool) -> None:
        w.emit("for okey, dp in agg.items():")
        with w.block():
            w.emit(f"if {ops.is_zero('dp')}:")
            with w.block():
                w.emit("continue")
            if wrap:
                w.emit("vk = (okey,)")
            w.emit(f"ka({vk})")
            w.emit("pa(dp)")
            w.emit(f"old = vget({vk})")
            w.emit("if old is None:")
            with w.block():
                w.emit(f"vdata[{vk}] = dp")
                if indexed:
                    w.emit("for ix in ixs:")
                    with w.block():
                        w.emit(f"ix.add({vk})")
                w.emit("continue")
            w.emit(f"new = {ops.add('old', 'dp')}")
            w.emit(f"if {ops.is_zero('new')}:")
            with w.block():
                w.emit(f"del vdata[{vk}]")
                if indexed:
                    w.emit("for ix in ixs:")
                    with w.block():
                        w.emit(f"ix.remove({vk})")
            w.emit("else:")
            with w.block():
                w.emit(f"vdata[{vk}] = new")

    with w.block():
        w.emit("ixs = list(vrel._indexes.values())")
        body(indexed=True)
    w.emit("else:")
    with w.block():
        body(indexed=False)
    w.emit("if dks:")
    with w.block():
        # ``dks`` is exactly the set of view keys written above, so the
        # dirty oracle costs one bulk update only when tracking is on.
        w.emit("vdirty = vrel._dirty")
        w.emit("if vdirty is not None:")
        with w.block():
            w.emit("vdirty.update(dks)")
        w.emit('COUNTER.bump("write", len(dks))')


def _emit_push_batch(w: _Writer, plan: DeltaPlan, ops: _Ops) -> None:
    """The columnar ``push_batch(keys, pays, stats)`` body.

    Mirrors :meth:`DeltaPlan.push_batch` over parallel key/payload lists
    (the columnar batch representation from
    :func:`repro.viewtree.columnar.coalesce_columnar`) instead of a
    delta dict — legal because a coalesced delta's keys are distinct and
    sibling joins never collide output keys; only the marginalization
    aggregates, through the same dict the oracle uses.  Per-sibling
    probe caches are kept (with the oracle's shared-probe accounting)
    except when the probe covers the *full* delta key: coalesced keys
    are distinct, so every such probe would miss and the cache is pure
    overhead — the emitted bulk ``lookups += len(...)`` matches the
    oracle's all-miss counting exactly.
    """
    w.emit("def push_batch(keys, pays, stats=None):")
    with w.block():
        w.emit("if not keys:")
        with w.block():
            w.emit("return")
        w.emit("lookups = 0")
        w.emit("matches = 0")
        w.emit("shared = 0")
        w.emit("try:")
        with w.block():
            w.emit("dks = keys")
            w.emit("dps = pays")
            arity = len(plan.leaf.schema.variables)
            for s, step in enumerate(plan.steps):
                w.emit(f"# step {s} ({step.variable})")
                final_arity = arity + sum(
                    len(jn.extend_positions) for jn in step.siblings
                )
                oproj = _proj("dk", step.out_positions, final_arity)
                if oproj == "dk" and step.lift is None:
                    kind = "identity"
                elif not step.out_positions:
                    kind = "scalar"
                else:
                    kind = "agg"
                # When the step joins siblings, its *last* stage loop can
                # absorb the guard write and the marginalization
                # accumulate: each survivor is written/aggregated on the
                # spot instead of appended to out_k/out_p, re-zipped for
                # the guard sink, and traversed again to aggregate.  The
                # guard and the probed sibling views are distinct
                # relations (one per view-tree node), so interleaving the
                # writes with the probes observes nothing the oracle's
                # stage-then-sink order doesn't; write order and
                # accumulation order per relation are unchanged.  CROSS
                # stages (rare, unbounded fan-out) keep the simple path.
                fuse = bool(step.siblings) and step.siblings[-1].mode in (
                    DIRECT,
                    INDEXED,
                )

                def emit_entry_write(
                    data: str, ixs: str, key: str, get: str, dirty: str
                ) -> None:
                    # One Relation.add_delta entry inline; COW unshare,
                    # the bound ``.get``, the index list, and the dirty
                    # set are hoisted by the prologue.  ``ixs`` is
                    # usually empty, so the posting loops cost one
                    # iterator setup on the new/cancel paths only.
                    w.emit(f"if {dirty} is not None:")
                    with w.block():
                        w.emit(f"{dirty}.add({key})")
                    w.emit(f"old = {get}({key})")
                    w.emit("if old is None:")
                    with w.block():
                        w.emit(f"{data}[{key}] = prod")
                        w.emit(f"for ix in {ixs}:")
                        with w.block():
                            w.emit(f"ix.add({key})")
                    w.emit("else:")
                    with w.block():
                        w.emit(f"new = {ops.add('old', 'prod')}")
                        w.emit(f"if {ops.is_zero('new')}:")
                        with w.block():
                            w.emit(f"del {data}[{key}]")
                            w.emit(f"for ix in {ixs}:")
                            with w.block():
                                w.emit(f"ix.remove({key})")
                        w.emit("else:")
                        with w.block():
                            w.emit(f"{data}[{key}] = new")

                def emit_fused_prologue() -> None:
                    w.emit("n = 0")
                    if step.guard is not None:
                        w.emit(f"grel = GREL_{s}")
                        w.emit("if grel._cow:")
                        with w.block():
                            w.emit("grel._unshare()")
                        w.emit("gdata = grel.data")
                        w.emit("gget = gdata.get")
                        w.emit("gixs = list(grel._indexes.values())")
                        w.emit("gdirty = grel._dirty")
                    if kind == "identity":
                        w.emit(f"vrel = VREL_{s}")
                        w.emit("if vrel._cow:")
                        with w.block():
                            w.emit("vrel._unshare()")
                        w.emit("vdata = vrel.data")
                        w.emit("vget = vdata.get")
                        w.emit("vixs = list(vrel._indexes.values())")
                        w.emit("vdirty = vrel._dirty")
                        w.emit("out_k = []")
                        w.emit("out_p = []")
                        w.emit("ka = out_k.append")
                        w.emit("pa = out_p.append")
                    elif kind == "scalar":
                        if ops.add_op == "+":
                            # The ZERO seed is additively inert under
                            # Python ``+`` (the sum() argument below).
                            w.emit("tot = ZERO")
                        else:
                            w.emit("tot = None")
                    else:
                        w.emit("agg = {}")
                        w.emit("aget = agg.get")

                def emit_survivor(key: str) -> None:
                    # Fused survivor body: replaces ka/pa with the guard
                    # write and the marginalization accumulate for this
                    # stage-output key/``prod`` payload.
                    w.emit("n += 1")
                    if step.guard is not None:
                        gexpr = _proj(key, step.guard_positions, final_arity)
                        gk = key
                        if gexpr != key:
                            w.emit(f"gk = {gexpr}")
                            gk = "gk"
                        emit_entry_write("gdata", "gixs", gk, "gget", "gdirty")
                    if kind == "identity":
                        w.emit(f"ka({key})")
                        w.emit("pa(prod)")
                        emit_entry_write("vdata", "vixs", key, "vget", "vdirty")
                    elif kind == "scalar":
                        if step.lift is not None:
                            w.emit(
                                "prod = "
                                + ops.mul(
                                    "prod",
                                    f"LIFT_{s}({key}[{step.lift_position}])",
                                )
                            )
                        if ops.add_op == "+":
                            w.emit("tot = tot + prod")
                        else:
                            w.emit(
                                "tot = prod if tot is None else "
                                + ops.add("tot", "prod")
                            )
                    else:
                        if step.lift is not None:
                            w.emit(
                                "prod = "
                                + ops.mul(
                                    "prod",
                                    f"LIFT_{s}({key}[{step.lift_position}])",
                                )
                            )
                        if len(step.out_positions) == 1:
                            w.emit(f"okey = {key}[{step.out_positions[0]}]")
                        else:
                            w.emit(
                                "okey = "
                                + _proj(key, step.out_positions, final_arity)
                            )
                        if ops.add_op == "+":
                            w.emit("agg[okey] = aget(okey, ZERO) + prod")
                        else:
                            w.emit("prev = aget(okey)")
                            w.emit(
                                "agg[okey] = prod if prev is None else "
                                + ops.add("prev", "prod")
                            )

                def emit_fused_epilogue() -> None:
                    # The stage-level "no survivors" early return, then
                    # the deferred write accounting and marginalization
                    # finalization the unfused path does in later passes.
                    w.emit("if not n:")
                    with w.block():
                        w.emit("return")
                    if step.guard is not None:
                        w.emit('COUNTER.bump("write", n)')
                    if kind == "identity":
                        w.emit('COUNTER.bump("write", n)')
                        w.emit("dks = out_k")
                        w.emit("dps = out_p")
                        w.emit("if stats is not None:")
                        with w.block():
                            w.emit(f"stats.record_delta(LBL_{s}, n)")
                    elif kind == "scalar":
                        w.emit(f"if {ops.nonzero('tot')}:")
                        with w.block():
                            w.emit("dks = [()]")
                            w.emit("dps = [tot]")
                            _emit_sink(w, ops, f"VREL_{s}", "dk")
                        w.emit("else:")
                        with w.block():
                            w.emit("dks = []")
                            w.emit("dps = []")
                        w.emit("if stats is not None:")
                        with w.block():
                            w.emit(f"stats.record_delta(LBL_{s}, len(dks))")
                        if s + 1 < len(plan.steps):
                            w.emit("if not dks:")
                            with w.block():
                                w.emit("return")
                    else:
                        _emit_agg_sink(
                            w,
                            ops,
                            f"VREL_{s}",
                            wrap=len(step.out_positions) == 1,
                        )
                        w.emit("if stats is not None:")
                        with w.block():
                            w.emit(f"stats.record_delta(LBL_{s}, len(dks))")
                        if s + 1 < len(plan.steps):
                            w.emit("if not dks:")
                            with w.block():
                                w.emit("return")

                for j, join in enumerate(step.siblings):
                    fused_stage = fuse and j == len(step.siblings) - 1
                    probe = _proj("dk", join.probe_positions, arity)
                    full_key = len(join.probe_positions) == arity
                    # Non-trivial probe keys come out of a C-level
                    # ``map(itemgetter, ...)``; a single-position getter
                    # yields the bare value, so the probe cache is keyed
                    # by value and the probe tuple is built only on a
                    # cache miss.
                    mapped = join.probe_positions and not full_key
                    scalar = len(join.probe_positions) == 1
                    miss_key = "(pk,)" if scalar else "pk"
                    if join.mode == DIRECT:
                        if fused_stage:
                            emit_fused_prologue()
                        w.emit(f"data = REL_{s}_{j}.data")
                        if not fused_stage:
                            w.emit("out_k = []")
                            w.emit("out_p = []")
                            w.emit("ka = out_k.append")
                            w.emit("pa = out_p.append")
                        if full_key:
                            w.emit("lookups += len(dks)")
                        else:
                            w.emit("cache = {}")
                            w.emit("cget = cache.get")
                        if full_key and probe == "dk":
                            # Identity probe: the dict lookups run inside
                            # ``map`` at C speed, consumed by the zip.
                            w.emit(
                                "for dk, dp, val in "
                                "zip(dks, dps, map(data.get, dks)):"
                            )
                        elif mapped:
                            w.emit(
                                "for dk, dp, pk in "
                                f"zip(dks, dps, map(PG_{s}_{j}, dks)):"
                            )
                        else:
                            w.emit("for dk, dp in zip(dks, dps):")
                        with w.block():
                            if full_key and probe == "dk":
                                pass
                            elif full_key:
                                w.emit(f"val = data.get({probe})")
                            else:
                                if not mapped:
                                    w.emit(f"pk = {probe}")
                                w.emit("val = cget(pk, MISS)")
                                w.emit("if val is MISS:")
                                with w.block():
                                    w.emit("lookups += 1")
                                    w.emit(
                                        "val = data.get("
                                        + (miss_key if mapped else "pk")
                                        + ")"
                                    )
                                    w.emit("cache[pk] = val")
                                w.emit("else:")
                                with w.block():
                                    w.emit("shared += 1")
                            w.emit("if val is None:")
                            with w.block():
                                w.emit("continue")
                            w.emit(f"prod = {ops.mul('dp', 'val')}")
                            w.emit(f"if {ops.nonzero('prod')}:")
                            with w.block():
                                if fused_stage:
                                    emit_survivor("dk")
                                else:
                                    w.emit("ka(dk)")
                                    w.emit("pa(prod)")
                    elif join.mode == INDEXED:
                        extend = _proj("sk", join.extend_positions)
                        if fused_stage:
                            emit_fused_prologue()
                        w.emit(f"groups = IDX_{s}_{j}.groups")
                        w.emit(f"data = REL_{s}_{j}.data")
                        if not fused_stage:
                            w.emit("out_k = []")
                            w.emit("out_p = []")
                            w.emit("ka = out_k.append")
                            w.emit("pa = out_p.append")
                        if full_key:
                            w.emit("lookups += len(dks)")
                        else:
                            w.emit("cache = {}")
                            w.emit("cget = cache.get")
                        if mapped:
                            w.emit(
                                "for dk, dp, pk in "
                                f"zip(dks, dps, map(PG_{s}_{j}, dks)):"
                            )
                        else:
                            w.emit("for dk, dp in zip(dks, dps):")
                        with w.block():
                            if full_key:
                                w.emit(f"bucket = groups.get({probe})")
                            else:
                                if not mapped:
                                    w.emit(f"pk = {probe}")
                                w.emit("bucket = cget(pk, MISS)")
                                w.emit("if bucket is MISS:")
                                with w.block():
                                    w.emit("lookups += 1")
                                    w.emit(
                                        "bucket = groups.get("
                                        + (miss_key if mapped else "pk")
                                        + ")"
                                    )
                                    w.emit("cache[pk] = bucket")
                                w.emit("else:")
                                with w.block():
                                    w.emit("shared += 1")
                            w.emit("if not bucket:")
                            with w.block():
                                w.emit("continue")
                            w.emit("matches += len(bucket)")
                            w.emit("for sk in bucket:")
                            with w.block():
                                w.emit(f"prod = {ops.mul('dp', 'data[sk]')}")
                                w.emit(f"if {ops.is_zero('prod')}:")
                                with w.block():
                                    w.emit("continue")
                                if fused_stage:
                                    w.emit(f"nk = dk + {extend}")
                                    emit_survivor("nk")
                                else:
                                    w.emit(f"ka(dk + {extend})")
                                    w.emit("pa(prod)")
                    else:  # CROSS
                        extend = _proj("sk", join.extend_positions)
                        w.emit(f"data = REL_{s}_{j}.data")
                        w.emit("matches += len(data) * len(dks)")
                        w.emit("entries = list(data.items())")
                        w.emit("out_k = []")
                        w.emit("out_p = []")
                        w.emit("ka = out_k.append")
                        w.emit("pa = out_p.append")
                        w.emit("for dk, dp in zip(dks, dps):")
                        with w.block():
                            w.emit("for sk, sp in entries:")
                            with w.block():
                                w.emit(f"prod = {ops.mul('dp', 'sp')}")
                                w.emit(f"if {ops.is_zero('prod')}:")
                                with w.block():
                                    w.emit("continue")
                                w.emit(f"ka(dk + {extend})")
                                w.emit("pa(prod)")
                    if fused_stage:
                        emit_fused_epilogue()
                    else:
                        w.emit("dks = out_k")
                        w.emit("dps = out_p")
                        w.emit("if not dks:")
                        with w.block():
                            w.emit("return")
                    arity += len(join.extend_positions)

                if fuse:
                    arity = len(step.out_positions)
                    continue

                if step.guard is not None:
                    gproj = _proj("dk", step.guard_positions, arity)
                    _emit_sink(w, ops, f"GREL_{s}", gproj)

                if oproj == "dk" and step.lift is None:
                    # Identity marginalization: distinct keys, nothing to
                    # aggregate, payloads already non-zero (the incoming
                    # delta is coalesced and every stage filters zeros) —
                    # the view write is the only remaining effect.
                    _emit_sink(w, ops, f"VREL_{s}", "dk")
                    w.emit("if stats is not None:")
                    with w.block():
                        w.emit(f"stats.record_delta(LBL_{s}, len(dks))")
                elif not step.out_positions:
                    # Scalar marginalization (aggregation tail): every key
                    # projects to ``()``, so the whole "aggregate by key"
                    # dict degenerates to one left-fold over the payload
                    # column — in delta order, exactly the order the
                    # oracle's single-key dict accumulates in.
                    if step.lift is not None:
                        lifted = ops.mul(
                            "dp", f"LIFT_{s}(dk[{step.lift_position}])"
                        )
                        w.emit("tot = None")
                        w.emit("for dk, dp in zip(dks, dps):")
                        with w.block():
                            w.emit(f"dp = {lifted}")
                            w.emit(
                                "tot = dp if tot is None else "
                                + ops.add("tot", "dp")
                            )
                    elif ops.add_op == "+":
                        # Declaring ``add_operator = "+"`` asserts ring
                        # addition is the Python operator on numeric
                        # payloads, so sum()'s C-level fold applies.  The
                        # leading int 0 is additively inert (a -0.0 total
                        # degrades to 0.0, which the zero filter below
                        # drops either way).
                        w.emit("tot = sum(dps)")
                    else:
                        w.emit("tot = None")
                        w.emit("for dp in dps:")
                        with w.block():
                            w.emit(
                                "tot = dp if tot is None else "
                                + ops.add("tot", "dp")
                            )
                    w.emit(f"if tot is not None and {ops.nonzero('tot')}:")
                    with w.block():
                        w.emit("dks = [()]")
                        w.emit("dps = [tot]")
                        _emit_sink(w, ops, f"VREL_{s}", "dk")
                    w.emit("else:")
                    with w.block():
                        w.emit("dks = []")
                        w.emit("dps = []")
                    w.emit("if stats is not None:")
                    with w.block():
                        w.emit(f"stats.record_delta(LBL_{s}, len(dks))")
                    if s + 1 < len(plan.steps):
                        w.emit("if not dks:")
                        with w.block():
                            w.emit("return")
                else:
                    use_og = step.lift is None and oproj != "dk"
                    # ``add_operator = "+"`` rings accumulate with a
                    # branch-free ``get(okey, ZERO) + dp`` — the ZERO
                    # seed is additively inert under Python ``+`` (the
                    # sum() argument above), saving the None test per
                    # delta entry.
                    if ops.add_op == "+":
                        accumulate = "agg[okey] = aget(okey, ZERO) + dp"
                    else:
                        accumulate = None
                    w.emit("agg = {}")
                    w.emit("aget = agg.get")
                    if use_og:
                        # Projection via a mapped itemgetter; a single
                        # position yields bare values, so the agg dict is
                        # value-keyed and the sink boxes survivors.
                        w.emit(
                            f"for okey, dp in zip(map(OG_{s}, dks), dps):"
                        )
                        with w.block():
                            if accumulate is not None:
                                w.emit(accumulate)
                            else:
                                w.emit("prev = aget(okey)")
                                w.emit(
                                    "agg[okey] = dp if prev is None else "
                                    + ops.add("prev", "dp")
                                )
                    else:
                        w.emit("for dk, dp in zip(dks, dps):")
                        with w.block():
                            w.emit(f"okey = {oproj}")
                            if step.lift is not None:
                                lifted = ops.mul(
                                    "dp", f"LIFT_{s}(dk[{step.lift_position}])"
                                )
                                w.emit(f"dp = {lifted}")
                            if accumulate is not None:
                                w.emit(accumulate)
                            else:
                                w.emit("prev = agg.get(okey)")
                                w.emit(
                                    "agg[okey] = dp if prev is None else "
                                    + ops.add("prev", "dp")
                                )
                    _emit_agg_sink(
                        w,
                        ops,
                        f"VREL_{s}",
                        wrap=use_og and len(step.out_positions) == 1,
                    )
                    w.emit("if stats is not None:")
                    with w.block():
                        w.emit(f"stats.record_delta(LBL_{s}, len(dks))")
                    if s + 1 < len(plan.steps):
                        w.emit("if not dks:")
                        with w.block():
                            w.emit("return")
                arity = len(step.out_positions)
        w.emit("finally:")
        with w.block():
            w.emit("if COUNTER.enabled:")
            with w.block():
                w.emit("if lookups:")
                with w.block():
                    w.emit('COUNTER.bump("lookup", lookups)')
                w.emit("if matches:")
                with w.block():
                    w.emit('COUNTER.bump("enum", matches)')
            w.emit("if stats is not None and (lookups or shared):")
            with w.block():
                w.emit("stats.record_probe_sharing(lookups, shared)")


def _delta_source(plan: DeltaPlan) -> str:
    ops = _Ops(plan.ring)
    body = _Writer(indent=1)
    _emit_push(body, plan, ops)
    body.emit()
    _emit_push_batch(body, plan, ops)
    return _wrap_factory(body, _delta_env_names(plan), "push, push_batch")


# ----------------------------------------------------------------------
# Enum-kernel source
# ----------------------------------------------------------------------


def _enum_env_names(plan: EnumPlan) -> list[str]:
    names = ["MUL", "IS_ZERO", "ZERO", "ONE", "COUNTER", "MISS"]
    for i in range(len(plan.prefix_probes)):
        names.append(f"PRE_{i}")
    for d, step in enumerate(plan.steps):
        names.append(f"GUARD_{d}")
        names.append(f"IDX_{d}")
        names.append(f"GVARS_{d}")
        names.append(f"NAME_{d}")
        for k in range(len(step.leaf_probes)):
            names.append(f"LEAF_{d}_{k}")
        for k in range(len(step.post_probes)):
            names.append(f"POST_{d}_{k}")
    return names


def _enum_env(plan: EnumPlan) -> dict[str, Any]:
    ring = plan.ring
    env: dict[str, Any] = {
        "MUL": ring.mul,
        "IS_ZERO": ring.is_zero,
        "ZERO": ring.zero,
        "ONE": ring.one,
        "COUNTER": COUNTER,
        "MISS": _MISS,
    }
    for i, (view, _) in enumerate(plan.prefix_probes):
        env[f"PRE_{i}"] = view
    for d, step in enumerate(plan.steps):
        env[f"GUARD_{d}"] = step.guard
        env[f"IDX_{d}"] = step.index
        env[f"GVARS_{d}"] = step.index.group_vars
        env[f"NAME_{d}"] = step.variable
        for k, (leaf, _) in enumerate(step.leaf_probes):
            env[f"LEAF_{d}_{k}"] = leaf
        for k, (view, _) in enumerate(step.post_probes):
            env[f"POST_{d}_{k}"] = view
    return env


def _slot_tuple(positions: tuple[int, ...]) -> str:
    if not positions:
        return "()"
    inner = ", ".join(f"s{i}" for i in positions)
    if len(positions) == 1:
        return f"({inner},)"
    return f"({inner})"


def _emit_iterate(w: _Writer, plan: EnumPlan, ops: _Ops) -> None:
    """The generated enumeration walk, mirroring :meth:`EnumPlan.iterate`.

    The explicit-stack driver becomes literal nested loops, one block
    per free variable: entering a depth issues the oracle's guard probe
    (bucket iteration, or a single full-key membership probe for a
    prebound value), each surviving candidate binds its named slot local
    and runs the unrolled leaf/bound-view probes, and the innermost
    depth flushes the op counters and yields the literal head tuple.
    Probe order, zero tests, ring-operation order (including the
    ``p = mul(p, factor)`` step with ``factor`` starting at ``one``),
    and counter accounting match the interpreted plan bit for bit.
    """
    steps = plan.steps
    last = len(steps) - 1
    w.emit("def iterate(prebound=None, stats=None, epoch=None):")
    with w.block():
        w.emit("lookups = 0")
        w.emit("enums = 0")
        w.emit("guard_probes = 0")
        w.emit("if stats is not None:")
        with w.block():
            w.emit("stats.record_compiled_enumeration()")
        w.emit("try:")
        with w.block():
            w.emit("if epoch is None:")
            with w.block():
                w.emit("data_of = None")
            w.emit("else:")
            with w.block():
                w.emit("data_of = epoch.data_of")
            w.emit("payload = ONE")
            for i in range(len(plan.prefix_probes)):
                # Prefix probes precede every free step, so no slot is
                # bound yet and the probe key is always the empty tuple.
                w.emit("lookups += 1")
                w.emit(
                    f"vdata = PRE_{i}.data if data_of is None "
                    f"else data_of(PRE_{i})"
                )
                w.emit("factor = vdata.get(())")
                w.emit("if factor is None:")
                with w.block():
                    w.emit("return")
                w.emit(f"payload = {ops.mul('payload', 'factor')}")
                w.emit(f"if {ops.is_zero('payload')}:")
                with w.block():
                    w.emit("return")
            # Dict bindings: live relation attributes, or the epoch's
            # frozen dicts — same grouping order as the oracle.
            w.emit("if data_of is None:")
            with w.block():
                for d in range(len(steps)):
                    w.emit(f"gd_{d} = GUARD_{d}.data")
                for d in range(len(steps)):
                    w.emit(f"gr_{d} = IDX_{d}.groups")
                for d, step in enumerate(steps):
                    for k in range(len(step.leaf_probes)):
                        w.emit(f"ld_{d}_{k} = LEAF_{d}_{k}.data")
                for d, step in enumerate(steps):
                    for k in range(len(step.post_probes)):
                        w.emit(f"pd_{d}_{k} = POST_{d}_{k}.data")
            w.emit("else:")
            with w.block():
                for d in range(len(steps)):
                    w.emit(f"gd_{d} = data_of(GUARD_{d})")
                for d in range(len(steps)):
                    w.emit(f"gr_{d} = epoch.groups_of(GUARD_{d}, GVARS_{d})")
                for d, step in enumerate(steps):
                    for k in range(len(step.leaf_probes)):
                        w.emit(f"ld_{d}_{k} = data_of(LEAF_{d}_{k})")
                for d, step in enumerate(steps):
                    for k in range(len(step.post_probes)):
                        w.emit(f"pd_{d}_{k} = data_of(POST_{d}_{k})")
            w.emit("if prebound:")
            with w.block():
                for d in range(len(steps)):
                    w.emit(f"pv_{d} = prebound.get(NAME_{d}, MISS)")
            w.emit("else:")
            with w.block():
                for d in range(len(steps)):
                    w.emit(f"pv_{d} = MISS")

            def emit_depth(d: int) -> None:
                step = steps[d]
                slot = step.var_slot
                backtrack = "return" if d == 0 else "continue"
                w.emit(f"# depth {d} ({step.variable})")
                w.emit("guard_probes += 1")
                w.emit("lookups += 1")
                w.emit(f"if pv_{d} is MISS:")
                with w.block():
                    group_key = _slot_tuple(step.group_positions)
                    w.emit(f"cands_{d} = gr_{d}.get({group_key})")
                    w.emit(f"if not cands_{d}:")
                    with w.block():
                        w.emit(backtrack)
                    w.emit(f"checked_{d} = False")
                w.emit("else:")
                with w.block():
                    w.emit(f"s{slot} = pv_{d}")
                    w.emit(f"probe = {_slot_tuple(step.probe_positions)}")
                    w.emit(f"if probe not in gd_{d}:")
                    with w.block():
                        w.emit(backtrack)
                    w.emit(f"cands_{d} = (probe,)")
                    w.emit(f"checked_{d} = True")
                w.emit(f"for key_{d} in cands_{d}:")
                with w.block():
                    w.emit(f"if not checked_{d}:")
                    with w.block():
                        w.emit("enums += 1")
                    w.emit(f"s{slot} = key_{d}[{step.var_pos}]")
                    p_in = "payload" if d == 0 else f"p_{d - 1}"
                    factor = "ONE"
                    for k in range(len(step.leaf_probes)):
                        w.emit("lookups += 1")
                        key_expr = _slot_tuple(step.leaf_probes[k][1])
                        w.emit(f"val = ld_{d}_{k}.get({key_expr})")
                        w.emit("if val is None:")
                        with w.block():
                            w.emit("continue")
                        w.emit(f"factor = {ops.mul(factor, 'val')}")
                        factor = "factor"
                    w.emit(f"p_{d} = {ops.mul(p_in, factor)}")
                    w.emit(f"if {ops.is_zero(f'p_{d}')}:")
                    with w.block():
                        w.emit("continue")
                    for k in range(len(step.post_probes)):
                        w.emit("lookups += 1")
                        key_expr = _slot_tuple(step.post_probes[k][1])
                        w.emit(f"val = pd_{d}_{k}.get({key_expr})")
                        w.emit("if val is None:")
                        with w.block():
                            w.emit("continue")
                        w.emit(f"p_{d} = {ops.mul(f'p_{d}', 'val')}")
                        w.emit(f"if {ops.is_zero(f'p_{d}')}:")
                        with w.block():
                            w.emit("continue")
                    if d == last:
                        w.emit("if COUNTER.enabled:")
                        with w.block():
                            w.emit("if lookups:")
                            with w.block():
                                w.emit('COUNTER.bump("lookup", lookups)')
                                w.emit("lookups = 0")
                            w.emit("if enums:")
                            with w.block():
                                w.emit('COUNTER.bump("enum", enums)')
                                w.emit("enums = 0")
                        head = _slot_tuple(plan.head_positions)
                        w.emit(f"yield {head}, p_{d}")
                    else:
                        emit_depth(d + 1)

            emit_depth(0)
        w.emit("finally:")
        with w.block():
            w.emit("if COUNTER.enabled:")
            with w.block():
                w.emit("if lookups:")
                with w.block():
                    w.emit('COUNTER.bump("lookup", lookups)')
                w.emit("if enums:")
                with w.block():
                    w.emit('COUNTER.bump("enum", enums)')
            w.emit("if stats is not None and guard_probes:")
            with w.block():
                w.emit("stats.record_enum_probes(guard_probes)")


def _enum_source(plan: EnumPlan) -> str:
    ops = _Ops(plan.ring)
    body = _Writer(indent=1)
    _emit_iterate(body, plan, ops)
    return _wrap_factory(body, _enum_env_names(plan), "iterate")


# ----------------------------------------------------------------------
# Shape cache and kernel objects
# ----------------------------------------------------------------------

#: shape key -> (source, exec'd ``_make`` factory).  Process-global so
#: identical shapes across engines and shards compile exactly once.
_FACTORY_CACHE: dict[tuple, tuple[str, Any]] = {}
_CACHE_LOCK = threading.Lock()


def _factory_for(shape: tuple, build_source) -> tuple[tuple[str, Any], bool]:
    """``((source, factory), cache_hit)`` for a plan shape."""
    with _CACHE_LOCK:
        entry = _FACTORY_CACHE.get(shape)
    if entry is not None:
        return entry, True
    source = build_source()
    namespace: dict[str, Any] = {}
    exec(compile(source, f"<repro-codegen:{shape[0]}>", "exec"), namespace)
    entry = (source, namespace["_make"])
    with _CACHE_LOCK:
        existing = _FACTORY_CACHE.get(shape)
        if existing is not None:
            return existing, True
        _FACTORY_CACHE[shape] = entry
    return entry, False


def shape_cache_size() -> int:
    """Number of distinct plan shapes compiled in this process."""
    with _CACHE_LOCK:
        return len(_FACTORY_CACHE)


def clear_shape_cache() -> None:
    """Drop all cached factories (tests only)."""
    with _CACHE_LOCK:
        _FACTORY_CACHE.clear()


class DeltaKernel:
    """A source-generated write-path kernel for one :class:`DeltaPlan`.

    ``push(key, payload, stats)`` and ``push_batch(keys, pays, stats)``
    are the exec-compiled functions; ``source`` is the generated factory
    source (shared across every plan of the same shape; dumped by
    ``python -m repro explain --kernel-source``).
    """

    __slots__ = ("plan", "source", "push", "push_batch")

    def __init__(self, plan: DeltaPlan, source: str, push, push_batch):
        self.plan = plan
        self.source = source
        self.push = push
        self.push_batch = push_batch

    def __reduce__(self):
        return (_rebuild_delta_kernel, (self.plan,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaKernel({self.plan.relation_name!r}, "
            f"steps={len(self.plan.steps)})"
        )


class EnumKernel:
    """A source-generated read-path kernel for one :class:`EnumPlan`."""

    __slots__ = ("plan", "source", "iterate")

    def __init__(self, plan: EnumPlan, source: str, iterate):
        self.plan = plan
        self.source = source
        self.iterate = iterate

    def __reduce__(self):
        return (_rebuild_enum_kernel, (self.plan,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EnumKernel(steps={len(self.plan.steps)})"


def compile_delta_kernel(
    plan: DeltaPlan, info: Optional[dict] = None
) -> DeltaKernel:
    """Generate (or fetch from the shape cache) the kernel for ``plan``."""
    start = perf_counter()
    shape = _delta_shape(plan)
    (source, make), hit = _factory_for(shape, lambda: _delta_source(plan))
    push, push_batch = make(_delta_env(plan))
    kernel = DeltaKernel(plan, source, push, push_batch)
    if info is not None:
        info["kernels"] += 1
        if hit:
            info["cache_hits"] += 1
        info["time_ms"] += (perf_counter() - start) * 1000.0
    return kernel


def compile_enum_kernel(
    plan: EnumPlan, info: Optional[dict] = None
) -> EnumKernel:
    """Generate (or fetch from the shape cache) the kernel for ``plan``."""
    start = perf_counter()
    shape = _enum_shape(plan)
    (source, make), hit = _factory_for(shape, lambda: _enum_source(plan))
    iterate = make(_enum_env(plan))
    kernel = EnumKernel(plan, source, iterate)
    if info is not None:
        info["kernels"] += 1
        if hit:
            info["cache_hits"] += 1
        info["time_ms"] += (perf_counter() - start) * 1000.0
    return kernel


def _rebuild_delta_kernel(plan: DeltaPlan) -> DeltaKernel:
    return compile_delta_kernel(plan)


def _rebuild_enum_kernel(plan: EnumPlan) -> EnumKernel:
    return compile_enum_kernel(plan)
