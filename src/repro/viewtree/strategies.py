"""The four maintenance strategies compared in Fig. 4 of the paper.

Two orthogonal dimensions (Section 4.1):

* **eager vs lazy** — propagate updates through the view tree immediately,
  or only update the input relations and construct the output on an
  enumeration request;
* **list vs fact** — keep the query output as a flat materialized list of
  tuples, or factorized over the views of the view tree.

======================  =============================================
``eager-fact``          F-IVM: eager view-tree deltas + factorized
                        enumeration (constant update & delay for
                        q-hierarchical queries).
``eager-list``          DBToaster-style: eagerly maintain the flat
                        output via delta queries; enumeration scans it.
``lazy-list``           Delta-query baseline: inputs only; recompute
                        the flat output from scratch on request.
``lazy-fact``           Hybrid: inputs only; (re)build the view tree on
                        request, then enumerate factorized.
======================  =============================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterator

from ..data.database import Database
from ..data.update import Update
from ..delta.engine import DeltaQueryEngine
from ..naive.evaluator import evaluate
from ..obs import Observable, observed, observed_enumeration
from ..query.ast import Query
from ..query.variable_order import VariableOrder
from ..rings.lifting import LiftingMap
from .engine import ViewTreeEngine


class MaintenanceStrategy(Observable, ABC):
    """Common interface: feed updates, request full enumeration."""

    name: str

    @abstractmethod
    def apply(self, update: Update) -> None:
        """Process one single-tuple update."""

    @observed
    def apply_batch(self, batch) -> None:
        """Process a batch of updates (default: per-update loop).

        Lazy strategies only touch the inputs per update, so the loop is
        already optimal for them; ``eager-fact`` overrides this with the
        view-tree batch kernel.
        """
        for update in batch:
            self.apply(update)

    @abstractmethod
    def enumerate(self) -> Iterator[tuple[tuple, Any]]:
        """Enumerate all output tuples (a full enumeration request)."""

    def enumerate_count(self) -> int:
        """Drain a full enumeration and return the tuple count.

        When a stats recorder is attached, per-tuple enumeration delays
        are sampled into it.
        """
        iterator = self.enumerate()
        stats = self._maintenance_stats
        if stats is not None:
            iterator = observed_enumeration(stats, iterator)
        return sum(1 for _ in iterator)


class EagerFact(MaintenanceStrategy):
    """Eager propagation, factorized output (F-IVM)."""

    name = "eager-fact"

    def __init__(
        self,
        query: Query,
        database: Database,
        order: VariableOrder | None = None,
        lifting: LiftingMap | None = None,
        compile_plans: bool = True,
        compile_enum: bool = True,
        codegen: bool = True,
    ):
        self.engine = ViewTreeEngine(
            query,
            database,
            order,
            lifting,
            compile_plans=compile_plans,
            compile_enum=compile_enum,
            codegen=codegen,
        )

    def _propagate_stats(self, stats) -> None:
        self.engine._maintenance_stats = stats

    @observed
    def apply(self, update: Update) -> None:
        self.engine.apply(update)

    @observed
    def apply_batch(self, batch) -> None:
        """Batch maintenance through the engine's three-way heuristic
        (compiled-batch / per-tuple / rebuild)."""
        self.engine.apply_batch(list(batch))

    def enumerate(self) -> Iterator[tuple[tuple, Any]]:
        return self.engine.enumerate()


class EagerList(MaintenanceStrategy):
    """Eager propagation, flat materialized output (DBToaster-style).

    Every update triggers a delta query whose result is merged into the
    flat output list; the cost per update is proportional to the number
    of affected output tuples — the reason ``eager-fact`` dominates it at
    high update rates in Fig. 4.
    """

    name = "eager-list"

    def __init__(
        self,
        query: Query,
        database: Database,
        lifting: LiftingMap | None = None,
    ):
        self.engine = DeltaQueryEngine(query, database, lifting, eager=True)

    def _propagate_stats(self, stats) -> None:
        self.engine._maintenance_stats = stats

    @observed
    def apply(self, update: Update) -> None:
        self.engine.update(update)

    def enumerate(self) -> Iterator[tuple[tuple, Any]]:
        return self.engine.output.items()


class LazyList(MaintenanceStrategy):
    """Lazy, flat output: recompute from scratch on each request."""

    name = "lazy-list"

    def __init__(
        self,
        query: Query,
        database: Database,
        lifting: LiftingMap | None = None,
    ):
        self.query = query
        self.database = database
        self.lifting = lifting if lifting is not None else LiftingMap(database.ring)
        self._output = evaluate(query, database, self.lifting)
        self._dirty = False

    @observed
    def apply(self, update: Update) -> None:
        self.database[update.relation].add(update.key, update.payload)
        self._dirty = True

    def enumerate(self) -> Iterator[tuple[tuple, Any]]:
        if self._dirty:
            if self._maintenance_stats is not None:
                self._maintenance_stats.record_lazy_refresh()
            self._output = evaluate(self.query, self.database, self.lifting)
            self._dirty = False
        return self._output.items()


class LazyFact(MaintenanceStrategy):
    """Lazy, factorized output: rebuild the view tree on request."""

    name = "lazy-fact"

    def __init__(
        self,
        query: Query,
        database: Database,
        order: VariableOrder | None = None,
        lifting: LiftingMap | None = None,
        compile_enum: bool = True,
        codegen: bool = True,
    ):
        self.query = query
        self.database = database
        self.order = order
        self.lifting = lifting
        self.compile_enum = compile_enum
        self.codegen = codegen
        # Lazy rebuilds never propagate deltas, so compiling per-anchor
        # delta plans on every rebuild would be pure overhead.  The
        # enumeration plan, by contrast, is what serves the request.
        # Enum codegen rides along: rebuilds hit the process-wide shape
        # cache, so only the first rebuild pays generation time.
        self._engine = ViewTreeEngine(
            query,
            database,
            order,
            lifting,
            compile_plans=False,
            compile_enum=compile_enum,
            codegen=codegen,
        )
        self._dirty = False

    def _propagate_stats(self, stats) -> None:
        self._engine._maintenance_stats = stats

    @observed
    def apply(self, update: Update) -> None:
        self.database[update.relation].add(update.key, update.payload)
        self._dirty = True

    def enumerate(self) -> Iterator[tuple[tuple, Any]]:
        if self._dirty:
            if self._maintenance_stats is not None:
                self._maintenance_stats.record_lazy_refresh()
            self._engine = ViewTreeEngine(
                self.query,
                self.database,
                self.order,
                self.lifting,
                compile_plans=False,
                compile_enum=self.compile_enum,
                codegen=self.codegen,
            )
            # The rebuilt tree inherits the attached recorder, if any.
            self._engine._maintenance_stats = self._maintenance_stats
            self._dirty = False
        return self._engine.enumerate()


STRATEGIES = {
    cls.name: cls for cls in (EagerFact, EagerList, LazyList, LazyFact)
}


def make_strategy(
    name: str, query: Query, database: Database, **kwargs
) -> MaintenanceStrategy:
    """Instantiate a Fig. 4 strategy by name."""
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    if factory is EagerList or factory is LazyList:
        kwargs.pop("order", None)
        kwargs.pop("compile_enum", None)
        kwargs.pop("codegen", None)
    if factory is LazyFact:
        kwargs.pop("compile_plans", None)
    return factory(query, database, **kwargs)
