"""Attachment protocol between engines and :class:`MaintenanceStats`.

Engines opt into observability by mixing in :class:`Observable` and
decorating their ``apply``/``apply_batch`` (or ``update``/``update_batch``)
methods with :func:`observed`.  The cost when no recorder is attached is
one attribute read and a ``None`` check per call.

Engines stack — the :class:`~repro.core.engine.IVMEngine` facade wraps a
view-tree engine, a cascade wraps two of them — so a recorder shared down
a stack would count every update once per layer.  :func:`observed` guards
against that: only the *outermost* observed call on a given recorder
records latency; nested calls run un-instrumented.  Structural hooks
(delta sizes, rebalance events) are not guarded, because they fire at
exactly one layer.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Iterable, Iterator

from .stats import MaintenanceStats

_STATS_ATTR = "_maintenance_stats"


class Observable:
    """Mixin: lets a :class:`MaintenanceStats` recorder be attached."""

    _maintenance_stats: MaintenanceStats | None = None

    @property
    def stats(self) -> MaintenanceStats | None:
        """The attached recorder, or ``None`` when not observing."""
        return self._maintenance_stats

    def attach_stats(
        self, stats: MaintenanceStats | None = None
    ) -> MaintenanceStats:
        """Attach a recorder (a fresh one by default) and return it.

        Engines holding sub-engines or partitioned relations override
        :meth:`_propagate_stats` to share the recorder downward, so one
        ``attach_stats`` on a facade observes the whole stack.
        """
        if stats is None:
            stats = MaintenanceStats(engine=type(self).__name__)
        self._maintenance_stats = stats
        self._propagate_stats(stats)
        return stats

    def detach_stats(self) -> MaintenanceStats | None:
        """Detach and return the recorder (sub-engines detach too)."""
        stats = self._maintenance_stats
        self._maintenance_stats = None
        self._propagate_stats(None)
        return stats

    def _propagate_stats(self, stats: MaintenanceStats | None) -> None:
        """Share ``stats`` with owned sub-structures (default: none)."""


def observed(method):
    """Decorate an engine update entry point with latency recording.

    The method's name selects the latency series: names ending in
    ``batch`` record into the batch histogram, everything else into the
    per-update histogram.  Recording happens only at the outermost
    observed frame per recorder (see module docstring).
    """
    kind = method.__name__

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        stats = getattr(self, _STATS_ATTR, None)
        if stats is None or stats._depth:
            return method(self, *args, **kwargs)
        stats._depth += 1
        start = time.perf_counter()
        try:
            return method(self, *args, **kwargs)
        finally:
            stats._depth -= 1
            stats.record_update(time.perf_counter() - start, kind)

    return wrapper


def observed_enumeration(
    stats: MaintenanceStats | None, iterable: Iterable
) -> Iterator:
    """Yield from ``iterable`` recording per-tuple enumeration delay.

    The delay of a tuple is the producer time between the consumer's
    ``next()`` call and the tuple being yielded — consumer time between
    tuples is excluded, matching the paper's notion of enumeration delay.
    """
    if stats is None:
        yield from iterable
        return
    stats.record_enumeration()
    iterator = iter(iterable)
    while True:
        start = time.perf_counter()
        try:
            item = next(iterator)
        except StopIteration:
            return
        stats.record_enum_delay(time.perf_counter() - start)
        yield item


def share_stats(child: Any, stats: MaintenanceStats | None) -> None:
    """Share (or clear) a recorder on a sub-engine, recursively.

    Used by ``_propagate_stats`` overrides; unlike :meth:`attach_stats`
    it never fabricates a recorder, so passing ``None`` detaches.
    """
    if isinstance(child, Observable):
        child._maintenance_stats = stats
        child._propagate_stats(stats)


def attach_to_all(engines: Iterable[Any], stats: MaintenanceStats) -> None:
    """Share one recorder across several :class:`Observable` engines."""
    for engine in engines:
        if isinstance(engine, Observable):
            engine.attach_stats(stats)
