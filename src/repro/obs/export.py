"""Machine-readable export of maintenance statistics.

The stats payload is versioned (``repro.obs/1``); the benchmark-table
payload (``repro.bench/1``) lives in :mod:`repro.bench.harness`, which
builds on the helpers here.  Keep both schemas append-only: downstream
tooling diffs these files across commits, so existing keys must not be
renamed or change meaning.
"""

from __future__ import annotations

import json
import os
from typing import Any

from .stats import MaintenanceStats

#: Version tag of the stats JSON payload.
STATS_SCHEMA = "repro.obs/1"


def stats_record(
    stats: MaintenanceStats, meta: dict[str, Any] | None = None
) -> dict:
    """The full, schema-tagged JSON document for one recorder."""
    return {
        "schema": STATS_SCHEMA,
        "engine": stats.engine,
        "meta": dict(meta or {}),
        "stats": stats.to_dict(),
    }


def dump_json(record: dict, path: str) -> str:
    """Write one JSON document; non-JSON values fall back to ``str``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, default=str)
        handle.write("\n")
    return path


def write_stats_json(
    path: str, stats: MaintenanceStats, meta: dict[str, Any] | None = None
) -> str:
    """Dump one recorder to ``path``; returns the path written."""
    return dump_json(stats_record(stats, meta), path)
