"""Scoped, nestable operation counting and wall-clock timers.

:mod:`repro.data.opcounter` provides the process-wide elementary-operation
counter that the data structures report to.  This module layers two
ergonomic instruments on top of it:

* :func:`op_scope` — a context manager combining a :func:`counting` block
  with a wall-clock measurement.  Scopes nest: the inner scope observes
  only its own block, and its counts still roll up into the outer scope
  (the operations really did happen during the outer block too).
* :class:`StopWatch` — accumulating named timers for coarse phase
  breakdowns (preprocessing vs updates vs enumeration).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from ..data.opcounter import counting


class OpScope:
    """Result carrier of one :func:`op_scope` block."""

    __slots__ = ("name", "counts", "seconds")

    def __init__(self, name: str):
        self.name = name
        self.counts: dict[str, int] = {}
        self.seconds: float = 0.0

    def total(self) -> int:
        """Total elementary operations observed in the scope."""
        return sum(self.counts.values())

    def __getitem__(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "ops": dict(self.counts),
            "ops_total": self.total(),
        }

    def __repr__(self) -> str:
        return (
            f"OpScope({self.name!r}, ops={self.total()}, "
            f"seconds={self.seconds:.6f})"
        )


@contextmanager
def op_scope(name: str = "scope") -> Iterator[OpScope]:
    """Measure elementary operations and wall-clock time for a block.

    Yields an :class:`OpScope` that is filled in when the block exits, so
    read it *after* the ``with`` statement::

        with op_scope("update") as scope:
            engine.apply(update)
        print(scope.total(), scope.seconds)

    Scopes nest without losing counts (see :func:`repro.data.counting`).
    """
    scope = OpScope(name)
    start = time.perf_counter()
    try:
        with counting() as counter:
            yield scope
    finally:
        scope.seconds = time.perf_counter() - start
        scope.counts = dict(counter.counts)


class StopWatch:
    """Accumulating wall-clock timers keyed by label; safely nestable."""

    __slots__ = ("totals", "calls")

    def __init__(self):
        self.totals: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    @contextmanager
    def time(self, label: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[label] = self.totals.get(label, 0.0) + elapsed
            self.calls[label] = self.calls.get(label, 0) + 1

    def seconds(self, label: str) -> float:
        return self.totals.get(label, 0.0)

    def to_dict(self) -> dict:
        return {
            label: {"seconds": self.totals[label], "calls": self.calls[label]}
            for label in self.totals
        }

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{label}={seconds:.4f}s" for label, seconds in self.totals.items()
        )
        return f"StopWatch({parts})"
