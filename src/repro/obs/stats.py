"""The :class:`MaintenanceStats` recorder shared by all engines.

One recorder captures everything the experiment sections of the paper
plot:

* per-update and per-batch **latency histograms** (Fig. 4 throughput is a
  summary of these),
* per-view **delta sizes** in view trees (the "small changes beget small
  changes" premise, measurable),
* **enumeration delay** samples — the time between consecutive output
  tuples, the quantity bounded by the O(1)-delay theorems,
* heavy/light **rebalance events** from :mod:`repro.ivme.partition`
  (migrations and global repartitions, whose amortization Fig. 7 relies
  on),
* optional **elementary-operation** totals folded in from
  :func:`repro.obs.op_scope`.

Histograms are log2-bucketed over seconds: pure-Python wall-clock numbers
are noisy, but their order of magnitude is stable, which is exactly what
a bucketed histogram preserves.  Everything serializes via
:meth:`MaintenanceStats.to_dict` into plain JSON types.

Thread safety: one recorder may be shared across threads — the sharded
coordinator drains shard enumerations on a thread pool, and the serving
front-end (:mod:`repro.serve`) commits batches on an executor thread
while the event-loop thread records reads.  Every mutating ``record_*``
method and :meth:`MaintenanceStats.merge` therefore holds the recorder's
internal lock (unattached engines never pay for it — no recorder, no
call), and the :func:`~repro.obs.instrument.observed` reentrancy depth is
tracked per *thread*, so an observed call on one thread does not suppress
recording on another.  The lock and the thread-local are dropped on
pickling (process-pool shards ship recorders inside engines) and rebuilt
fresh on unpickling.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable

#: Smallest latency bucket boundary (100 ns — below timer resolution).
_BASE = 1e-7

#: Shard-summary fields that add when the same label is merged twice.
_SUMMARY_COUNT_KEYS = frozenset(
    {
        "updates",
        "batches",
        "enumerations",
        "tuples_enumerated",
        "migrations",
        "repartitions",
        "ops",
        "batch_updates_raw",
        "batch_updates_coalesced",
        "sibling_probes",
        "sibling_probes_shared",
        "enum_compiled",
        "enum_guard_probes",
        "lazy_refreshes",
        "point_lookups",
        "lookup_shards_probed",
        "epochs_published",
        "cow_buckets_copied",
        "cow_tables_copied",
        "snapshot_reads",
        "output_delta_tuples",
        "deltas_emitted",
        "delta_tuples",
        "delta_bytes",
        "tuples_patched",
        "full_refresh_fallbacks",
        "kernels_generated",
        "shape_cache_hits",
        "codegen_fallbacks",
        "codegen_time_ms",
        "ipc_rounds",
        "ipc_commits",
        "ipc_bytes_sent",
        "ipc_bytes_received",
        "ipc_worker_failures",
        "ipc_workers_spawned",
    }
)


class RunningStat:
    """Count/total/min/max accumulator for a stream of numbers."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "RunningStat") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def to_dict(self) -> dict:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": None, "max": None, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"RunningStat(count={self.count}, mean={self.mean:.4g})"


class LatencyHistogram:
    """Log2-bucketed histogram of durations in seconds.

    Bucket ``i`` covers ``(_BASE * 2^(i-1), _BASE * 2^i]``; durations at
    or below ``_BASE`` land in bucket 0.  Percentiles are reported as the
    upper boundary of the bucket containing the requested rank, i.e. a
    conservative (over-)estimate within a factor of 2.
    """

    __slots__ = ("buckets", "stat")

    def __init__(self):
        self.buckets: dict[int, int] = {}
        self.stat = RunningStat()

    def record(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        self.stat.record(seconds)
        index = 0 if seconds <= _BASE else int(math.ceil(math.log2(seconds / _BASE)))
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def count(self) -> int:
        return self.stat.count

    def percentile(self, q: float) -> float:
        """Upper bucket boundary at quantile ``q`` in [0, 1]."""
        if not self.stat.count:
            return 0.0
        rank = max(1, math.ceil(q * self.stat.count))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return _BASE * (2.0 ** index)
        return self.stat.maximum

    def merge(self, other: "LatencyHistogram") -> None:
        self.stat.merge(other.stat)
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    def to_dict(self) -> dict:
        summary = self.stat.to_dict()
        if self.stat.count:
            summary["p50"] = self.percentile(0.50)
            summary["p95"] = self.percentile(0.95)
            summary["p99"] = self.percentile(0.99)
        summary["buckets"] = {
            f"<={_BASE * (2.0 ** index):.3g}s": self.buckets[index]
            for index in sorted(self.buckets)
        }
        return summary

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self.stat.count}, "
            f"mean={self.stat.mean:.3g}s)"
        )


class CountHistogram:
    """Log2-bucketed histogram of non-negative integer counts.

    The integer twin of :class:`LatencyHistogram`, used for quantities
    like batch sizes and queue depths whose order of magnitude is the
    interesting part.  Bucket ``i`` covers ``[2^(i-1), 2^i - 1]`` (bucket
    0 holds exact zeros), so percentiles are conservative upper bounds
    within a factor of 2, same as the latency buckets.
    """

    __slots__ = ("buckets", "stat")

    def __init__(self):
        self.buckets: dict[int, int] = {}
        self.stat = RunningStat()

    def record(self, value: int) -> None:
        if value < 0:
            value = 0
        self.stat.record(value)
        index = int(value).bit_length()
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def count(self) -> int:
        return self.stat.count

    def percentile(self, q: float) -> float:
        """Upper bucket boundary at quantile ``q`` in [0, 1]."""
        if not self.stat.count:
            return 0.0
        rank = max(1, math.ceil(q * self.stat.count))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return 0.0 if index == 0 else float(2 ** index - 1)
        return self.stat.maximum

    def merge(self, other: "CountHistogram") -> None:
        self.stat.merge(other.stat)
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    def to_dict(self) -> dict:
        summary = self.stat.to_dict()
        if self.stat.count:
            summary["p50"] = self.percentile(0.50)
            summary["p95"] = self.percentile(0.95)
            summary["p99"] = self.percentile(0.99)
        summary["buckets"] = {
            ("0" if index == 0 else f"<={2 ** index - 1}"): self.buckets[index]
            for index in sorted(self.buckets)
        }
        return summary

    def __repr__(self) -> str:
        return (
            f"CountHistogram(count={self.stat.count}, "
            f"mean={self.stat.mean:.3g})"
        )


class MaintenanceStats:
    """Structured recorder for one engine's maintenance activity."""

    def __init__(self, engine: str = "engine"):
        self.engine = engine
        #: Top-level single-tuple updates observed.
        self.updates = 0
        #: Top-level batch calls observed.
        self.batches = 0
        self.update_latency = LatencyHistogram()
        self.batch_latency = LatencyHistogram()
        #: View name -> delta-size distribution (view-tree propagation).
        self.delta_sizes: dict[str, RunningStat] = {}
        #: Per-tuple enumeration delay samples.
        self.enum_delay = LatencyHistogram()
        self.enumerations = 0
        self.tuples_enumerated = 0
        #: Heavy/light partition events (repro.ivme.partition).
        self.migrations = 0
        self.tuples_migrated = 0
        self.repartitions = 0
        #: Elementary op totals folded in via record_ops / op_scope.
        self.ops: dict[str, int] = {}
        #: Batch-kernel accounting: updates entering the compiled batch
        #: path vs. the distinct deltas surviving ring-coalescing, and
        #: sibling probes issued vs. saved by cross-delta sharing.
        self.batch_updates_raw = 0
        self.batch_updates_coalesced = 0
        self.sibling_probes = 0
        self.sibling_probes_shared = 0
        #: Read-path kernel accounting: enumerations served by a compiled
        #: EnumPlan, guard probes the kernel issued (group lookups plus
        #: prebound point checks), and lazy-strategy on-demand recomputes
        #: triggered inside enumerate().
        self.enum_compiled = 0
        self.enum_guard_probes = 0
        self.lazy_refreshes = 0
        #: Memory accounting: samples of the engine's total view size
        #: (views + guards + leaves) taken periodically during maintenance.
        self.view_size = RunningStat()
        #: View/guard name -> size-sample distribution.
        self.view_sizes: dict[str, RunningStat] = {}
        #: Point-lookup accounting: fully-prebound key lookups served and
        #: how many shard engines each one probed (unsharded lookups
        #: count one) — the counters behind the sharded early-break fix.
        self.point_lookups = 0
        self.lookup_shards_probed = 0
        #: Serving accounting (repro.serve): group commits by trigger,
        #: per-commit latency / batch-size / queue-depth histograms,
        #: submit and backpressure counters, and read staleness samples.
        self.submits = 0
        self.commits = 0
        self.size_commits = 0
        self.deadline_commits = 0
        self.drain_commits = 0
        self.commit_latency = LatencyHistogram()
        self.commit_batch_size = CountHistogram()
        self.commit_queue_depth = CountHistogram()
        self.backpressure_waits = 0
        self.backpressure_wait = LatencyHistogram()
        self.serve_lookups = 0
        self.read_staleness = LatencyHistogram()
        #: Commits that raised out of the engine: counted apart so the
        #: commit latency/batch-size histograms hold successes only.
        self.commit_errors = 0
        #: Epoch snapshot accounting (repro.viewtree.epoch): epochs
        #: published, snapshot-mode reads served with their end-to-end
        #: latency (the read-tail histogram), and copy-on-write work the
        #: write path paid for snapshot isolation.
        self.epochs_published = 0
        self.snapshot_reads = 0
        self.snapshot_read_latency = LatencyHistogram()
        self.cow_buckets_copied = 0
        self.cow_tables_copied = 0
        #: Output delta tuples closed over by epoch publishes (the
        #: per-epoch output change size next to the COW copy work, so
        #: delta/state ratios are visible straight from ``stats``).
        self.output_delta_tuples = 0
        #: Output change-stream accounting (repro.viewtree.changes):
        #: per-epoch deltas emitted with their tuple and wire-byte
        #: volume, subscriber patch latency, tuples patched into
        #: subscriber materializations, full-drain fallbacks (ratio
        #: threshold or epoch gap), and the delta/state ratio
        #: distribution in percent.
        self.deltas_emitted = 0
        self.delta_tuples = 0
        self.delta_bytes = 0
        self.tuples_patched = 0
        self.patch_time = LatencyHistogram()
        self.full_refresh_fallbacks = 0
        self.delta_ratio = CountHistogram()
        #: Codegen accounting (repro.viewtree.codegen): kernels exec'd
        #: from generated source, wall-clock spent generating+compiling,
        #: plan shapes served from the process-wide factory cache, and
        #: plans that fell back to the interpreter.
        self.kernels_generated = 0
        self.codegen_time_ms = 0.0
        self.shape_cache_hits = 0
        self.codegen_fallbacks = 0
        #: Worker-IPC accounting (repro.shard.worker): command
        #: round-trips to persistent shard workers, bytes shipped over
        #: the pipes (both directions), per-commit byte histogram (the
        #: "cost scales with batch, not state" evidence), worker busy
        #: time vs. coordinator wall time (utilization), time spent
        #: merging shipped stats deltas, worker crashes surfaced, and
        #: worker processes spawned (> shards means a pool rebuild).
        self.ipc_rounds = 0
        self.ipc_commits = 0
        self.ipc_bytes_sent = 0
        self.ipc_bytes_received = 0
        self.ipc_commit_bytes = CountHistogram()
        self.ipc_worker_busy_s = 0.0
        self.ipc_wall_s = 0.0
        self.ipc_workers = 0
        self.ipc_stats_merge_s = 0.0
        self.ipc_worker_failures = 0
        self.ipc_workers_spawned = 0
        #: Per-shard summaries recorded by labelled merges (sharded runs).
        self.shard_summaries: dict[str, dict] = {}
        # Recorders may be shared across threads (thread-pool shards,
        # the serve commit executor); every mutation holds this lock.
        self._lock = threading.RLock()
        # Reentrancy guard: engines stack (facade -> cascade -> view tree),
        # and only the outermost observed call should count the update.
        # Tracked per thread so concurrent observed calls on different
        # threads do not suppress each other's recording.
        self._local = threading.local()

    @property
    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    @_depth.setter
    def _depth(self, value: int) -> None:
        self._local.depth = value

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        state.pop("_local", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Recording API (called from instrumentation hooks)
    # ------------------------------------------------------------------

    def record_update(self, seconds: float, kind: str = "apply") -> None:
        """One top-level ``apply``/``update`` (or ``*_batch``) call."""
        with self._lock:
            if kind.endswith("batch"):
                self.batches += 1
                self.batch_latency.record(seconds)
            else:
                self.updates += 1
                self.update_latency.record(seconds)

    def record_delta(self, view: str, size: int) -> None:
        """Size of one delta propagated into ``view``."""
        with self._lock:
            stat = self.delta_sizes.get(view)
            if stat is None:
                stat = self.delta_sizes[view] = RunningStat()
            stat.record(size)

    def record_enumeration(self) -> None:
        with self._lock:
            self.enumerations += 1

    def record_enum_delay(self, seconds: float) -> None:
        with self._lock:
            self.enum_delay.record(seconds)
            self.tuples_enumerated += 1

    def record_view_sizes(
        self, total: int, per_view: dict[str, int] | None = None
    ) -> None:
        """One memory sample: total view size plus per-view sizes.

        Engines call this periodically during maintenance (see
        ``ViewTreeEngine.view_sample_interval``), turning the space side
        of the IVM trade-off into a recorded series.
        """
        with self._lock:
            self.view_size.record(total)
            for view, size in (per_view or {}).items():
                stat = self.view_sizes.get(view)
                if stat is None:
                    stat = self.view_sizes[view] = RunningStat()
                stat.record(size)

    def record_batch_coalesce(self, raw: int, coalesced: int) -> None:
        """One compiled-batch run: raw updates vs. surviving deltas."""
        with self._lock:
            self.batch_updates_raw += raw
            self.batch_updates_coalesced += coalesced

    def record_probe_sharing(self, issued: int, shared: int) -> None:
        """Sibling probes actually issued vs. saved by the probe cache."""
        with self._lock:
            self.sibling_probes += issued
            self.sibling_probes_shared += shared

    def record_compiled_enumeration(self) -> None:
        """One enumeration request served by a compiled EnumPlan."""
        with self._lock:
            self.enum_compiled += 1

    def record_enum_probes(self, count: int) -> None:
        """Guard probes issued by the enumeration kernel (bulk)."""
        with self._lock:
            self.enum_guard_probes += count

    def record_lazy_refresh(self) -> None:
        """One on-demand recompute inside a lazy strategy's enumerate()."""
        with self._lock:
            self.lazy_refreshes += 1

    def record_point_lookup(self, shards_probed: int = 1) -> None:
        """One fully-prebound point lookup, probing that many shards."""
        with self._lock:
            self.point_lookups += 1
            self.lookup_shards_probed += shards_probed

    def record_migration(self, moved: int, to_heavy: bool) -> None:
        with self._lock:
            self.migrations += 1
            self.tuples_migrated += moved

    def record_repartition(self, threshold: float) -> None:
        with self._lock:
            self.repartitions += 1

    def record_ops(self, counts: dict[str, int] | Iterable[tuple[str, int]]) -> None:
        items = counts.items() if isinstance(counts, dict) else counts
        with self._lock:
            for kind, amount in items:
                self.ops[kind] = self.ops.get(kind, 0) + amount

    # ------------------------------------------------------------------
    # Serving hooks (repro.serve)
    # ------------------------------------------------------------------

    def record_submit(self, count: int = 1) -> None:
        """Updates accepted into the serving queue."""
        with self._lock:
            self.submits += count

    def record_backpressure(self, seconds: float) -> None:
        """One submit blocked at the high-water mark for ``seconds``."""
        with self._lock:
            self.backpressure_waits += 1
            self.backpressure_wait.record(seconds)

    def record_commit(
        self,
        seconds: float,
        batch_size: int,
        queue_depth: int,
        trigger: str = "size",
    ) -> None:
        """One group commit: latency, batch size, queue depth at commit.

        ``trigger`` names what fired the commit — ``"size"`` (the batch
        reached the maximum size), ``"deadline"`` (the latency deadline
        expired on a partial batch), or ``"drain"`` (a shutdown/drain
        flush).
        """
        with self._lock:
            self.commits += 1
            if trigger == "deadline":
                self.deadline_commits += 1
            elif trigger == "drain":
                self.drain_commits += 1
            else:
                self.size_commits += 1
            self.commit_latency.record(seconds)
            self.commit_batch_size.record(batch_size)
            self.commit_queue_depth.record(queue_depth)

    def record_serve_read(self, staleness_seconds: float) -> None:
        """One lookup served between commits, with its read staleness.

        Staleness is the age of the oldest update submitted but not yet
        committed at the moment the read was served — 0 when the queue
        was empty (the read saw a fully fresh view).  In snapshot-read
        mode this is the published epoch's age relative to the stream:
        how long the oldest update invisible to the epoch has waited.
        """
        with self._lock:
            self.serve_lookups += 1
            self.read_staleness.record(staleness_seconds)

    def record_commit_error(self) -> None:
        """One group commit that raised out of the engine.

        Failed commits are excluded from ``commits`` and from the
        latency/batch-size/queue-depth histograms so serving percentiles
        describe successful work only.
        """
        with self._lock:
            self.commit_errors += 1

    def record_epoch_publish(
        self,
        buckets_copied: int = 0,
        tables_copied: int = 0,
        delta_tuples: int = 0,
    ) -> None:
        """One epoch publish, with the copy-on-write work it closed over.

        ``delta_tuples`` is the size of the output change delta the
        publish emitted (0 when change tracking is off), recorded next
        to the COW counters so delta/state ratios show up in ``stats``
        without running a bench.
        """
        with self._lock:
            self.epochs_published += 1
            self.cow_buckets_copied += buckets_copied
            self.cow_tables_copied += tables_copied
            self.output_delta_tuples += delta_tuples

    def record_snapshot_read(self, seconds: float) -> None:
        """One snapshot-mode read with its end-to-end latency."""
        with self._lock:
            self.snapshot_reads += 1
            self.snapshot_read_latency.record(seconds)

    def record_change_delta(self, tuples: int, bytes_: int = 0) -> None:
        """One per-epoch output delta emitted by the change tracker.

        ``bytes_`` is the columnar wire volume when the delta crossed a
        worker pipe (0 for in-process streams).
        """
        with self._lock:
            self.deltas_emitted += 1
            self.delta_tuples += tuples
            self.delta_bytes += bytes_

    def record_change_patch(
        self, seconds: float, tuples: int, ratio: float
    ) -> None:
        """One subscriber materialization patched in O(δ).

        ``ratio`` is delta size over materialization size; it lands in
        the percent-bucketed ``delta_ratio`` histogram.
        """
        with self._lock:
            self.tuples_patched += tuples
            self.patch_time.record(seconds)
            self.delta_ratio.record(int(ratio * 100))

    def record_full_refresh(self) -> None:
        """One subscriber full-drain fallback (ratio threshold or gap)."""
        with self._lock:
            self.full_refresh_fallbacks += 1

    def record_codegen(
        self,
        kernels: int,
        time_ms: float,
        cache_hits: int = 0,
        fallbacks: int = 0,
    ) -> None:
        """One engine's kernel-generation totals (recorded at attach)."""
        with self._lock:
            self.kernels_generated += kernels
            self.codegen_time_ms += time_ms
            self.shape_cache_hits += cache_hits
            self.codegen_fallbacks += fallbacks

    def record_ipc_round(
        self,
        round_trips: int,
        bytes_sent: int,
        bytes_received: int,
        busy_s: float = 0.0,
        wall_s: float = 0.0,
        workers: int = 0,
        commit: bool = False,
    ) -> None:
        """One coordinator operation against the shard-worker pool.

        ``round_trips`` counts per-worker command exchanges inside the
        operation (a broadcast over N workers is N round-trips but one
        call).  ``commit=True`` marks maintenance commits (``apply`` /
        ``apply_batch``) and feeds the per-commit byte histogram — the
        series that must stay flat as resident view state grows.
        """
        with self._lock:
            self.ipc_rounds += round_trips
            self.ipc_bytes_sent += bytes_sent
            self.ipc_bytes_received += bytes_received
            self.ipc_worker_busy_s += busy_s
            self.ipc_wall_s += wall_s
            if workers > self.ipc_workers:
                self.ipc_workers = workers
            if commit:
                self.ipc_commits += 1
                self.ipc_commit_bytes.record(bytes_sent + bytes_received)

    def record_ipc_stats_merge(self, seconds: float) -> None:
        """Time spent folding a worker's shipped stats delta."""
        with self._lock:
            self.ipc_stats_merge_s += seconds

    def record_ipc_worker_failure(self) -> None:
        """One worker crash (or dead pipe) surfaced to the coordinator."""
        with self._lock:
            self.ipc_worker_failures += 1

    def record_ipc_workers_spawned(self, count: int) -> None:
        """Worker processes spawned (pool build or rebuild)."""
        with self._lock:
            self.ipc_workers_spawned += count

    # ------------------------------------------------------------------
    # Aggregation and export
    # ------------------------------------------------------------------

    def merge(self, other: "MaintenanceStats", label: str | None = None) -> None:
        """Fold ``other`` into this recorder.

        With ``label`` (e.g. ``"shard3"``) the merge is *labelled*: the
        other recorder is summarized under that label in
        :attr:`shard_summaries`, its delta-size series are kept apart as
        ``"<label>/<view>"``, and its elementary ops roll up — but its
        update/batch counts and latency histograms do **not** add into
        the top-level series.  A shard coordinator already records every
        logical update once; adding each shard's count again would count
        broadcast updates once per shard.

        Unlabelled merges behave as before (associative recorder
        composition) and carry any shard summaries of ``other`` along.
        """
        with self._lock:
            self._merge_locked(other, label)

    def _merge_locked(self, other: "MaintenanceStats", label: str | None) -> None:
        if label is not None:
            self.shard_summaries[label] = {
                "engine": other.engine,
                "updates": other.updates,
                "batches": other.batches,
                "update_mean_s": other.update_latency.stat.mean,
                "batch_mean_s": other.batch_latency.stat.mean,
                "enumerations": other.enumerations,
                "tuples_enumerated": other.tuples_enumerated,
                "migrations": other.migrations,
                "repartitions": other.repartitions,
                "ops": sum(other.ops.values()),
                "peak_view_size": (
                    other.view_size.maximum if other.view_size.count else 0
                ),
                "batch_updates_raw": other.batch_updates_raw,
                "batch_updates_coalesced": other.batch_updates_coalesced,
                "sibling_probes": other.sibling_probes,
                "sibling_probes_shared": other.sibling_probes_shared,
                "enum_compiled": other.enum_compiled,
                "enum_guard_probes": other.enum_guard_probes,
                "lazy_refreshes": other.lazy_refreshes,
                "point_lookups": other.point_lookups,
                "lookup_shards_probed": other.lookup_shards_probed,
                "epochs_published": other.epochs_published,
                "cow_buckets_copied": other.cow_buckets_copied,
                "cow_tables_copied": other.cow_tables_copied,
                "snapshot_reads": other.snapshot_reads,
                "output_delta_tuples": other.output_delta_tuples,
                "deltas_emitted": other.deltas_emitted,
                "delta_tuples": other.delta_tuples,
                "delta_bytes": other.delta_bytes,
                "tuples_patched": other.tuples_patched,
                "full_refresh_fallbacks": other.full_refresh_fallbacks,
                "kernels_generated": other.kernels_generated,
                "codegen_time_ms": other.codegen_time_ms,
                "shape_cache_hits": other.shape_cache_hits,
                "codegen_fallbacks": other.codegen_fallbacks,
            }
            # Shard-level kernel work is real engine work; roll it
            # up into the coordinator totals like elementary ops.
            self.batch_updates_raw += other.batch_updates_raw
            self.batch_updates_coalesced += other.batch_updates_coalesced
            self.sibling_probes += other.sibling_probes
            self.sibling_probes_shared += other.sibling_probes_shared
            self.enum_compiled += other.enum_compiled
            self.enum_guard_probes += other.enum_guard_probes
            self.lazy_refreshes += other.lazy_refreshes
            self.point_lookups += other.point_lookups
            self.lookup_shards_probed += other.lookup_shards_probed
            self.epochs_published += other.epochs_published
            self.cow_buckets_copied += other.cow_buckets_copied
            self.cow_tables_copied += other.cow_tables_copied
            self.snapshot_reads += other.snapshot_reads
            self.snapshot_read_latency.merge(other.snapshot_read_latency)
            self.output_delta_tuples += other.output_delta_tuples
            self.deltas_emitted += other.deltas_emitted
            self.delta_tuples += other.delta_tuples
            self.delta_bytes += other.delta_bytes
            self.tuples_patched += other.tuples_patched
            self.patch_time.merge(other.patch_time)
            self.full_refresh_fallbacks += other.full_refresh_fallbacks
            self.delta_ratio.merge(other.delta_ratio)
            self.kernels_generated += other.kernels_generated
            self.codegen_time_ms += other.codegen_time_ms
            self.shape_cache_hits += other.shape_cache_hits
            self.codegen_fallbacks += other.codegen_fallbacks
            for view, stat in other.delta_sizes.items():
                mine = self.delta_sizes.get(f"{label}/{view}")
                if mine is None:
                    mine = self.delta_sizes[f"{label}/{view}"] = RunningStat()
                mine.merge(stat)
            for view, stat in other.view_sizes.items():
                mine = self.view_sizes.get(f"{label}/{view}")
                if mine is None:
                    mine = self.view_sizes[f"{label}/{view}"] = RunningStat()
                mine.merge(stat)
            self.view_size.merge(other.view_size)
            self.record_ops(other.ops)
            return
        self.updates += other.updates
        self.batches += other.batches
        self.update_latency.merge(other.update_latency)
        self.batch_latency.merge(other.batch_latency)
        for view, stat in other.delta_sizes.items():
            mine = self.delta_sizes.get(view)
            if mine is None:
                mine = self.delta_sizes[view] = RunningStat()
            mine.merge(stat)
        self.view_size.merge(other.view_size)
        for view, stat in other.view_sizes.items():
            mine = self.view_sizes.get(view)
            if mine is None:
                mine = self.view_sizes[view] = RunningStat()
            mine.merge(stat)
        self.enum_delay.merge(other.enum_delay)
        self.enumerations += other.enumerations
        self.tuples_enumerated += other.tuples_enumerated
        self.migrations += other.migrations
        self.tuples_migrated += other.tuples_migrated
        self.repartitions += other.repartitions
        self.batch_updates_raw += other.batch_updates_raw
        self.batch_updates_coalesced += other.batch_updates_coalesced
        self.sibling_probes += other.sibling_probes
        self.sibling_probes_shared += other.sibling_probes_shared
        self.enum_compiled += other.enum_compiled
        self.enum_guard_probes += other.enum_guard_probes
        self.lazy_refreshes += other.lazy_refreshes
        self.point_lookups += other.point_lookups
        self.lookup_shards_probed += other.lookup_shards_probed
        self.submits += other.submits
        self.commits += other.commits
        self.size_commits += other.size_commits
        self.deadline_commits += other.deadline_commits
        self.drain_commits += other.drain_commits
        self.commit_latency.merge(other.commit_latency)
        self.commit_batch_size.merge(other.commit_batch_size)
        self.commit_queue_depth.merge(other.commit_queue_depth)
        self.backpressure_waits += other.backpressure_waits
        self.backpressure_wait.merge(other.backpressure_wait)
        self.serve_lookups += other.serve_lookups
        self.read_staleness.merge(other.read_staleness)
        self.commit_errors += other.commit_errors
        self.epochs_published += other.epochs_published
        self.snapshot_reads += other.snapshot_reads
        self.snapshot_read_latency.merge(other.snapshot_read_latency)
        self.cow_buckets_copied += other.cow_buckets_copied
        self.cow_tables_copied += other.cow_tables_copied
        self.output_delta_tuples += other.output_delta_tuples
        self.deltas_emitted += other.deltas_emitted
        self.delta_tuples += other.delta_tuples
        self.delta_bytes += other.delta_bytes
        self.tuples_patched += other.tuples_patched
        self.patch_time.merge(other.patch_time)
        self.full_refresh_fallbacks += other.full_refresh_fallbacks
        self.delta_ratio.merge(other.delta_ratio)
        self.kernels_generated += other.kernels_generated
        self.codegen_time_ms += other.codegen_time_ms
        self.shape_cache_hits += other.shape_cache_hits
        self.codegen_fallbacks += other.codegen_fallbacks
        self.ipc_rounds += other.ipc_rounds
        self.ipc_commits += other.ipc_commits
        self.ipc_bytes_sent += other.ipc_bytes_sent
        self.ipc_bytes_received += other.ipc_bytes_received
        self.ipc_commit_bytes.merge(other.ipc_commit_bytes)
        self.ipc_worker_busy_s += other.ipc_worker_busy_s
        self.ipc_wall_s += other.ipc_wall_s
        if other.ipc_workers > self.ipc_workers:
            self.ipc_workers = other.ipc_workers
        self.ipc_stats_merge_s += other.ipc_stats_merge_s
        self.ipc_worker_failures += other.ipc_worker_failures
        self.ipc_workers_spawned += other.ipc_workers_spawned
        self.record_ops(other.ops)
        for shard_label, summary in other.shard_summaries.items():
            mine = self.shard_summaries.get(shard_label)
            if mine is None:
                self.shard_summaries[shard_label] = dict(summary)
            else:
                # Same label seen twice: counts add, means are recomputed
                # poorly at best — keep the counts exact and let the
                # latest merge win on the rest.
                for key, value in summary.items():
                    if key in _SUMMARY_COUNT_KEYS and key in mine:
                        mine[key] += value
                    else:
                        mine[key] = value

    def to_dict(self) -> dict:
        """Plain-JSON snapshot (the ``repro.obs/1`` stats payload)."""
        return {
            "engine": self.engine,
            "updates": self.updates,
            "batches": self.batches,
            "update_latency": self.update_latency.to_dict(),
            "batch_latency": self.batch_latency.to_dict(),
            "delta_sizes": {
                view: stat.to_dict()
                for view, stat in sorted(self.delta_sizes.items())
            },
            "enumerations": self.enumerations,
            "tuples_enumerated": self.tuples_enumerated,
            "enum_delay": self.enum_delay.to_dict(),
            "rebalance": {
                "migrations": self.migrations,
                "tuples_migrated": self.tuples_migrated,
                "repartitions": self.repartitions,
            },
            "ops": dict(sorted(self.ops.items())),
            "batch": {
                "raw_updates": self.batch_updates_raw,
                "coalesced_updates": self.batch_updates_coalesced,
                "sibling_probes": self.sibling_probes,
                "probes_shared": self.sibling_probes_shared,
            },
            "enumeration": {
                "compiled": self.enum_compiled,
                "guard_probes": self.enum_guard_probes,
                "lazy_refreshes": self.lazy_refreshes,
                "point_lookups": self.point_lookups,
                "lookup_shards_probed": self.lookup_shards_probed,
            },
            "serving": {
                "submits": self.submits,
                "commits": self.commits,
                "size_commits": self.size_commits,
                "deadline_commits": self.deadline_commits,
                "drain_commits": self.drain_commits,
                "commit_latency": self.commit_latency.to_dict(),
                "batch_size": self.commit_batch_size.to_dict(),
                "queue_depth": self.commit_queue_depth.to_dict(),
                "backpressure_waits": self.backpressure_waits,
                "backpressure_wait": self.backpressure_wait.to_dict(),
                "lookups": self.serve_lookups,
                "read_staleness": self.read_staleness.to_dict(),
                "commit_errors": self.commit_errors,
            },
            "codegen": {
                "kernels_generated": self.kernels_generated,
                "codegen_time_ms": self.codegen_time_ms,
                "shape_cache_hits": self.shape_cache_hits,
                "fallbacks": self.codegen_fallbacks,
            },
            "ipc": {
                "rounds": self.ipc_rounds,
                "commits": self.ipc_commits,
                "bytes_sent": self.ipc_bytes_sent,
                "bytes_received": self.ipc_bytes_received,
                "commit_bytes": self.ipc_commit_bytes.to_dict(),
                "worker_busy_s": self.ipc_worker_busy_s,
                "wall_s": self.ipc_wall_s,
                "workers": self.ipc_workers,
                "utilization": (
                    self.ipc_worker_busy_s
                    / (self.ipc_wall_s * self.ipc_workers)
                    if self.ipc_wall_s and self.ipc_workers
                    else 0.0
                ),
                "stats_merge_s": self.ipc_stats_merge_s,
                "worker_failures": self.ipc_worker_failures,
                "workers_spawned": self.ipc_workers_spawned,
            },
            "epochs": {
                "published": self.epochs_published,
                "snapshot_reads": self.snapshot_reads,
                "read_latency": self.snapshot_read_latency.to_dict(),
                "cow_buckets_copied": self.cow_buckets_copied,
                "cow_tables_copied": self.cow_tables_copied,
                "output_delta_tuples": self.output_delta_tuples,
            },
            "changes": {
                "deltas_emitted": self.deltas_emitted,
                "delta_tuples": self.delta_tuples,
                "delta_bytes": self.delta_bytes,
                "tuples_patched": self.tuples_patched,
                "patch_time": self.patch_time.to_dict(),
                "full_refresh_fallbacks": self.full_refresh_fallbacks,
                "delta_ratio_pct": self.delta_ratio.to_dict(),
            },
            "memory": {
                "total_view_size": self.view_size.to_dict(),
                "view_sizes": {
                    view: stat.to_dict()
                    for view, stat in sorted(self.view_sizes.items())
                },
            },
            "shards": {
                label: dict(summary)
                for label, summary in sorted(self.shard_summaries.items())
            },
        }

    def render(self) -> str:
        """Human-readable multi-line summary (CLI ``stats`` output)."""
        lines = [f"maintenance stats — {self.engine}"]
        lines.append("=" * len(lines[0]))

        def latency_line(label: str, histogram: LatencyHistogram) -> str:
            s = histogram.stat
            if not s.count:
                return f"{label}: none"
            return (
                f"{label}: n={s.count}  mean={s.mean:.3g}s  "
                f"p50<={histogram.percentile(0.5):.3g}s  "
                f"p95<={histogram.percentile(0.95):.3g}s  "
                f"max={s.maximum:.3g}s"
            )

        lines.append(f"updates:  {self.updates}  (batches: {self.batches})")
        lines.append("  " + latency_line("latency", self.update_latency))
        if self.batches:
            lines.append("  " + latency_line("batch latency", self.batch_latency))
        lines.append(
            f"enumerations: {self.enumerations}  "
            f"tuples: {self.tuples_enumerated}"
        )
        if self.tuples_enumerated:
            lines.append("  " + latency_line("delay", self.enum_delay))
        if self.enum_compiled or self.lazy_refreshes:
            lines.append(
                f"enum kernel: {self.enum_compiled} compiled runs, "
                f"{self.enum_guard_probes} guard probes; "
                f"{self.lazy_refreshes} lazy refreshes"
            )
        if self.point_lookups:
            lines.append(
                f"point lookups: {self.point_lookups}  "
                f"(shards probed: {self.lookup_shards_probed})"
            )
        if self.commits or self.submits or self.commit_errors:
            errors = (
                f", {self.commit_errors} failed" if self.commit_errors else ""
            )
            lines.append(
                f"serving: {self.submits} submits -> {self.commits} commits "
                f"({self.size_commits} size / {self.deadline_commits} "
                f"deadline / {self.drain_commits} drain{errors})"
            )
            lines.append(
                "  " + latency_line("commit latency", self.commit_latency)
            )
            if self.commit_batch_size.count:
                lines.append(
                    f"  batch size: mean={self.commit_batch_size.stat.mean:.3g}"
                    f"  p50<={self.commit_batch_size.percentile(0.5):g}"
                    f"  max={self.commit_batch_size.stat.maximum:g}"
                    f"  queue depth p50<="
                    f"{self.commit_queue_depth.percentile(0.5):g}"
                    f"  max={self.commit_queue_depth.stat.maximum:g}"
                )
            if self.backpressure_waits:
                lines.append(
                    f"  backpressure: {self.backpressure_waits} blocked "
                    f"submits, mean wait "
                    f"{self.backpressure_wait.stat.mean:.3g}s"
                )
            if self.serve_lookups:
                s = self.read_staleness
                lines.append(
                    f"  reads: {self.serve_lookups} lookups  "
                    f"staleness mean={s.stat.mean:.3g}s  "
                    f"p50<={s.percentile(0.5):.3g}s  "
                    f"p99<={s.percentile(0.99):.3g}s"
                )
        if self.kernels_generated or self.codegen_fallbacks:
            lines.append(
                f"codegen: {self.kernels_generated} kernels in "
                f"{self.codegen_time_ms:.3g}ms  "
                f"(shape-cache hits: {self.shape_cache_hits}, "
                f"fallbacks: {self.codegen_fallbacks})"
            )
        if self.ipc_rounds or self.ipc_workers_spawned:
            utilization = (
                self.ipc_worker_busy_s / (self.ipc_wall_s * self.ipc_workers)
                if self.ipc_wall_s and self.ipc_workers
                else 0.0
            )
            failures = (
                f"  failures: {self.ipc_worker_failures}"
                if self.ipc_worker_failures
                else ""
            )
            lines.append(
                f"worker ipc: {self.ipc_rounds} round-trips "
                f"({self.ipc_commits} commits)  "
                f"bytes: {self.ipc_bytes_sent} out / "
                f"{self.ipc_bytes_received} in  "
                f"utilization: {utilization:.0%}  "
                f"workers spawned: {self.ipc_workers_spawned}{failures}"
            )
            if self.ipc_commit_bytes.count:
                lines.append(
                    f"  commit bytes: "
                    f"mean={self.ipc_commit_bytes.stat.mean:.3g}"
                    f"  p50<={self.ipc_commit_bytes.percentile(0.5):g}"
                    f"  max={self.ipc_commit_bytes.stat.maximum:g}"
                    f"  stats-merge: {self.ipc_stats_merge_s:.3g}s"
                )
        if self.epochs_published or self.snapshot_reads:
            lines.append(
                f"epochs: {self.epochs_published} published  "
                f"snapshot reads: {self.snapshot_reads}  "
                f"cow: {self.cow_buckets_copied} buckets / "
                f"{self.cow_tables_copied} tables copied  "
                f"output delta tuples: {self.output_delta_tuples}"
            )
            if self.snapshot_reads:
                lines.append(
                    "  " + latency_line(
                        "snapshot read", self.snapshot_read_latency
                    )
                )
        if self.deltas_emitted or self.full_refresh_fallbacks:
            lines.append(
                f"changes: {self.deltas_emitted} deltas "
                f"({self.delta_tuples} tuples, {self.delta_bytes} wire "
                f"bytes)  patched: {self.tuples_patched} tuples  "
                f"full refreshes: {self.full_refresh_fallbacks}"
            )
            if self.patch_time.count:
                lines.append("  " + latency_line("patch", self.patch_time))
            if self.delta_ratio.count:
                lines.append(
                    f"  delta/state ratio: "
                    f"mean={self.delta_ratio.stat.mean:.3g}%  "
                    f"p50<={self.delta_ratio.percentile(0.5):g}%  "
                    f"max={self.delta_ratio.stat.maximum:g}%"
                )
        if self.delta_sizes:
            lines.append("delta sizes per view:")
            for view, stat in sorted(self.delta_sizes.items()):
                lines.append(
                    f"  {view}: n={stat.count}  mean={stat.mean:.3g}  "
                    f"max={stat.maximum:g}"
                )
        if self.view_size.count:
            lines.append(
                f"view size: samples={self.view_size.count}  "
                f"mean={self.view_size.mean:.3g}  "
                f"peak={self.view_size.maximum:g}"
            )
        if self.batch_updates_raw:
            cancelled = self.batch_updates_raw - self.batch_updates_coalesced
            lines.append(
                f"batch kernel: {self.batch_updates_raw} updates -> "
                f"{self.batch_updates_coalesced} coalesced deltas "
                f"({cancelled} cancelled); sibling probes "
                f"{self.sibling_probes} issued, "
                f"{self.sibling_probes_shared} shared"
            )
        if self.migrations or self.repartitions:
            lines.append(
                f"rebalancing: {self.migrations} migrations "
                f"({self.tuples_migrated} tuples), "
                f"{self.repartitions} repartitions"
            )
        if self.ops:
            total = sum(self.ops.values())
            detail = ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.ops.items())
            )
            lines.append(f"elementary ops: {total}  ({detail})")
        if self.shard_summaries:
            lines.append("per-shard maintenance:")
            for label, summary in sorted(self.shard_summaries.items()):
                lines.append(
                    f"  {label}: updates={summary.get('updates', 0)}  "
                    f"batches={summary.get('batches', 0)}  "
                    f"mean={summary.get('update_mean_s', 0.0):.3g}s  "
                    f"ops={summary.get('ops', 0)}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"MaintenanceStats({self.engine!r}, updates={self.updates}, "
            f"enumerations={self.enumerations})"
        )


def merge_stats(stats: Iterable[MaintenanceStats], engine: str = "merged") -> MaintenanceStats:
    """Fold several recorders into one (multi-engine coordinators)."""
    merged = MaintenanceStats(engine=engine)
    for item in stats:
        merged.merge(item)
    return merged
