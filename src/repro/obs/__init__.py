"""Unified maintenance observability: counters, recorders, exporters.

Every maintenance engine in the library answers the same three questions
through this package:

* **how much work?** — :func:`op_scope` wraps the elementary-operation
  accounting of :mod:`repro.data.opcounter` into scoped, nestable blocks
  (inner scopes no longer clobber outer ones), and :class:`StopWatch`
  gives nestable accumulating wall-clock timers;
* **how is it distributed?** — :class:`MaintenanceStats` records
  per-update latency histograms, per-view delta sizes, enumeration delay
  samples, and heavy/light rebalance events; it is attached to any engine
  through the :class:`Observable` mixin and the :func:`observed` hook on
  ``apply``/``apply_batch``;
* **can a machine read it?** — :func:`write_stats_json` and the bench
  record helpers in :mod:`repro.bench.harness` emit schema-stable JSON so
  benchmark trajectories can be diffed across commits.

The package deliberately depends only on the standard library and
:mod:`repro.data.opcounter`, so every engine layer may import it freely.
"""

from .counter import OpScope, StopWatch, op_scope
from .export import (
    STATS_SCHEMA,
    stats_record,
    write_stats_json,
)
from .instrument import Observable, observed, observed_enumeration, share_stats
from .stats import CountHistogram, LatencyHistogram, MaintenanceStats, RunningStat

__all__ = [
    "CountHistogram",
    "LatencyHistogram",
    "MaintenanceStats",
    "Observable",
    "OpScope",
    "RunningStat",
    "STATS_SCHEMA",
    "StopWatch",
    "observed",
    "observed_enumeration",
    "op_scope",
    "share_stats",
    "stats_record",
    "write_stats_json",
]
