"""Provenance polynomials: the semiring of Green, Karvounarakis & Tannen.

The paper's data model "follows prior work on K-relations over provenance
semirings [13]" (Section 2).  This module provides that canonical
instance: payloads are multivariate polynomials over tuple identifiers
with natural-number coefficients.  The payload of an output tuple then
*is* its provenance: each monomial is one derivation (which input tuples
joined, and how often that derivation arises).

Being a semiring without additive inverses, provenance supports the
insert-only setting (Section 4.6) and static evaluation; deletions would
require one of the richer structures (e.g. Z[X]) — use ``ring=Z`` and
track provenance separately if you need both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .base import Semiring

#: A monomial maps tuple identifiers to exponents.
Monomial = frozenset  # of (identifier, exponent) pairs


def _monomial(items: Mapping[str, int]) -> Monomial:
    return frozenset((k, v) for k, v in items.items() if v)


@dataclass(frozen=True)
class Polynomial:
    """A provenance polynomial: monomials with positive coefficients."""

    terms: frozenset = frozenset()  # of (Monomial, coefficient) pairs

    @classmethod
    def variable(cls, identifier: str) -> "Polynomial":
        """The polynomial consisting of the single variable ``identifier``."""
        return cls(frozenset({(_monomial({identifier: 1}), 1)}))

    @classmethod
    def constant(cls, value: int) -> "Polynomial":
        if value < 0:
            raise ValueError("provenance coefficients are natural numbers")
        if value == 0:
            return cls()
        return cls(frozenset({(_monomial({}), value)}))

    def as_dict(self) -> dict[Monomial, int]:
        return dict(self.terms)

    def monomials(self) -> list[dict[str, int]]:
        """Each derivation as {tuple id: multiplicity-in-derivation}."""
        return [dict(monomial) for monomial, _ in sorted(self.terms, key=repr)]

    def coefficient(self, identifiers: Mapping[str, int]) -> int:
        """Coefficient of the monomial with the given exponents."""
        return self.as_dict().get(_monomial(identifiers), 0)

    def variables(self) -> frozenset[str]:
        result = set()
        for monomial, _ in self.terms:
            for identifier, _exponent in monomial:
                result.add(identifier)
        return frozenset(result)

    def degree(self) -> int:
        """Largest total degree among monomials (join width witness)."""
        best = 0
        for monomial, _ in self.terms:
            best = max(best, sum(exp for _, exp in monomial))
        return best

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Evaluate the polynomial — e.g. with multiplicities to recover
        counts, or with 0/1 to test derivability after hypothetical
        deletions (the classic provenance trick)."""
        total = 0
        for monomial, coefficient in self.terms:
            product = coefficient
            for identifier, exponent in monomial:
                product *= assignment.get(identifier, 0) ** exponent
            total += product
        return total

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for monomial, coefficient in sorted(self.terms, key=repr):
            factors = [
                identifier if exponent == 1 else f"{identifier}^{exponent}"
                for identifier, exponent in sorted(monomial)
            ]
            body = "*".join(factors) if factors else "1"
            parts.append(body if coefficient == 1 else f"{coefficient}*{body}")
        return " + ".join(parts)


class ProvenanceSemiring(Semiring):
    """N[X]: the free (most general) provenance semiring."""

    name = "N[X]"
    exact_zero = False  # structural emptiness check, not equality

    @property
    def zero(self) -> Polynomial:
        return Polynomial()

    @property
    def one(self) -> Polynomial:
        return Polynomial.constant(1)

    def add(self, a: Polynomial, b: Polynomial) -> Polynomial:
        terms = a.as_dict()
        for monomial, coefficient in b.terms:
            terms[monomial] = terms.get(monomial, 0) + coefficient
        return Polynomial(
            frozenset((m, c) for m, c in terms.items() if c)
        )

    def mul(self, a: Polynomial, b: Polynomial) -> Polynomial:
        terms: dict[Monomial, int] = {}
        for mono_a, coeff_a in a.terms:
            exp_a = dict(mono_a)
            for mono_b, coeff_b in b.terms:
                merged = dict(exp_a)
                for identifier, exponent in mono_b:
                    merged[identifier] = merged.get(identifier, 0) + exponent
                key = _monomial(merged)
                terms[key] = terms.get(key, 0) + coeff_a * coeff_b
        return Polynomial(frozenset((m, c) for m, c in terms.items() if c))

    def is_zero(self, a: Polynomial) -> bool:
        return not a.terms


#: Shared singleton.
PROVENANCE = ProvenanceSemiring()
