"""Standard payload rings: integers, reals, Booleans, tropical min-plus.

The integer ring is the workhorse of the paper (Section 2): payloads are
tuple multiplicities, a positive multiplicity counts derivations, and a
negative multiplicity can transiently appear under out-of-order updates.
"""

from __future__ import annotations

from typing import Any

from .base import Ring, Semiring


class IntegerRing(Ring):
    """The ring of integers ``(Z, +, *, 0, 1)`` used for multiplicities."""

    name = "Z"
    add_operator = "+"
    mul_operator = "*"

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def mul(self, a: int, b: int) -> int:
        return a * b

    def neg(self, a: int) -> int:
        return -a


class FloatRing(Ring):
    """The field of floats, for SUM-style numeric aggregates.

    Float payloads that fall within ``tolerance`` of zero are treated as
    zero, so that a long insert/delete history does not leave residual
    entries due to rounding.
    """

    name = "R"
    exact_zero = False  # tolerance band, not plain equality
    add_operator = "+"
    mul_operator = "*"
    numeric_dtype = "float64"

    def __init__(self, tolerance: float = 1e-12):
        self.tolerance = tolerance

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 1.0

    def add(self, a: float, b: float) -> float:
        return a + b

    def mul(self, a: float, b: float) -> float:
        return a * b

    def neg(self, a: float) -> float:
        return -a

    def is_zero(self, a: float) -> bool:
        return abs(a) <= self.tolerance

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatRing) and other.tolerance == self.tolerance

    def __hash__(self) -> int:
        return hash((FloatRing, self.tolerance))


class BooleanSemiring(Semiring):
    """The Boolean semiring ``({F, T}, or, and, F, T)``.

    Used for set semantics and for *detection* queries such as the Boolean
    triangle query of Section 3.4.  It is not a ring — ``True`` has no
    additive inverse — so deletes are not supported under it; maintain the
    integer-ring count and test positivity instead (exactly how the paper
    phrases triangle detection as "count greater than 0").
    """

    name = "B"

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def add(self, a: bool, b: bool) -> bool:
        return a or b

    def mul(self, a: bool, b: bool) -> bool:
        return a and b


class MinPlusSemiring(Semiring):
    """The tropical semiring ``(R ∪ {∞}, min, +, ∞, 0)``.

    Included because shortest-path style aggregates are the classic example
    of a non-invertible aggregation: it demonstrates why the library's
    insert-delete path demands a true ring while the insert-only path
    (Section 4.6) happily accepts any semiring.
    """

    name = "min-plus"

    INFINITY = float("inf")

    @property
    def zero(self) -> float:
        return self.INFINITY

    @property
    def one(self) -> float:
        return 0.0

    def add(self, a: float, b: float) -> float:
        return a if a <= b else b

    def mul(self, a: float, b: float) -> float:
        return a + b


class ProductRing(Ring):
    """Component-wise product of rings, payloads are tuples.

    Product rings let one view tree maintain several aggregates at once,
    e.g. ``(COUNT, SUM(units))`` with a single propagation pass — the basic
    trick behind F-IVM's composite analytics payloads.
    """

    def __init__(self, *factors: Ring):
        if not factors:
            raise ValueError("ProductRing needs at least one factor ring")
        for factor in factors:
            if not isinstance(factor, Ring):
                raise TypeError(f"ProductRing factors must be rings, got {factor!r}")
        self.factors = factors
        self.name = " x ".join(f.name for f in factors)
        # Tuple equality against the zero tuple is exact iff every
        # component's zero test is.
        self.exact_zero = all(f.exact_zero for f in factors)

    @property
    def zero(self) -> tuple[Any, ...]:
        return tuple(f.zero for f in self.factors)

    @property
    def one(self) -> tuple[Any, ...]:
        return tuple(f.one for f in self.factors)

    def add(self, a: tuple, b: tuple) -> tuple:
        return tuple(f.add(x, y) for f, x, y in zip(self.factors, a, b))

    def mul(self, a: tuple, b: tuple) -> tuple:
        return tuple(f.mul(x, y) for f, x, y in zip(self.factors, a, b))

    def neg(self, a: tuple) -> tuple:
        return tuple(f.neg(x) for f, x in zip(self.factors, a))

    def is_zero(self, a: tuple) -> bool:
        return all(f.is_zero(x) for f, x in zip(self.factors, a))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ProductRing) and other.factors == self.factors

    def __hash__(self) -> int:
        return hash((ProductRing, self.factors))


#: Shared singletons; prefer these over constructing new instances.
Z = IntegerRing()
R = FloatRing()
B = BooleanSemiring()
MIN_PLUS = MinPlusSemiring()
