"""The covariance (degree-2 moments) ring for in-database analytics.

Section 6 of the paper points to the F-IVM line of work that maintains
machine-learning aggregates over evolving databases.  The key enabler is a
ring whose elements carry the degree-2 statistics needed by linear
regression: a count, per-variable sums, and per-variable-pair sums of
products.  Maintaining one view tree over this ring keeps the full
covariance matrix of the join result fresh under updates, without ever
materializing the join.

An element is a triple ``(count, sums, quads)`` where ``sums`` maps a
variable name to ``SUM(x)`` and ``quads`` maps an unordered variable pair
to ``SUM(x * y)``.  Multiplication follows the F-IVM composition rule::

    (c1,s1,Q1) * (c2,s2,Q2) =
        (c1*c2, c2*s1 + c1*s2, c2*Q1 + c1*Q2 + s1 (x) s2 + s2 (x) s1)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .base import Ring


def _pair(x: str, y: str) -> tuple[str, str]:
    """Canonical (sorted) key for the symmetric quadratic entry (x, y)."""
    return (x, y) if x <= y else (y, x)


@dataclass(frozen=True)
class Moments:
    """A covariance-ring element: count, linear sums, quadratic sums."""

    count: float = 0.0
    sums: Mapping[str, float] = field(default_factory=dict)
    quads: Mapping[tuple[str, str], float] = field(default_factory=dict)

    def sum_of(self, variable: str) -> float:
        """``SUM(variable)`` over the tuples this element aggregates."""
        return self.sums.get(variable, 0.0)

    def quad_of(self, x: str, y: str) -> float:
        """``SUM(x * y)`` over the tuples this element aggregates."""
        return self.quads.get(_pair(x, y), 0.0)

    def mean_of(self, variable: str) -> float:
        """``AVG(variable)``; zero when the element is empty."""
        if self.count == 0:
            return 0.0
        return self.sum_of(variable) / self.count

    def covariance(self, x: str, y: str) -> float:
        """Sample covariance ``E[xy] - E[x]E[y]`` over the aggregated tuples."""
        if self.count == 0:
            return 0.0
        return self.quad_of(x, y) / self.count - self.mean_of(x) * self.mean_of(y)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Moments):
            return NotImplemented
        return (
            self.count == other.count
            and _clean(self.sums) == _clean(other.sums)
            and _clean(self.quads) == _clean(other.quads)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.count,
                frozenset(_clean(self.sums).items()),
                frozenset(_clean(self.quads).items()),
            )
        )


def _clean(mapping: Mapping) -> dict:
    return {k: v for k, v in mapping.items() if v != 0}


class CovarianceRing(Ring):
    """Ring of :class:`Moments` elements (the F-IVM degree-2 ring)."""

    name = "covariance"
    exact_zero = False  # cleans near-zero float moments first

    @property
    def zero(self) -> Moments:
        return Moments(0.0, {}, {})

    @property
    def one(self) -> Moments:
        return Moments(1.0, {}, {})

    def add(self, a: Moments, b: Moments) -> Moments:
        sums = dict(a.sums)
        for var, value in b.sums.items():
            sums[var] = sums.get(var, 0.0) + value
        quads = dict(a.quads)
        for key, value in b.quads.items():
            quads[key] = quads.get(key, 0.0) + value
        return Moments(a.count + b.count, _clean(sums), _clean(quads))

    def neg(self, a: Moments) -> Moments:
        return Moments(
            -a.count,
            {var: -value for var, value in a.sums.items()},
            {key: -value for key, value in a.quads.items()},
        )

    def mul(self, a: Moments, b: Moments) -> Moments:
        count = a.count * b.count
        sums: dict[str, float] = {}
        for var, value in a.sums.items():
            sums[var] = sums.get(var, 0.0) + b.count * value
        for var, value in b.sums.items():
            sums[var] = sums.get(var, 0.0) + a.count * value
        quads: dict[tuple[str, str], float] = {}
        for key, value in a.quads.items():
            quads[key] = quads.get(key, 0.0) + b.count * value
        for key, value in b.quads.items():
            quads[key] = quads.get(key, 0.0) + a.count * value
        # Cross terms s1 (x) s2 + s2 (x) s1.  On the symmetric one-entry-per-
        # unordered-pair representation, iterating both (a, b) orderings
        # already covers the off-diagonal symmetric sum; the diagonal entry
        # (x, x) is visited once and needs the explicit factor 2.
        for var_a, value_a in a.sums.items():
            for var_b, value_b in b.sums.items():
                key = _pair(var_a, var_b)
                term = value_a * value_b
                if var_a == var_b:
                    term *= 2
                quads[key] = quads.get(key, 0.0) + term
        return Moments(count, _clean(sums), _clean(quads))

    def is_zero(self, a: Moments) -> bool:
        return a.count == 0 and not _clean(a.sums) and not _clean(a.quads)


def moment_lifting(variable: str):
    """Lifting for a numeric ``variable`` into the covariance ring.

    ``g_X(x) = (count=1, sums={X: x}, quads={(X, X): x * x})`` — the degree-2
    moments of the single value ``x``.
    """

    def lift(value) -> Moments:
        x = float(value)
        return Moments(1.0, {variable: x}, {(variable, variable): x * x})

    return lift
