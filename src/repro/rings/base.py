"""Ring and semiring abstractions for relation payloads.

Following Section 2 of the paper, a relation over a schema ``S`` and a ring
``(D, +, *, 0, 1)`` maps tuples over ``S`` to ring values.  Inserts map
tuples to positive ring values and deletes to negative ring values, so both
kinds of updates are plain tuples and commute with each other.

Every concrete ring in :mod:`repro.rings` subclasses :class:`Ring` (or
:class:`Semiring` when no additive inverse exists).  Ring instances are
stateless and cheap; modules typically share the singletons exported from
:mod:`repro.rings`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable


class Semiring(ABC):
    """A commutative semiring ``(D, +, *, 0, 1)``.

    Semirings support inserts but not deletes: without additive inverses a
    tuple cannot be retracted from a payload.  The full IVM machinery in
    this library therefore requires a :class:`Ring`; semirings are exposed
    for the insert-only setting of Section 4.6 and for static evaluation.
    """

    #: Human-readable name used in reprs and error messages.
    name: str = "semiring"

    #: Whether ``value == self.zero`` is exactly :meth:`is_zero`.  Hot
    #: loops (the compiled batch kernel, :meth:`Relation.add_delta`)
    #: inline the equality comparison when this is set, skipping a
    #: Python method call per payload.  Subclasses that override
    #: :meth:`is_zero` with anything other than plain equality
    #: (tolerance bands, structural emptiness checks) MUST set this to
    #: ``False``.
    exact_zero: bool = True

    #: Infix operator symbols that compute :meth:`add` / :meth:`mul` on
    #: payload values (``"+"`` / ``"*"``), or ``None`` when the ring
    #: operation is not a plain Python operator.  The code generator
    #: (:mod:`repro.viewtree.codegen`) inlines the operator into emitted
    #: kernels, turning a Python method call per ring operation into a
    #: single bytecode.  Subclasses MUST only set these when the operator
    #: expression is *bit-identical* to the method for every payload.
    add_operator: str | None = None
    mul_operator: str | None = None

    #: numpy dtype name that losslessly represents this ring's payloads
    #: (e.g. ``"float64"``), or ``None``.  The columnar batch path uses
    #: it to coalesce numeric payload arrays with vectorized numpy ops;
    #: accumulation must stay bit-identical to sequential :meth:`add`.
    numeric_dtype: str | None = None

    @property
    @abstractmethod
    def zero(self) -> Any:
        """The additive identity; tuples mapped to ``zero`` are absent."""

    @property
    @abstractmethod
    def one(self) -> Any:
        """The multiplicative identity; the payload of a bare insert."""

    @abstractmethod
    def add(self, a: Any, b: Any) -> Any:
        """Return ``a + b``."""

    @abstractmethod
    def mul(self, a: Any, b: Any) -> Any:
        """Return ``a * b``."""

    def is_zero(self, a: Any) -> bool:
        """True when ``a`` equals the additive identity.

        Relations drop entries whose payload is zero, keeping their size
        equal to the number of tuples with non-zero payload (Section 2).
        """
        return a == self.zero

    def sum(self, values: Iterable[Any]) -> Any:
        """Fold ``values`` with :meth:`add`, starting from :attr:`zero`."""
        acc = self.zero
        for value in values:
            acc = self.add(acc, value)
        return acc

    def product(self, values: Iterable[Any]) -> Any:
        """Fold ``values`` with :meth:`mul`, starting from :attr:`one`."""
        acc = self.one
        for value in values:
            acc = self.mul(acc, value)
        return acc

    @property
    def has_negation(self) -> bool:
        """Whether additive inverses exist (i.e. this is a ring)."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} {self.name}>"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class Ring(Semiring):
    """A commutative ring: a semiring with additive inverses.

    The additive inverse is what makes deletes expressible as ordinary
    tuples with negated payloads, which in turn makes update batches
    commutative (Section 2).
    """

    name = "ring"

    @abstractmethod
    def neg(self, a: Any) -> Any:
        """Return the additive inverse ``-a``."""

    def sub(self, a: Any, b: Any) -> Any:
        """Return ``a - b`` = ``a + (-b)``."""
        return self.add(a, self.neg(b))

    @property
    def has_negation(self) -> bool:
        return True


def check_ring_axioms(ring: Semiring, samples: list[Any]) -> None:
    """Assert the (semi)ring axioms on a list of sample values.

    This is a testing utility: it raises :class:`AssertionError` with a
    descriptive message on the first violated axiom.  Property-based tests
    drive it with randomly generated samples.
    """
    zero, one = ring.zero, ring.one
    for a in samples:
        assert ring.add(a, zero) == a, f"{ring}: a + 0 != a for a={a!r}"
        assert ring.add(zero, a) == a, f"{ring}: 0 + a != a for a={a!r}"
        assert ring.mul(a, one) == a, f"{ring}: a * 1 != a for a={a!r}"
        assert ring.mul(one, a) == a, f"{ring}: 1 * a != a for a={a!r}"
        assert ring.is_zero(ring.mul(a, zero)), f"{ring}: a * 0 != 0 for a={a!r}"
        if isinstance(ring, Ring):
            assert ring.is_zero(ring.add(a, ring.neg(a))), (
                f"{ring}: a + (-a) != 0 for a={a!r}"
            )
    for a in samples:
        for b in samples:
            assert ring.add(a, b) == ring.add(b, a), (
                f"{ring}: + not commutative for {a!r}, {b!r}"
            )
            for c in samples:
                assert ring.add(ring.add(a, b), c) == ring.add(a, ring.add(b, c)), (
                    f"{ring}: + not associative for {a!r}, {b!r}, {c!r}"
                )
                assert ring.mul(ring.mul(a, b), c) == ring.mul(a, ring.mul(b, c)), (
                    f"{ring}: * not associative for {a!r}, {b!r}, {c!r}"
                )
                lhs = ring.mul(a, ring.add(b, c))
                rhs = ring.add(ring.mul(a, b), ring.mul(a, c))
                assert lhs == rhs, (
                    f"{ring}: * does not distribute over + for {a!r}, {b!r}, {c!r}"
                )
