"""Lifting functions: maps from variable domains into ring payloads.

Section 2 of the paper: when marginalizing a variable ``X`` we do not sum
the values ``x`` from ``Dom(X)`` but the lifted values ``g_X(x)`` from the
payload ring.  The choice of lifting function determines the aggregate:

* ``count_lifting``   — ``g_X(x) = 1``: plain COUNT / projection.
* ``identity_lifting``— ``g_X(x) = x``: SUM(X) over a numeric ring.
* ``moment_lifting``  — lifts into the covariance ring, enabling
  in-database linear regression (Section 6, F-IVM analytics).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from .base import Semiring

#: A lifting function maps a variable value to a ring element.
Lifting = Callable[[Any], Any]


class ConstantLifting:
    """Lift every value to one fixed ring element.

    A named class (not a lambda) so engines holding liftings stay
    picklable — the process-pool shard executor ships engines whole.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __call__(self, _value: Any) -> Any:
        return self.value


def _identity(value: Any) -> Any:
    return value


def count_lifting(ring: Semiring) -> Lifting:
    """Lift every value to ``1``; marginalization then counts tuples."""
    return ConstantLifting(ring.one)


def identity_lifting(_ring: Semiring) -> Lifting:
    """Lift a numeric value to itself; marginalization then sums values."""
    return _identity


class LiftingMap:
    """Per-variable lifting functions with a shared default.

    The aggregation operator consults this map when it marginalizes a bound
    variable.  Variables without an explicit entry use the default lifting
    (COUNT semantics), which makes plain conjunctive queries work without
    any configuration.
    """

    def __init__(
        self,
        ring: Semiring,
        per_variable: Mapping[str, Lifting] | None = None,
        default: Lifting | None = None,
    ):
        self.ring = ring
        self._per_variable = dict(per_variable or {})
        self._default = default if default is not None else count_lifting(ring)

    def for_variable(self, variable: str) -> Lifting:
        """Return the lifting function used when marginalizing ``variable``."""
        return self._per_variable.get(variable, self._default)

    def with_variable(self, variable: str, lifting: Lifting) -> "LiftingMap":
        """Return a copy with ``variable`` lifted by ``lifting``."""
        merged = dict(self._per_variable)
        merged[variable] = lifting
        return LiftingMap(self.ring, merged, self._default)

    def is_trivial(self, variable: str) -> bool:
        """True when marginalizing ``variable`` just multiplies by one."""
        return variable not in self._per_variable and self._default_is_count()

    def _default_is_count(self) -> bool:
        probe = object()
        try:
            return self._default(probe) == self.ring.one
        except Exception:  # custom default liftings may reject arbitrary values
            return False
