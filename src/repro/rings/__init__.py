"""Payload rings and lifting functions (Section 2 of the paper)."""

from .analytics import CovarianceRing, Moments, moment_lifting
from .base import Ring, Semiring, check_ring_axioms
from .lifting import Lifting, LiftingMap, count_lifting, identity_lifting
from .provenance import PROVENANCE, Polynomial, ProvenanceSemiring
from .standard import (
    B,
    MIN_PLUS,
    R,
    Z,
    BooleanSemiring,
    FloatRing,
    IntegerRing,
    MinPlusSemiring,
    ProductRing,
)

__all__ = [
    "B",
    "BooleanSemiring",
    "CovarianceRing",
    "FloatRing",
    "IntegerRing",
    "Lifting",
    "LiftingMap",
    "MIN_PLUS",
    "MinPlusSemiring",
    "Moments",
    "PROVENANCE",
    "Polynomial",
    "ProductRing",
    "ProvenanceSemiring",
    "R",
    "Ring",
    "Semiring",
    "Z",
    "check_ring_axioms",
    "count_lifting",
    "identity_lifting",
    "moment_lifting",
]
