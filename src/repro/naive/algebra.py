"""Relational algebra over ring relations: joins, marginalization, union.

Shared by the view-tree builder/maintainer and the delta machinery.  All
operators follow Section 2's definitions: join multiplies payloads of
agreeing tuples, aggregation sums lifted payloads, union adds payloads.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..data.opcounter import COUNTER
from ..data.relation import Relation
from ..data.schema import Schema
from ..rings.base import Semiring


def join_pair(
    left: Relation,
    right: Relation,
    ring: Semiring,
    name: str = "join",
) -> Relation:
    """Natural join of two relations: payloads multiply.

    The smaller side drives the probe; the other side is accessed through
    a group index on the shared variables, so the cost is proportional to
    the number of (probe tuple, matching tuple) pairs.
    """
    out_schema = left.schema.union(right.schema)
    out = Relation(name, out_schema, ring)
    probe, build = (left, right) if len(left) <= len(right) else (right, left)
    shared = tuple(v for v in build.schema if v in probe.schema)
    probe_project = probe.schema.projector(shared)

    probe_vars = probe.schema.variables
    build_vars = build.schema.variables
    out_vars = out_schema.variables
    # Precompute how to assemble the output key from probe and build keys.
    plan: list[tuple[int, int]] = []
    for var in out_vars:
        if var in probe.schema:
            plan.append((0, probe.schema.position(var)))
        else:
            plan.append((1, build.schema.position(var)))

    if not shared:
        for probe_key, probe_payload in probe.items():
            for build_key, build_payload in build.items():
                payload = ring.mul(probe_payload, build_payload)
                if ring.is_zero(payload):
                    continue
                sides = (probe_key, build_key)
                out.add(tuple(sides[s][i] for s, i in plan), payload)
        return out

    for probe_key, probe_payload in probe.items():
        group_key = probe_project(probe_key)
        # group_items reads the payload straight off the build side's
        # data dict: the key came out of the group index, so a second
        # build.get() per matching pair would only double-count a hash
        # probe (and skew COUNTER-based complexity assertions).
        for build_key, build_payload in build.group_items(shared, group_key):
            payload = ring.mul(probe_payload, build_payload)
            if ring.is_zero(payload):
                continue
            sides = (probe_key, build_key)
            out.add(tuple(sides[s][i] for s, i in plan), payload)
    return out


def join_all(
    sources: Sequence[Relation], ring: Semiring, name: str = "join"
) -> Relation:
    """Natural join of several relations (left-deep, smallest first)."""
    if not sources:
        raise ValueError("join_all needs at least one relation")
    ordered = sorted(sources, key=len)
    result = ordered[0]
    for source in ordered[1:]:
        result = join_pair(result, source, ring, name)
    if result is ordered[0] and len(ordered) == 1:
        result = ordered[0].copy(name)
    return result


def marginalize(
    relation: Relation,
    variable: str,
    ring: Semiring,
    lift: Callable[[Any], Any] | None = None,
    name: str | None = None,
) -> Relation:
    """``SUM_variable relation``: drop a column, summing lifted payloads."""
    out_vars = tuple(v for v in relation.schema.variables if v != variable)
    out = Relation(name or f"sum_{variable}", Schema(out_vars), ring)
    position = relation.schema.position(variable)
    project = relation.schema.projector(out_vars)
    if lift is None:
        for key, payload in relation.items():
            out.add(project(key), payload)
    else:
        for key, payload in relation.items():
            out.add(project(key), ring.mul(payload, lift(key[position])))
    return out


def union_into(target: Relation, source: Relation) -> None:
    """``target := target (+) source`` (schemas must match as sets)."""
    if target.schema.as_set() != source.schema.as_set():
        raise ValueError(
            f"union of incompatible schemas {target.schema.variables!r} "
            f"and {source.schema.variables!r}"
        )
    project = source.schema.projector(target.schema.variables)
    for key, payload in source.items():
        target.add(project(key), payload)


def rename_to(relation: Relation, schema: Schema, name: str) -> Relation:
    """View ``relation`` under different variable names (same positions).

    Follows the accounting contract of :meth:`Relation.copy`: copying the
    entries is one counted write per tuple, and the group indexes carry
    over (re-keyed to the renamed variables — positions are unchanged)
    with one counted write per (index, tuple) posting, so a rename never
    silently repays index builds the original already performed.
    """
    if len(schema) != len(relation.schema):
        raise ValueError("rename must preserve arity")
    out = Relation(name, schema, relation.ring)
    COUNTER.bump("write", len(relation.data))
    out.data = dict(relation.data)
    mapping = dict(zip(relation.schema.variables, schema.variables))
    for group_vars, index in relation._indexes.items():
        COUNTER.bump("write", len(relation.data))
        clone = index.copy()
        clone.group_vars = tuple(mapping[v] for v in group_vars)
        out._indexes[clone.group_vars] = clone
    return out
