"""Full-recompute query evaluation: a generic (worst-case-optimal style)
join with ring aggregation.

This is the baseline every IVM strategy is compared against (Section 3.1
opens with it): on each update, recompute the query output from scratch.
It also serves as the ground truth oracle in tests and as the build step
of the lazy strategies.

The evaluator is a backtracking multi-way join over a global variable
order.  At each variable it picks the atom with the smallest matching
group as the candidate source and verifies candidates against the other
atoms' group indexes — the standard generic-join recipe, adapted to ring
payloads and lifted aggregation.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from ..data.database import Database
from ..data.relation import Relation
from ..data.schema import Schema
from ..query.ast import Query
from ..rings.lifting import LiftingMap


def evaluate(
    query: Query,
    database: Database,
    lifting: LiftingMap | None = None,
    overrides: Mapping[str, Relation] | None = None,
    name: str | None = None,
    variable_order: Sequence[str] | None = None,
) -> Relation:
    """Compute the query output as a relation over the head schema.

    ``overrides`` substitutes relations by name — the delta-query engine
    uses this to evaluate a rule body with one atom replaced by a delta
    relation.  ``variable_order`` optionally fixes the global elimination
    order (head variables must still come first for aggregation to be a
    simple projection; the default order places them first).
    """
    ring = database.ring
    if lifting is None:
        lifting = LiftingMap(ring)
    overrides = overrides or {}

    def resolve(atom) -> Relation:
        if atom.relation in overrides:
            relation = overrides[atom.relation]
        else:
            relation = database[atom.relation]
        if len(atom.variables) != len(relation.schema):
            raise ValueError(
                f"atom {atom} arity {len(atom.variables)} does not match "
                f"relation schema {relation.schema.variables!r}"
            )
        if relation.schema.variables != atom.variables:
            # Positional rename: share the data dict so the alias stays a
            # live view of the relation (indexes are rebuilt per call).
            alias = Relation(relation.name, Schema(atom.variables), relation.ring)
            alias.data = relation.data
            relation = alias
        return relation

    atoms = [(atom, resolve(atom)) for atom in query.atoms]

    head = list(query.head)
    if variable_order is None:
        rest = sorted(query.variables() - set(head))
        order = head + rest
    else:
        order = list(variable_order)
        if set(order) != set(query.variables()):
            raise ValueError("variable_order must cover exactly the query variables")

    out = Relation(name or query.name, Schema(head), ring)
    if not atoms:
        return out

    # Precompute, per variable, which atoms contain it and the tuple of
    # already-bound variables (per atom) at that point in the order.
    bound_so_far: list[set[str]] = []
    running: set[str] = set()
    for var in order:
        bound_so_far.append(set(running))
        running.add(var)

    plans = []
    for position, var in enumerate(order):
        var_plan = []
        for atom_index, (atom, relation) in enumerate(atoms):
            if var not in atom.variables:
                continue
            bound_vars = tuple(
                v for v in atom.variables if v in bound_so_far[position]
            )
            var_plan.append((atom_index, atom, relation, bound_vars))
        plans.append(var_plan)

    n_vars = len(order)
    head_positions = [order.index(v) for v in head]
    binding: dict[str, Any] = {}

    def payload_of_binding() -> Any:
        payload = ring.one
        for atom, relation in atoms:
            key = tuple(binding[v] for v in atom.variables)
            value = relation.get(key)
            if ring.is_zero(value):
                return ring.zero
            payload = ring.mul(payload, value)
        for var in order[len(head) :] if variable_order is None else order:
            if var not in query.free_variables:
                payload = ring.mul(payload, lifting.for_variable(var)(binding[var]))
        return payload

    def recurse(position: int) -> None:
        if position == n_vars:
            payload = payload_of_binding()
            if not ring.is_zero(payload):
                key = tuple(binding[order[i]] for i in head_positions)
                out.add(key, payload)
            return
        var = order[position]
        var_plan = plans[position]
        if not var_plan:
            raise ValueError(f"variable {var!r} occurs in no atom")
        # Pick the atom with the smallest matching group as candidate source.
        best = None
        best_size = None
        for entry in var_plan:
            _, atom, relation, bound_vars = entry
            group_key = tuple(binding[v] for v in bound_vars)
            size = relation.group_size(bound_vars, group_key)
            if best_size is None or size < best_size:
                best, best_size = entry, size
        if best_size == 0:
            return
        _, atom, relation, bound_vars = best
        group_key = tuple(binding[v] for v in bound_vars)
        var_pos = atom.variables.index(var)
        seen: set = set()
        for key in relation.group(bound_vars, group_key):
            value = key[var_pos]
            if value in seen:
                continue
            seen.add(value)
            binding[var] = value
            # Semi-join check against the other atoms containing var.
            ok = True
            for entry in var_plan:
                if entry is best:
                    continue
                _, other_atom, other_relation, other_bound = entry
                check_vars = other_bound + (var,)
                check_key = tuple(binding[v] for v in check_vars)
                if other_relation.group_size(check_vars, check_key) == 0:
                    ok = False
                    break
            if ok:
                recurse(position + 1)
        binding.pop(var, None)

    recurse(0)
    return out


def evaluate_scalar(
    query: Query,
    database: Database,
    lifting: LiftingMap | None = None,
    overrides: Mapping[str, Relation] | None = None,
) -> Any:
    """Evaluate a Boolean (empty-head) query to a single ring value."""
    if query.head:
        raise ValueError(f"query {query.name} has a non-empty head")
    result = evaluate(query, database, lifting, overrides)
    return result.get(())
