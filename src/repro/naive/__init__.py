"""Full-recompute evaluation (the non-incremental baseline)."""

from .evaluator import evaluate, evaluate_scalar

__all__ = ["evaluate", "evaluate_scalar"]
