"""Unified engine facade and maintenance planner (Section 6)."""

from .engine import IVMEngine
from .planner import Plan, plan_maintenance

__all__ = ["IVMEngine", "Plan", "plan_maintenance"]
