"""The maintenance planner: Section 6's "effective guide" as code.

Given a query plus optional context (functional dependencies, static
adornments, access patterns, insert-only promises), the planner walks the
paper's decision ladder and picks the strongest applicable engine:

1. q-hierarchical                      -> view tree, O(1)/O(1) (Thm 4.1)
2. Sigma-reduct q-hierarchical        -> FD-guided view tree (Thm 4.11)
3. static/dynamic tractable            -> mixed view tree (Sec 4.5)
4. tractable CQAP (input variables)    -> fracture view trees (Thm 4.8)
5. insert-only + alpha-acyclic         -> monotone activation (Sec 4.6)
6. triangle-shaped cyclic              -> IVM^eps, O(sqrt N) (Sec 3.3)
7. otherwise                           -> first-order delta queries (Sec 3.1)

Every decision is returned as a :class:`Plan` with the guarantee it
carries, so callers (and tests) can check *why* an engine was chosen.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional

from ..constraints.fds import FunctionalDependency, q_hierarchical_under_fds
from ..cqap.fracture import is_tractable_cqap
from ..query.ast import Query
from ..query.hypergraph import is_alpha_acyclic
from ..query.properties import is_hierarchical, is_q_hierarchical
from ..staticdyn.analysis import find_static_dynamic_order


@dataclass(frozen=True)
class Plan:
    """A chosen maintenance strategy with its complexity guarantee."""

    strategy: str
    reason: str
    update_time: str
    enumeration_delay: str
    preprocessing_time: str
    #: Whether the engine runs single-tuple updates through pre-compiled
    #: delta plans (view-tree strategies only; see repro.viewtree.compile).
    compiled: bool = False
    #: Whether ``apply_batch`` routes batches through the compiled batch
    #: kernel — coalesced, probe-sharing group pushes under the engine's
    #: three-way heuristic (compiled-batch / per-tuple / rebuild).  Set
    #: alongside ``compiled`` for the view-tree strategy family.
    batch_kernel: bool = False
    #: Whether enumeration (including prebound CQAP access requests)
    #: runs through a compiled EnumPlan (repro.viewtree.enumplan) —
    #: the read-side twin of ``compiled``.
    enum_kernel: bool = False
    #: Whether the compiled plans additionally run as exec-generated
    #: source kernels (repro.viewtree.codegen) — the plans stay around
    #: as the interpreted differential-testing oracle.
    codegen: bool = False

    def __str__(self) -> str:
        kernels = ""
        if self.compiled:
            kernels = (
                ", compiled kernels (batched)"
                if self.batch_kernel
                else ", compiled kernels"
            )
        if self.enum_kernel:
            kernels += ", compiled enumeration"
        if self.codegen:
            kernels += ", generated source"
        return (
            f"{self.strategy}: {self.reason} "
            f"[preprocess {self.preprocessing_time}, update {self.update_time}, "
            f"delay {self.enumeration_delay}{kernels}]"
        )


def _is_triangle_shaped(query: Query) -> bool:
    """Three binary atoms forming a cycle over three variables."""
    if len(query.atoms) != 3 or query.head:
        return False
    if any(len(a.variables) != 2 for a in query.atoms):
        return False
    variables = query.variables()
    if len(variables) != 3:
        return False
    counts = {v: 0 for v in variables}
    for atom in query.atoms:
        if len(set(atom.variables)) != 2:
            return False
        for var in atom.variables:
            counts[var] += 1
    return all(count == 2 for count in counts.values())


#: Strategies whose engine is a plain view tree and thus shardable.
_SHARDABLE_STRATEGIES = frozenset({"viewtree", "viewtree-hierarchical"})


#: Strategies whose engine supports the compiled delta-plan fast path.
_COMPILABLE_STRATEGIES = frozenset(
    {"viewtree", "viewtree-hierarchical", "sharded-viewtree"}
)


#: Strategies whose engine enumerates through a compiled EnumPlan (the
#: CQAP engine compiles one plan per fracture component).
_ENUM_COMPILABLE_STRATEGIES = frozenset(
    {"viewtree", "viewtree-hierarchical", "sharded-viewtree", "cqap"}
)


def plan_maintenance(
    query: Query,
    fds: Iterable[FunctionalDependency] = (),
    insert_only: bool = False,
    shards: int = 1,
    compile_plans: bool = True,
    compile_enum: bool = True,
    codegen: bool = True,
) -> Plan:
    """Choose a maintenance plan following the Section 6 decision ladder.

    With ``shards > 1`` the planner upgrades a (plain) view-tree plan to
    ``sharded-viewtree``: view-tree maintenance is key-partitioned group
    work, so hash shards of the join key maintain disjoint view slices
    in parallel.  Strategies with cross-shard state (IVM^eps partitions,
    CQAP fractures, delta materializations) keep their unsharded plan.

    ``compile_plans`` marks view-tree plans to run single-tuple updates
    through pre-compiled delta kernels (``repro.viewtree.compile``);
    pass ``False`` (the CLI's ``--no-compile``) to force the generic
    interpretation path.  ``compile_enum`` is its read-side twin: it
    marks plans whose engine enumerates through a compiled EnumPlan
    (``repro.viewtree.enumplan``); pass ``False`` (the CLI's
    ``--no-compile-enum``) for the generic recursive walk.

    ``codegen`` marks compiled plans to additionally exec-generate
    specialized source kernels (``repro.viewtree.codegen``); pass
    ``False`` (the CLI's ``--no-codegen``) to run the interpreted plans
    directly.  It has effect only where some plan compiles at all.
    """
    plan = _plan_unsharded(query, tuple(fds), insert_only)
    if shards > 1 and plan.strategy in _SHARDABLE_STRATEGIES:
        plan = Plan(
            "sharded-viewtree",
            f"{plan.reason}; hash-partitioned across {shards} shards",
            f"{plan.update_time} per shard",
            plan.enumeration_delay,
            plan.preprocessing_time,
        )
    if compile_plans and plan.strategy in _COMPILABLE_STRATEGIES:
        plan = replace(plan, compiled=True, batch_kernel=True)
    if compile_enum and plan.strategy in _ENUM_COMPILABLE_STRATEGIES:
        plan = replace(plan, enum_kernel=True)
    if codegen and (plan.compiled or plan.enum_kernel):
        plan = replace(plan, codegen=True)
    return plan


def _plan_unsharded(
    query: Query,
    fds: tuple[FunctionalDependency, ...],
    insert_only: bool,
) -> Plan:

    if query.input_variables:
        if is_tractable_cqap(query):
            return Plan(
                "cqap",
                "tractable CQAP: fracture is hierarchical, free- and "
                "input-dominant (Theorem 4.8)",
                "O(1)",
                "O(1)",
                "O(N)",
            )
        return Plan(
            "delta",
            "intractable CQAP: falling back to first-order delta queries",
            "O(N)",
            "O(1) after materialization",
            "O(N^w)",
        )

    if is_q_hierarchical(query):
        return Plan(
            "viewtree",
            "q-hierarchical query (Theorem 4.1)",
            "O(1)",
            "O(1)",
            "O(N)",
        )

    if fds and q_hierarchical_under_fds(query, fds):
        return Plan(
            "fd-viewtree",
            "Sigma-reduct is q-hierarchical under the given FDs "
            "(Theorem 4.11)",
            "O(1)",
            "O(1)",
            "O(N)",
        )

    if query.static_atoms and find_static_dynamic_order(query) is not None:
        return Plan(
            "static-dynamic",
            "tractable in the mixed static/dynamic setting (Section 4.5)",
            "O(1) per dynamic update",
            "O(1)",
            "poly(N) over the static part",
        )

    if insert_only and is_alpha_acyclic(query):
        return Plan(
            "insert-only",
            "alpha-acyclic under an insert-only stream (Section 4.6)",
            "amortized O(1)",
            "O(1)",
            "O(N)",
        )

    if _is_triangle_shaped(query):
        return Plan(
            "ivm-eps-triangle",
            "cyclic triangle count: worst-case optimal IVM^eps "
            "(Section 3.3, optimal by Theorem 3.4)",
            "amortized O(N^(1/2))",
            "O(1)",
            "O(N^(3/2))",
        )

    if is_hierarchical(query):
        return Plan(
            "viewtree-hierarchical",
            "hierarchical but not q-hierarchical: view-tree maintenance "
            "without the constant-delay guarantee",
            "O(N)",
            "O(N)",
            "O(N)",
        )

    return Plan(
        "delta",
        "no structural shortcut applies: classical first-order delta "
        "queries (Section 3.1)",
        "O(N^(w-1))",
        "O(1) after materialization",
        "O(N^w)",
    )
