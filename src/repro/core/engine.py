"""The unified IVM facade: register a query, feed updates, enumerate.

``IVMEngine`` hides the zoo of specialised engines behind one interface,
instantiating whichever the planner selects.  It is the public entry
point a downstream user should reach for first::

    from repro import Database, IVMEngine, parse_query

    db = Database()
    db.create("R", ["A", "B"])
    db.create("S", ["B"])
    engine = IVMEngine(parse_query("Q(A) = R(A, B) * S(B)"), db)
    engine.insert("R", 1, 2)
    engine.insert("S", 2)
    dict(engine.enumerate())   # {(1,): 1}
"""

from __future__ import annotations

from typing import Any, Iterator

from ..constraints.fds import FDEngine, FunctionalDependency
from ..cqap.engine import CQAPEngine
from ..data.database import Database
from ..data.update import Update
from ..delta.engine import DeltaQueryEngine
from ..insertonly.engine import InsertOnlyEngine
from ..ivme.triangle import TriangleCounter
from ..obs import Observable, share_stats
from ..query.ast import Query
from ..query.properties import is_q_hierarchical
from ..query.variable_order import search_order
from ..rings.lifting import LiftingMap
from ..shard.engine import ShardedEngine
from ..staticdyn.engine import StaticDynamicEngine
from ..viewtree.engine import ViewTreeEngine
from .planner import Plan, plan_maintenance


class IVMEngine(Observable):
    """Plan-and-dispatch facade over the library's maintenance engines.

    Observability: ``attach_stats()`` shares one
    :class:`~repro.obs.MaintenanceStats` recorder with the selected
    backend engine (and, transitively, its sub-engines and partitioned
    relations), so per-update latency, delta sizes, enumeration delay,
    and rebalance events are all captured regardless of the plan.  The
    facade itself records nothing — the backend's instrumented entry
    points do — which keeps facade dispatch out of the latency samples.
    """

    def __init__(
        self,
        query: Query,
        database: Database,
        fds: tuple[FunctionalDependency, ...] = (),
        insert_only: bool = False,
        lifting: LiftingMap | None = None,
        plan: Plan | None = None,
        shards: int = 1,
        shard_executor: str = "thread",
        shard_ipc: str = "delta",
        compile_plans: bool = True,
        compile_enum: bool = True,
        codegen: bool = True,
    ):
        self.query = query
        self.database = database
        self.plan = plan or plan_maintenance(
            query,
            fds,
            insert_only,
            shards=shards,
            compile_plans=compile_plans,
            compile_enum=compile_enum,
            codegen=codegen,
        )
        compile_plans = compile_plans and self.plan.compiled
        compile_enum = compile_enum and self.plan.enum_kernel
        codegen = codegen and self.plan.codegen
        strategy = self.plan.strategy

        if strategy in ("viewtree", "viewtree-hierarchical", "sharded-viewtree"):
            # q-hierarchical queries get their canonical (free-top) order;
            # merely-hierarchical ones need a searched free-top order so
            # that enumeration works (updates are then rightly costlier —
            # the Theorem 4.1 lower bound says they must be).
            order = None
            if query.head and not is_q_hierarchical(query):
                order = search_order(query, require_free_top=True)
            if strategy == "sharded-viewtree":
                self._engine = ShardedEngine(
                    query,
                    database,
                    shards=max(shards, 1),
                    order=order,
                    lifting=lifting,
                    executor=shard_executor,
                    ipc=shard_ipc,
                    compile_plans=compile_plans,
                    compile_enum=compile_enum,
                    codegen=codegen,
                )
            else:
                self._engine = ViewTreeEngine(
                    query,
                    database,
                    order,
                    lifting=lifting,
                    compile_plans=compile_plans,
                    compile_enum=compile_enum,
                    codegen=codegen,
                )
        elif strategy == "fd-viewtree":
            self._engine = FDEngine(query, fds, database, lifting=lifting)
        elif strategy == "static-dynamic":
            self._engine = StaticDynamicEngine(query, database, lifting=lifting)
        elif strategy == "cqap":
            self._engine = CQAPEngine(
                query,
                database,
                lifting=lifting,
                compile_enum=compile_enum,
                codegen=codegen,
            )
        elif strategy == "insert-only":
            self._engine = InsertOnlyEngine(query)
            for atom in query.atoms:
                for key in database[atom.relation].keys():
                    self._engine.insert(atom.relation, key)
        elif strategy == "ivm-eps-triangle":
            names = tuple(a.relation for a in query.atoms)
            self._engine = TriangleCounter(
                epsilon=0.5, relation_names=names, database=database
            )
        else:
            self._engine = DeltaQueryEngine(query, database, lifting, eager=True)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _propagate_stats(self, stats) -> None:
        share_stats(self._engine, stats)

    def apply(self, update: Update) -> None:
        engine = self._engine
        if isinstance(engine, TriangleCounter):
            engine.apply(update)
            self.database[update.relation].add(update.key, update.payload)
        elif isinstance(engine, InsertOnlyEngine):
            engine.apply(update)
            self.database[update.relation].add(update.key, update.payload)
        elif isinstance(engine, DeltaQueryEngine):
            engine.update(update)
        else:
            engine.apply(update)

    def apply_batch(self, batch) -> None:
        engine = self._engine
        if isinstance(
            engine,
            (ShardedEngine, ViewTreeEngine, CQAPEngine, StaticDynamicEngine, FDEngine),
        ):
            # Backends with a real batch path: the sharded coordinator
            # splits once and runs shards in parallel; the view-tree
            # family coalesces and runs the compiled batch kernel.
            engine.apply_batch(list(batch))
            return
        if isinstance(engine, DeltaQueryEngine):
            engine.update_batch(list(batch))
            return
        # TriangleCounter / InsertOnlyEngine need the facade's per-update
        # base bookkeeping (and IVM^eps's amortization accounting assumes
        # an uncoalesced stream), so they keep the per-update loop.
        for update in batch:
            self.apply(update)

    def insert(self, relation: str, *key, payload: Any = 1) -> None:
        self.apply(Update(relation, tuple(key), payload))

    def delete(self, relation: str, *key, payload: Any = 1) -> None:
        ring = self.database.ring
        self.apply(Update(relation, tuple(key), ring.neg(payload)))

    # ------------------------------------------------------------------
    # Output access
    # ------------------------------------------------------------------

    def enumerate(self) -> Iterator[tuple[tuple, Any]]:
        """Enumerate the output (full enumeration request)."""
        engine = self._engine
        if isinstance(engine, TriangleCounter):
            if engine.count:
                yield (), engine.count
            return
        if isinstance(engine, InsertOnlyEngine):
            for key in engine.enumerate():
                yield key, 1
            return
        yield from engine.enumerate()

    def answer(self, inputs) -> Iterator[tuple[tuple, Any]]:
        """CQAP access request (only for plans with input variables)."""
        if not isinstance(self._engine, CQAPEngine):
            raise TypeError(
                f"plan {self.plan.strategy!r} does not support access requests"
            )
        return self._engine.answer(inputs)

    def scalar(self) -> Any:
        """The payload of a Boolean query's output."""
        engine = self._engine
        if isinstance(engine, TriangleCounter):
            return engine.count
        if isinstance(engine, (ViewTreeEngine, StaticDynamicEngine, ShardedEngine)):
            return engine.scalar()
        if isinstance(engine, DeltaQueryEngine):
            return engine.scalar()
        raise TypeError(f"plan {self.plan.strategy!r} has no scalar output")

    def lookup(self, key: tuple) -> Any:
        """Payload of one output tuple (ring zero when absent).

        Backends with a point-lookup fast path (view-tree family,
        sharded) answer with O(1) guard probes; the rest fall back to a
        scan of ``enumerate()`` that stops at the first match.
        """
        key = tuple(key)
        head = self.query.head
        if not head:
            if key:
                raise ValueError(
                    f"lookup key {key!r} does not match empty head"
                )
            return self.scalar()
        if len(key) != len(head):
            raise ValueError(
                f"lookup key {key!r} does not match head {head!r}"
            )
        engine = self._engine
        backend_lookup = getattr(engine, "lookup", None)
        if backend_lookup is not None:
            return backend_lookup(key)
        ring = self.database.ring
        for found, payload in self.enumerate():
            if found == key:
                return payload
        return ring.zero

    # ------------------------------------------------------------------
    # Epoch snapshot reads (backends that support them)
    # ------------------------------------------------------------------

    @property
    def supports_snapshots(self) -> bool:
        """Whether the selected backend exposes epoch snapshot reads."""
        return bool(getattr(self._engine, "supports_snapshots", False))

    def _snapshot_backend(self):
        if not self.supports_snapshots:
            raise TypeError(
                f"plan {self.plan.strategy!r} does not support epoch "
                "snapshot reads"
            )
        return self._engine

    def publish_epoch(self):
        """Publish the current committed state as the readable epoch."""
        return self._snapshot_backend().publish_epoch()

    def enumerate_snapshot(self) -> Iterator[tuple[tuple, Any]]:
        """Enumerate the last published epoch (never blocks maintenance)."""
        return self._snapshot_backend().enumerate_snapshot()

    def scalar_snapshot(self) -> Any:
        """Boolean-query payload of the last published epoch."""
        return self._snapshot_backend().scalar_snapshot()

    def lookup_snapshot(self, key: tuple) -> Any:
        """Point lookup against the last published epoch."""
        key = tuple(key)
        head = self.query.head
        if not head:
            if key:
                raise ValueError(
                    f"lookup key {key!r} does not match empty head"
                )
            return self.scalar_snapshot()
        if len(key) != len(head):
            raise ValueError(
                f"lookup key {key!r} does not match head {head!r}"
            )
        return self._snapshot_backend().lookup_snapshot(key)

    # ------------------------------------------------------------------
    # Output change streams (backends that support them)
    # ------------------------------------------------------------------

    @property
    def supports_changes(self) -> bool:
        """Whether the backend emits per-epoch output change deltas."""
        backend = self._engine
        return bool(getattr(backend, "supports_changes", False))

    def _changes_backend(self):
        if not self.supports_changes:
            raise TypeError(
                f"plan {self.plan.strategy!r} does not support output "
                "change streams (needs epoch snapshots and a free-top "
                "variable order)"
            )
        return self._engine

    def track_changes(self) -> None:
        """Start emitting per-epoch output deltas (idempotent)."""
        self._changes_backend().track_changes()

    def changes_since(self, epoch: int):
        """The output delta from published ``epoch`` to the current one.

        Raises ``EpochGapError`` once ``epoch`` leaves the retained
        window — callers must fall back to a full drain.
        """
        return self._changes_backend().changes_since(epoch)

    def subscribe(self, ratio_threshold: float = 0.5):
        """A ``MaterializedView`` patched in O(δ) per published epoch."""
        return self._changes_backend().subscribe(
            ratio_threshold=ratio_threshold
        )

    @property
    def backend(self):
        """The underlying specialised engine (for advanced use)."""
        return self._engine
