"""Enumeration-delay profiles, measured between consecutive yields.

The paper's delay definition (Section 1) is a *maximum* over three gaps:
start-to-first, between consecutive tuples, and last-to-end.  These tests
instrument the generators with the operation counter and assert the
maximum gap — not just the average — stays flat as the database grows.
"""

import random

from repro.data import COUNTER, Database, Update
from repro.query import parse_query
from repro.viewtree import ViewTreeEngine


def delay_profile(iterator):
    """Ops consumed before the first yield, between yields, and after
    the last yield, using the global counter."""
    gaps = []
    COUNTER.reset()
    COUNTER.enabled = True
    try:
        last = 0
        for _ in iterator:
            now = COUNTER.total()
            gaps.append(now - last)
            last = now
        gaps.append(COUNTER.total() - last)  # the closing gap
    finally:
        COUNTER.enabled = False
    return gaps


def build_engine(n, seed=0):
    rng = random.Random(seed)
    db = Database()
    r = db.create("R", ("Y", "X"))
    s = db.create("S", ("Y", "Z"))
    for _ in range(n):
        r.insert(rng.randrange(max(2, n // 8)), rng.randrange(n))
        s.insert(rng.randrange(max(2, n // 8)), rng.randrange(n))
    return ViewTreeEngine(parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)"), db)


class TestConstantDelay:
    def test_max_gap_flat_for_q_hierarchical(self):
        maxima = []
        for n in (200, 800, 3200):
            engine = build_engine(n)
            gaps = delay_profile(engine.enumerate())
            assert len(gaps) > 10  # enumeration actually produced tuples
            maxima.append(max(gaps))
        assert maxima[-1] <= maxima[0] * 2 + 5

    def test_first_tuple_gap_constant(self):
        firsts = []
        for n in (200, 3200):
            engine = build_engine(n)
            gaps = delay_profile(engine.enumerate())
            firsts.append(gaps[0])
        assert firsts[-1] <= firsts[0] * 2 + 5

    def test_gap_profile_has_no_outliers(self):
        engine = build_engine(1000)
        gaps = delay_profile(engine.enumerate())
        inner = gaps[1:-1]
        assert inner
        assert max(inner) <= 12  # every step is a handful of lookups

    def test_prebound_enumeration_also_constant(self):
        engine = build_engine(1000, seed=3)
        some_y = next(iter(engine.enumerate()))[0][0]
        gaps = delay_profile(engine.enumerate(prebound={"Y": some_y}))
        assert max(gaps) <= 15


class TestDelayAfterUpdates:
    def test_delay_unchanged_by_update_history(self):
        """A long update history must not degrade enumeration (views stay
        calibrated; no tombstones accumulate)."""
        engine = build_engine(500, seed=5)
        rng = random.Random(6)
        inserted = []
        for _ in range(2000):
            if inserted and rng.random() < 0.5:
                relation, key = inserted.pop(rng.randrange(len(inserted)))
                engine.apply(Update(relation, key, -1))
            else:
                relation = rng.choice(["R", "S"])
                key = (rng.randrange(60), rng.randrange(500))
                engine.apply(Update(relation, key, 1))
                inserted.append((relation, key))
        gaps = delay_profile(engine.enumerate())
        assert max(gaps) <= 15
