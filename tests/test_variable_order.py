"""Variable orders: canonical construction, search, validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.query import (
    Atom,
    InvalidVariableOrder,
    Query,
    VarOrderNode,
    canonical_order,
    order_for,
    parse_query,
    search_order,
    validate_order,
)

FIG3 = parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)")
TRIANGLE = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
PATH3 = parse_query("Q(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)")


class TestCanonicalOrder:
    def test_fig3_structure(self):
        """Fig. 3's view tree: Y at the root, X and Z as children."""
        order = canonical_order(FIG3)
        assert len(order.roots) == 1
        root = order.roots[0]
        assert root.variable == "Y"
        assert sorted(c.variable for c in root.children) == ["X", "Z"]
        for child in root.children:
            assert child.dependency == ("Y",)
            assert len(child.atoms) == 1

    def test_dependency_sets(self):
        order = canonical_order(FIG3)
        assert order.node_of("Y").dependency == ()
        assert order.node_of("X").dependency == ("Y",)

    def test_free_top_for_q_hierarchical(self):
        assert canonical_order(FIG3).is_free_top()
        q2 = parse_query("Q(A,B,C) = R(A,B) * S(B,C)")
        assert canonical_order(q2).is_free_top()

    def test_not_free_top_when_projection_breaks_q(self):
        q = FIG3.with_head(("X",))
        assert not canonical_order(q).is_free_top()

    def test_non_hierarchical_rejected(self):
        with pytest.raises(InvalidVariableOrder):
            canonical_order(PATH3)

    def test_equal_atom_set_variables_form_chain(self):
        q = parse_query("Q(A, B) = R(A, B, C)")
        order = canonical_order(q)
        # A, B, C all occur in the single atom: one chain of three nodes.
        assert len(order.roots) == 1
        depth = 0
        node = order.roots[0]
        while node.children:
            assert len(node.children) == 1
            node = node.children[0]
            depth += 1
        assert depth == 2
        # Free variables come first in the chain.
        assert order.roots[0].variable in ("A", "B")

    def test_disconnected_components_give_forest(self):
        q = parse_query("Q(A, C) = R(A) * S(C)")
        order = canonical_order(q)
        assert len(order.roots) == 2

    def test_anchor_of(self):
        order = canonical_order(FIG3)
        atom_r = FIG3.atom_for_relation("R")
        assert order.anchor_of(atom_r).variable == "X"

    def test_path_to_root(self):
        order = canonical_order(FIG3)
        assert order.path_to_root("X") == ["X", "Y"]


class TestSearchOrder:
    def test_path_query_gets_valid_order(self):
        order = search_order(PATH3)
        assert order.is_free_top()
        assert {n.variable for n in order.walk()} == {"A", "B", "C", "D"}

    def test_triangle_gets_order_with_large_dependency(self):
        order = search_order(TRIANGLE)
        # Cyclic queries cannot avoid a dependency set of size 2.
        assert order.max_dependency_size() == 2

    def test_search_equals_canonical_quality_for_hierarchical(self):
        searched = search_order(FIG3)
        canonical = canonical_order(FIG3)
        assert searched.max_dependency_size() == canonical.max_dependency_size()

    def test_require_free_top(self):
        q = parse_query("Q(A) = R(A, B) * S(B)")
        order = search_order(q, require_free_top=True)
        assert order.is_free_top()
        assert order.roots[0].variable == "A"

    def test_order_for_dispatches(self):
        assert order_for(FIG3).roots[0].variable == "Y"
        assert order_for(PATH3) is not None

    def test_boolean_triangle_order_valid(self):
        order = search_order(TRIANGLE)
        # every atom anchored, all variables present
        anchored = [a for n in order.walk() for a in n.atoms]
        assert len(anchored) == 3


class TestValidation:
    def test_missing_variable(self):
        root = VarOrderNode("Y", atoms=[])
        with pytest.raises(InvalidVariableOrder):
            validate_order(FIG3, [root])

    def test_repeated_variable(self):
        a = VarOrderNode("Y")
        b = VarOrderNode("Y")
        a.children.append(b)
        with pytest.raises(InvalidVariableOrder):
            validate_order(FIG3, [a])

    def test_atom_off_path(self):
        # Put R(Y,X) under Z's branch: invalid.
        y = VarOrderNode("Y")
        x = VarOrderNode("X")
        z = VarOrderNode("Z", atoms=[FIG3.atom_for_relation("R"),
                                     FIG3.atom_for_relation("S")])
        y.children.extend([x, z])
        with pytest.raises(InvalidVariableOrder):
            validate_order(FIG3, [y])

    def test_atom_not_anchored(self):
        y = VarOrderNode("Y")
        x = VarOrderNode("X", atoms=[FIG3.atom_for_relation("R")])
        z = VarOrderNode("Z")
        y.children.extend([x, z])
        with pytest.raises(InvalidVariableOrder):
            validate_order(FIG3, [y])

    def test_render_contains_structure(self):
        text = canonical_order(FIG3).render()
        assert "Y" in text and "dep: Y" in text


@st.composite
def random_acyclic_query(draw):
    """A random path/star-shaped query (always admits a variable order)."""
    n_atoms = draw(st.integers(1, 4))
    shape = draw(st.sampled_from(["path", "star"]))
    atoms = []
    if shape == "path":
        for i in range(n_atoms):
            atoms.append(Atom(f"R{i}", (f"V{i}", f"V{i+1}")))
        variables = [f"V{i}" for i in range(n_atoms + 1)]
    else:
        for i in range(n_atoms):
            atoms.append(Atom(f"R{i}", ("V0", f"V{i+1}")))
        variables = ["V0"] + [f"V{i+1}" for i in range(n_atoms)]
    n_free = draw(st.integers(0, len(variables)))
    head = tuple(variables[:n_free])
    return Query("Qr", head, tuple(atoms))


class TestSearchOrderProperties:
    @given(random_acyclic_query())
    @settings(max_examples=60, deadline=None)
    def test_search_always_yields_valid_order(self, q):
        order = search_order(q)
        seen = {n.variable for n in order.walk()}
        assert seen == set(q.variables())
        anchored = [a for n in order.walk() for a in n.atoms]
        assert len(anchored) == len(q.atoms)

    @given(random_acyclic_query())
    @settings(max_examples=60, deadline=None)
    def test_require_free_top_is_respected(self, q):
        order = search_order(q, require_free_top=True)
        assert order.is_free_top()
