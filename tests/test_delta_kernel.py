"""Compiled delta kernels (repro.viewtree.compile).

The compiled fast path must be *semantically invisible*: for any valid
update stream, any ring, and any supported query shape, the compiled
engine's views, scalars, and enumerations are bit-identical to the
generic interpreted path's — which in turn is differential-tested against
naive recomputation.  Plus: compiled engines must survive pickling (the
process-pool shard executor ships them whole), the memory accounting
satellite, and the benchdiff regression gate.
"""

from __future__ import annotations

import bisect
import itertools
import json
import pickle
import random

import pytest

from repro.bench import Table, diff_records
from repro.bench import bench_record as _bench_record
from repro.bench.diff import benchdiff, column_direction, parse_number
from repro.data import Database, Update
from repro.naive import evaluate, evaluate_scalar
from repro.query import parse_query, search_order
from repro.rings import (
    B,
    CovarianceRing,
    LiftingMap,
    Z,
    identity_lifting,
    moment_lifting,
)
from repro.shard import ShardedEngine
from repro.viewtree import DeltaPlan, ViewTreeEngine, compile_delta_plans

from tests.conftest import valid_stream


def tree_nodes(engine):
    return [node for root in engine.roots for node in root.walk()]


def seeded_db(schemas, rng, rows=60, domain=8, ring=Z):
    db = Database(ring=ring)
    for name, schema in schemas:
        relation = db.create(name, schema)
        for _ in range(rows):
            key = tuple(rng.randrange(domain) for _ in schema)
            relation.add(key, ring.one)
    return db


def twin_engines(query, schemas, seed, order=None, lifting=None, ring=Z):
    """A compiled and a generic engine over identically-seeded databases."""
    compiled = ViewTreeEngine(
        query,
        seeded_db(schemas, random.Random(seed), ring=ring),
        order,
        lifting,
        compile_plans=True,
    )
    generic = ViewTreeEngine(
        query,
        seeded_db(schemas, random.Random(seed), ring=ring),
        order,
        lifting,
        compile_plans=False,
    )
    assert compiled.compiled and not generic.compiled
    return compiled, generic


class TestCompiledGenericEquivalence:
    QUERIES = [
        # q-hierarchical (Fig. 3): the Theorem 4.1 fast case.
        ("Q(Y, X, Z) = R(Y, X) * S(Y, Z)",
         [("R", ("Y", "X")), ("S", ("Y", "Z"))], False),
        # hierarchical but not q-hierarchical: searched free-top order.
        ("Q(A, C) = R(A, B) * S(B, C)",
         [("R", ("A", "B")), ("S", ("B", "C"))], True),
        # three-atom chain with a single free variable.
        ("Q(A) = R(A, B) * S(B, C) * T(C, D)",
         [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("C", "D"))], True),
    ]

    @pytest.mark.parametrize("text,schemas,searched", QUERIES)
    def test_inserts_and_deletes(self, text, schemas, searched):
        query = parse_query(text)
        order = search_order(query, require_free_top=True) if searched else None
        compiled, generic = twin_engines(query, schemas, seed=17, order=order)
        arities = {name: len(schema) for name, schema in schemas}
        for step, update in enumerate(
            valid_stream(random.Random(23), arities, 400)
        ):
            compiled.apply(update)
            generic.apply(update)
            if step % 50 == 49:
                assert (
                    compiled.output_relation().to_dict()
                    == generic.output_relation().to_dict()
                )
        # Bit-identical enumeration, and both agree with naive recompute.
        assert sorted(compiled.enumerate()) == sorted(generic.enumerate())
        assert compiled.output_relation() == evaluate(
            query, compiled.database
        )

    def test_every_intermediate_view_identical(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        compiled, generic = twin_engines(query, schemas, seed=5)
        for update in valid_stream(random.Random(9), {"R": 2, "S": 2}, 300):
            compiled.apply(update)
            generic.apply(update)
        for node_c, node_g in zip(tree_nodes(compiled), tree_nodes(generic)):
            assert node_c.variable == node_g.variable
            assert node_c.view.to_dict() == node_g.view.to_dict()
            if node_c.guard is not None:
                assert node_c.guard.to_dict() == node_g.guard.to_dict()

    def test_self_join(self):
        query = parse_query("Q(A, B, C) = E(A, B) * E(B, C)")
        order = search_order(query, require_free_top=True)
        schemas = [("E", ("A", "B"))]
        compiled, generic = twin_engines(query, schemas, seed=3, order=order)
        for update in valid_stream(random.Random(31), {"E": 2}, 300, domain=6):
            compiled.apply(update)
            generic.apply(update)
        assert sorted(compiled.enumerate()) == sorted(generic.enumerate())
        assert compiled.output_relation() == evaluate(query, compiled.database)

    def test_zipf_skew(self):
        """Hot keys drive large deltas through the INDEXED probe mode."""
        query = parse_query("Q(B, A) = R(B, A) * S(B)")
        schemas = [("R", ("B", "A")), ("S", ("B",))]
        compiled, generic = twin_engines(query, schemas, seed=41)
        rng = random.Random(77)
        domain, s = 40, 1.2
        weights = list(
            itertools.accumulate(1.0 / (k + 1) ** s for k in range(domain))
        )

        def value():
            return min(
                bisect.bisect_left(weights, rng.random() * weights[-1]),
                domain - 1,
            )

        live = {"R": [], "S": []}
        arity = {"R": 2, "S": 1}
        for _ in range(400):
            name = rng.choice(("R", "S"))
            keys = live[name]
            if keys and rng.random() < 0.3:
                update = Update(name, keys.pop(rng.randrange(len(keys))), -1)
            else:
                key = tuple(value() for _ in range(arity[name]))
                keys.append(key)
                update = Update(name, key, 1)
            compiled.apply(update)
            generic.apply(update)
        assert (
            compiled.output_relation().to_dict()
            == generic.output_relation().to_dict()
        )
        assert compiled.output_relation() == evaluate(query, compiled.database)

    def test_boolean_scalar_query(self):
        """Boolean (cyclic triangle) query under a searched order."""
        query = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
        schemas = [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("C", "A"))]
        order = search_order(query, prefer_free_top=False)
        compiled, generic = twin_engines(query, schemas, seed=19, order=order)
        arities = {"R": 2, "S": 2, "T": 2}
        for update in valid_stream(random.Random(13), arities, 250):
            compiled.apply(update)
            generic.apply(update)
        assert compiled.scalar() == generic.scalar()
        assert compiled.scalar() == evaluate_scalar(query, compiled.database)

    def test_boolean_semiring_insert_only(self):
        """B has no additive inverse, so drive an insert-only stream."""
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        compiled, generic = twin_engines(
            query, schemas, seed=29, ring=B
        )
        rng = random.Random(37)
        for _ in range(200):
            name = rng.choice(("R", "S"))
            key = (rng.randrange(6), rng.randrange(6))
            compiled.apply(Update(name, key, True))
            generic.apply(Update(name, key, True))
        assert (
            compiled.output_relation().to_dict()
            == generic.output_relation().to_dict()
        )
        assert sorted(compiled.enumerate()) == sorted(generic.enumerate())

    def test_analytics_ring_with_lifting(self):
        """Covariance-ring aggregation with a non-trivial lifting.

        Values are small integers so the float arithmetic inside
        :class:`Moments` stays exact and bit-identity is well-defined.
        """
        ring = CovarianceRing()
        query = parse_query("Q(A) = R(A, V) * S(A)")
        lifting = LiftingMap(ring, {"V": moment_lifting("V")})
        db_c = Database(ring=ring)
        db_g = Database(ring=ring)
        for db in (db_c, db_g):
            db.create("R", ("A", "V"))
            db.create("S", ("A",))
        compiled = ViewTreeEngine(query, db_c, lifting=lifting)
        generic = ViewTreeEngine(
            query, db_g, lifting=lifting, compile_plans=False
        )
        rng = random.Random(59)
        live = []
        for _ in range(250):
            if rng.random() < 0.6:
                if live and rng.random() < 0.3:
                    key = live.pop(rng.randrange(len(live)))
                    update = Update("R", key, ring.neg(ring.one))
                else:
                    key = (rng.randrange(5), rng.randrange(1, 9))
                    live.append(key)
                    update = Update("R", key, ring.one)
            else:
                update = Update(
                    "S",
                    (rng.randrange(5),),
                    ring.one if rng.random() < 0.75 else ring.neg(ring.one),
                )
            compiled.apply(update)
            generic.apply(update)
        assert (
            compiled.output_relation().to_dict()
            == generic.output_relation().to_dict()
        )
        assert compiled.output_relation() == evaluate(query, db_c, lifting)

    def test_lifted_integer_aggregate(self):
        query = parse_query("Q(A) = R(A, V) * S(A)")
        lifting = LiftingMap(Z, {"V": identity_lifting(Z)})
        schemas = [("R", ("A", "V")), ("S", ("A",))]
        compiled, generic = twin_engines(
            query, schemas, seed=2, lifting=lifting
        )
        for update in valid_stream(
            random.Random(71), {"R": 2, "S": 1}, 300, domain=6
        ):
            compiled.apply(update)
            generic.apply(update)
        assert (
            compiled.output_relation().to_dict()
            == generic.output_relation().to_dict()
        )


class TestCompiledPlans:
    def test_plans_cover_all_anchors(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        engine, _ = twin_engines(query, schemas, seed=1)
        for name, anchors in engine._anchors.items():
            plans = engine._plans[name]
            assert len(plans) == len(anchors)
            for (atom, node, leaf), plan in zip(anchors, plans):
                assert isinstance(plan, DeltaPlan)
                assert plan.leaf is leaf
                assert plan.steps[0].view is node.view

    def test_recompile_matches(self):
        query = parse_query("Q(A) = R(A, B) * S(B, C) * T(C, D)")
        schemas = [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("C", "D"))]
        engine, _ = twin_engines(query, schemas, seed=8)
        again = compile_delta_plans(engine)
        assert set(again) == set(engine._plans)
        for name in again:
            assert [p.relation_name for p in again[name]] == [
                p.relation_name for p in engine._plans[name]
            ]

    def test_zero_payload_is_a_noop(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        engine, _ = twin_engines(query, schemas, seed=4)
        before = engine.output_relation().to_dict()
        plan = engine._plans["R"][0]
        plan.push((0, 0), 0)
        assert engine.output_relation().to_dict() == before


class TestCompiledPickling:
    def test_compiled_engine_pickles_and_keeps_working(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        engine, generic = twin_engines(query, schemas, seed=6)
        stream = valid_stream(random.Random(15), {"R": 2, "S": 2}, 150)
        for update in stream[:75]:
            engine.apply(update)
            generic.apply(update)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.compiled
        for update in stream[75:]:
            clone.apply(update)
            generic.apply(update)
        assert (
            clone.output_relation().to_dict()
            == generic.output_relation().to_dict()
        )

    def test_unpickled_plans_alias_the_tree(self):
        """The pickle memo must keep plan references aimed at the same
        Relation objects the view tree holds — otherwise the clone's
        kernels would propagate into orphaned copies."""
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        engine, _ = twin_engines(query, schemas, seed=7)
        clone = pickle.loads(pickle.dumps(engine))
        for name, anchors in clone._anchors.items():
            for (atom, node, leaf), plan in zip(anchors, clone._plans[name]):
                assert plan.leaf is leaf
                assert plan.steps[0].view is node.view
                root_step = plan.steps[-1]
                views = {id(n.view) for n in tree_nodes(clone)}
                assert id(root_step.view) in views

    def test_process_pool_shards_run_compiled(self):
        query = parse_query("Q(B, A) = R(B, A) * S(B)")
        schemas = [("R", ("B", "A")), ("S", ("B",))]
        db = seeded_db(schemas, random.Random(21), rows=15)
        batch = valid_stream(random.Random(5), {"R": 2, "S": 1}, 60)
        with ShardedEngine(
            query, db, shards=2, executor="process", compile_plans=True,
            ipc="pickle-engine",
        ) as engine:
            assert all(shard.compiled for shard in engine.engines)
            engine.apply_batch(batch)
            assert engine.output_relation() == evaluate(query, db)


class TestShardInvarianceWithCompilation:
    def test_sharded_compiled_matches_plain_generic(self):
        query = parse_query("Q(B, A) = R(B, A) * S(B)")
        schemas = [("R", ("B", "A")), ("S", ("B",))]
        plain = ViewTreeEngine(
            query,
            seeded_db(schemas, random.Random(47), rows=25),
            compile_plans=False,
        )
        db = seeded_db(schemas, random.Random(47), rows=25)
        with ShardedEngine(
            query, db, shards=3, executor="serial", compile_plans=True
        ) as sharded:
            for update in valid_stream(random.Random(53), {"R": 2, "S": 1}, 200):
                plain.apply(update)
                sharded.apply(update)
            assert dict(sharded.enumerate()) == dict(plain.enumerate())
            assert (
                sharded.output_relation().to_dict()
                == plain.output_relation().to_dict()
            )


class TestMemoryAccounting:
    def _run(self, interval=8, updates=100):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        engine = ViewTreeEngine(
            query, seeded_db(schemas, random.Random(11), rows=30)
        )
        engine.view_sample_interval = interval
        stats = engine.attach_stats()
        for update in valid_stream(random.Random(43), {"R": 2, "S": 2}, updates):
            engine.apply(update)
        return engine, stats

    def test_periodic_sampling(self):
        engine, stats = self._run(interval=8, updates=100)
        assert stats.view_size.count == 100 // 8
        assert stats.view_size.maximum >= stats.view_size.mean > 0

    def test_per_view_breakdown(self):
        engine, stats = self._run()
        assert any(label.startswith("V_") for label in stats.view_sizes)
        before = stats.view_size.count
        engine.sample_view_sizes()
        assert stats.view_size.count == before + 1

    def test_json_export_carries_memory(self):
        _, stats = self._run()
        payload = stats.to_dict()
        memory = payload["memory"]
        assert memory["total_view_size"]["count"] == stats.view_size.count
        assert memory["total_view_size"]["max"] == stats.view_size.maximum
        assert set(memory["view_sizes"]) == set(stats.view_sizes)

    def test_render_mentions_view_size(self):
        _, stats = self._run()
        assert "view size" in stats.render()


def _record(rows, columns=("configuration", "uniform upd/s"), name="t"):
    table = Table("throughput", list(columns))
    for row in rows:
        table.add(*row)
    return _bench_record(name, table)


class TestBenchdiff:
    def test_identity_has_no_regressions(self):
        record = _record([("plain", "35,156"), ("sharded", "29,628")])
        findings = diff_records(record, record)
        assert len(findings) == 2
        assert not any(f.regressed for f in findings)

    def test_throughput_drop_beyond_band_regresses(self):
        old = _record([("plain", "40,000")])
        new = _record([("plain", "30,000")])
        findings = diff_records(old, new, band=0.2)
        assert [f.regressed for f in findings] == [True]
        # a generous band tolerates the same drop
        assert not diff_records(old, new, band=0.3)[0].regressed

    def test_improvement_never_regresses(self):
        old = _record([("plain", "10,000")])
        new = _record([("plain", "90,000")])
        assert not diff_records(old, new)[0].regressed

    def test_lower_is_better_columns(self):
        columns = ("case", "total ops")
        old = _record([("x", 100)], columns=columns)
        new = _record([("x", 150)], columns=columns)
        assert diff_records(old, new, band=0.2)[0].regressed
        assert not diff_records(new, old, band=0.2)[0].regressed

    def test_row_and_table_matching_is_by_label(self):
        old = _record([("a", "10"), ("b", "20")])
        new = _record([("b", "20"), ("a", "10"), ("c", "5")])
        findings = diff_records(old, new)
        assert {f.row for f in findings} == {"a", "b"}
        assert not any(f.regressed for f in findings)

    def test_compound_row_labels(self):
        """Rows sharing a first cell (query × workload tables) must match
        on the full non-metric label tuple, not just column 0."""
        columns = ("query", "workload", "generic upd/s")
        old = _record(
            [("q-hier", "uniform", "10,000"), ("q-hier", "zipf", "2,000")],
            columns=columns,
        )
        # Same data, rows reordered: nothing regresses.
        new = _record(
            [("q-hier", "zipf", "2,000"), ("q-hier", "uniform", "10,000")],
            columns=columns,
        )
        findings = diff_records(old, new)
        assert len(findings) == 2
        assert not any(f.regressed for f in findings)
        # Only the zipf row drops: exactly one regression, on that row.
        new = _record(
            [("q-hier", "uniform", "10,000"), ("q-hier", "zipf", "1,000")],
            columns=columns,
        )
        regressed = [f for f in diff_records(old, new) if f.regressed]
        assert [f.row for f in regressed] == ["q-hier / zipf"]

    def test_parse_number_formats(self):
        assert parse_number("12,345") == 12345
        assert parse_number("3.2x") == 3.2
        assert parse_number("+15%") == 15
        assert parse_number(7) == 7.0
        assert parse_number("n/a") is None
        assert parse_number(None) is None

    def test_column_directions(self):
        assert column_direction("uniform upd/s") == "higher"
        assert column_direction("speedup") == "higher"
        assert column_direction("total ops") == "lower"
        assert column_direction("seconds") == "lower"
        assert column_direction("configuration") is None

    def test_cli_exit_codes(self, tmp_path, capsys):
        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(json.dumps(_record([("plain", "40,000")])))
        new_path.write_text(json.dumps(_record([("plain", "10,000")])))
        from repro.cli import main

        assert main(["benchdiff", str(old_path), str(old_path)]) == 0
        assert main(["benchdiff", str(old_path), str(new_path)]) == 1
        assert (
            main(["benchdiff", str(old_path), str(new_path), "--band", "0.9"])
            == 0
        )
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError):
            benchdiff(str(bad), str(bad))
