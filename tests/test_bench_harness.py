"""The benchmark harness utilities themselves."""

import math

import pytest

from repro.bench import Table, growth_exponent, run_throughput, time_call


class TestGrowthExponent:
    def test_linear(self):
        xs = [100, 200, 400]
        ys = [10, 20, 40]
        assert growth_exponent(xs, ys) == pytest.approx(1.0)

    def test_sqrt(self):
        xs = [100, 400, 1600]
        ys = [10, 20, 40]
        assert growth_exponent(xs, ys) == pytest.approx(0.5)

    def test_constant(self):
        assert growth_exponent([10, 100, 1000], [5, 5, 5]) == pytest.approx(0.0)

    def test_degenerate(self):
        assert math.isnan(growth_exponent([1], [1]))
        assert math.isnan(growth_exponent([], []))
        # Zero values are skipped rather than crashing the log.
        assert growth_exponent([0, 10, 100], [0, 5, 5]) == pytest.approx(0.0)


class TestTable:
    def test_render(self):
        table = Table("Title", ["a", "b"])
        table.add(1, 2.5)
        table.add("x", 0.00001)
        text = table.render()
        assert "Title" in text
        assert "2.500" in text
        assert "1e-05" in text

    def test_alignment(self):
        table = Table("T", ["col"])
        table.add("longvalue")
        lines = table.render().splitlines()
        header_line = lines[2]
        assert header_line.startswith("col")


class TestRunThroughput:
    def test_counts_and_enumerations(self):
        applied = []
        outputs = [1, 2, 3]
        result = run_throughput(
            "s",
            applied.append,
            lambda: outputs,
            list(range(10)),
            batch_size=2,
            enum_interval=2,
        )
        assert result.updates == 10
        assert len(applied) == 10
        assert result.enumerations == 2  # 5 batches, every 2nd
        assert result.tuples_enumerated == 6
        assert result.throughput > 0

    def test_no_enumeration(self):
        result = run_throughput(
            "s", lambda u: None, lambda: [], list(range(6)), 2, 0
        )
        assert result.enumerations == 0

    def test_time_budget_stops_early(self):
        import time

        def slow_update(_):
            time.sleep(0.005)

        result = run_throughput(
            "s", slow_update, lambda: [], list(range(1000)), 1, 0,
            time_budget=0.05,
        )
        assert result.updates < 1000

    def test_time_call(self):
        seconds, value = time_call(lambda: 42)
        assert value == 42
        assert seconds >= 0
