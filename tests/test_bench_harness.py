"""The benchmark harness utilities themselves."""

import json
import math

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    Table,
    ThroughputResult,
    growth_exponent,
    run_throughput,
    time_call,
    write_bench_json,
)
from repro.bench import bench_record as make_bench_record


class TestGrowthExponent:
    def test_linear(self):
        xs = [100, 200, 400]
        ys = [10, 20, 40]
        assert growth_exponent(xs, ys) == pytest.approx(1.0)

    def test_sqrt(self):
        xs = [100, 400, 1600]
        ys = [10, 20, 40]
        assert growth_exponent(xs, ys) == pytest.approx(0.5)

    def test_constant(self):
        assert growth_exponent([10, 100, 1000], [5, 5, 5]) == pytest.approx(0.0)

    def test_degenerate(self):
        assert math.isnan(growth_exponent([1], [1]))
        assert math.isnan(growth_exponent([], []))
        # Zero values are skipped rather than crashing the log.
        assert growth_exponent([0, 10, 100], [0, 5, 5]) == pytest.approx(0.0)


class TestTable:
    def test_render(self):
        table = Table("Title", ["a", "b"])
        table.add(1, 2.5)
        table.add("x", 0.00001)
        text = table.render()
        assert "Title" in text
        assert "2.500" in text
        assert "1e-05" in text

    def test_alignment(self):
        table = Table("T", ["col"])
        table.add("longvalue")
        lines = table.render().splitlines()
        header_line = lines[2]
        assert header_line.startswith("col")


class TestRunThroughput:
    def test_counts_and_enumerations(self):
        applied = []
        outputs = [1, 2, 3]
        result = run_throughput(
            "s",
            applied.append,
            lambda: outputs,
            list(range(10)),
            batch_size=2,
            enum_interval=2,
        )
        assert result.updates == 10
        assert len(applied) == 10
        assert result.enumerations == 2  # 5 batches, every 2nd
        assert result.tuples_enumerated == 6
        assert result.throughput > 0

    def test_no_enumeration(self):
        result = run_throughput(
            "s", lambda u: None, lambda: [], list(range(6)), 2, 0
        )
        assert result.enumerations == 0

    def test_time_budget_stops_early(self):
        import time

        def slow_update(_):
            time.sleep(0.005)

        result = run_throughput(
            "s", slow_update, lambda: [], list(range(1000)), 1, 0,
            time_budget=0.05,
        )
        assert result.updates < 1000

    def test_time_budget_checked_before_enumeration(self):
        # Regression: the budget used to be checked only *after* a full
        # enumeration pass, so a slow enumerate_all ran even with the
        # budget already exhausted.
        import time

        enumerations = []

        def slow_update(_):
            time.sleep(0.02)

        def enumerate_all():
            enumerations.append(1)
            return []

        result = run_throughput(
            "s", slow_update, enumerate_all, list(range(10)), 1, 1,
            time_budget=0.01,
        )
        # The first batch alone exceeds the budget, so no enumeration
        # may start.
        assert enumerations == []
        assert result.enumerations == 0
        assert result.updates == 1

    def test_zero_duration_throughput_is_finite(self):
        # Regression: zero-duration runs used to report inf.
        result = ThroughputResult("s", updates=10, enumerations=0, seconds=0.0)
        assert result.throughput == 0.0
        assert math.isfinite(result.throughput)
        empty = ThroughputResult("s", updates=0, enumerations=0, seconds=0.0)
        assert empty.throughput == 0.0

    def test_stats_recording(self):
        from repro.obs import MaintenanceStats

        stats = MaintenanceStats("bench")
        result = run_throughput(
            "s", lambda u: None, lambda: [1, 2], list(range(10)), 2, 2,
            stats=stats,
        )
        assert result.updates == 10
        assert stats.updates == 10
        assert stats.update_latency.count == 10
        assert stats.enumerations == result.enumerations
        assert stats.tuples_enumerated == result.tuples_enumerated

    def test_time_call(self):
        seconds, value = time_call(lambda: 42)
        assert value == 42
        assert seconds >= 0


class TestBenchJson:
    def _table(self):
        table = Table("T", ["N", "ops"])
        table.add(100, 12.5)
        table.add(200, 25.0)
        return table

    def test_round_trip(self, tmp_path):
        path = write_bench_json(str(tmp_path), "demo", self._table())
        assert path.endswith("BENCH_demo.json")
        with open(path) as handle:
            data = json.load(handle)
        assert data["schema"] == BENCH_SCHEMA
        assert data["name"] == "demo"
        assert list(data["series"].keys()) == ["N", "ops"]
        assert data["series"]["N"] == [100, 200]
        assert data["series"]["ops"] == [12.5, 25.0]
        assert data["tables"][0]["title"] == "T"
        assert data["tables"][0]["rows"] == [[100, 12.5], [200, 25.0]]

    def test_non_json_cells_serialized_via_str(self, tmp_path):
        table = Table("T", ["key", "value"])
        table.add((1, 2), complex(1, 2))  # not JSON-native
        path = write_bench_json(str(tmp_path), "weird", table)
        with open(path) as handle:
            data = json.load(handle)
        # tuples become JSON arrays; anything else falls back to str()
        assert data["tables"][0]["rows"] == [[[1, 2], "(1+2j)"]]

    def test_stats_and_meta_ride_along(self, tmp_path):
        from repro.obs import MaintenanceStats

        stats = MaintenanceStats("engine-x")
        stats.record_update(0.001)
        path = write_bench_json(
            str(tmp_path), "s", self._table(), stats=stats,
            meta={"scale": 10},
        )
        with open(path) as handle:
            data = json.load(handle)
        assert data["meta"] == {"scale": 10}
        assert data["stats"]["engine"] == "engine-x"
        assert data["stats"]["updates"] == 1

    def test_multiple_tables(self):
        record = make_bench_record("m", [self._table(), self._table()])
        assert len(record["tables"]) == 2
        assert record["series"] == record["tables"][0]["series"]
