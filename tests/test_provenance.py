"""Provenance polynomials (the K-relations backdrop of Section 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Database
from repro.insertonly import InsertOnlyEngine
from repro.naive import evaluate
from repro.query import parse_query
from repro.rings import PROVENANCE, Polynomial


class TestPolynomial:
    def test_variable_and_str(self):
        p = Polynomial.variable("r1")
        assert str(p) == "r1"

    def test_constants(self):
        assert str(Polynomial.constant(0)) == "0"
        assert str(Polynomial.constant(3)) == "3*1"
        with pytest.raises(ValueError):
            Polynomial.constant(-1)

    def test_addition_merges_monomials(self):
        r = Polynomial.variable("r")
        two_r = PROVENANCE.add(r, r)
        assert two_r.coefficient({"r": 1}) == 2

    def test_multiplication_builds_monomials(self):
        r = Polynomial.variable("r")
        s = Polynomial.variable("s")
        rs = PROVENANCE.mul(r, s)
        assert rs.coefficient({"r": 1, "s": 1}) == 1
        assert str(rs) == "r*s"

    def test_squares(self):
        r = Polynomial.variable("r")
        r2 = PROVENANCE.mul(r, r)
        assert str(r2) == "r^2"
        assert r2.degree() == 2

    def test_distribution(self):
        r, s, t = (Polynomial.variable(x) for x in "rst")
        left = PROVENANCE.mul(r, PROVENANCE.add(s, t))
        right = PROVENANCE.add(PROVENANCE.mul(r, s), PROVENANCE.mul(r, t))
        assert left == right

    def test_evaluate_recovers_counts(self):
        r, s = Polynomial.variable("r"), Polynomial.variable("s")
        poly = PROVENANCE.add(PROVENANCE.mul(r, s), PROVENANCE.mul(r, r))
        # r has multiplicity 2, s multiplicity 3: rs + r^2 = 6 + 4.
        assert poly.evaluate({"r": 2, "s": 3}) == 10

    def test_evaluate_hypothetical_deletion(self):
        r, s = Polynomial.variable("r"), Polynomial.variable("s")
        poly = PROVENANCE.mul(r, s)
        assert poly.evaluate({"r": 1, "s": 1}) == 1
        assert poly.evaluate({"r": 1, "s": 0}) == 0  # deleting s kills it

    def test_variables(self):
        r, s = Polynomial.variable("r"), Polynomial.variable("s")
        assert PROVENANCE.mul(r, s).variables() == {"r", "s"}

    @given(st.lists(st.sampled_from("abc"), min_size=1, max_size=4))
    @settings(max_examples=40)
    def test_product_degree_is_length(self, names):
        poly = PROVENANCE.one
        for name in names:
            poly = PROVENANCE.mul(poly, Polynomial.variable(name))
        assert poly.degree() == len(names)


class TestProvenanceQueries:
    def test_join_lineage(self):
        db = Database(ring=PROVENANCE)
        r = db.create("R", ("A", "B"))
        s = db.create("S", ("B", "C"))
        r.add((1, 2), Polynomial.variable("r1"))
        r.add((3, 2), Polynomial.variable("r2"))
        s.add((2, 4), Polynomial.variable("s1"))
        q = parse_query("Q(A, C) = R(A,B) * S(B,C)")
        out = evaluate(q, db)
        assert str(out.get((1, 4))) == "r1*s1"
        assert str(out.get((3, 4))) == "r2*s1"

    def test_projection_unions_derivations(self):
        db = Database(ring=PROVENANCE)
        r = db.create("R", ("A", "B"))
        r.add((1, 10), Polynomial.variable("x"))
        r.add((1, 20), Polynomial.variable("y"))
        q = parse_query("Q(A) = R(A, B)")
        out = evaluate(q, db)
        poly = out.get((1,))
        assert poly.coefficient({"x": 1}) == 1
        assert poly.coefficient({"y": 1}) == 1

    def test_why_provenance_of_triangle(self):
        db = Database(ring=PROVENANCE)
        names = {}
        for rel, keys in (
            ("R", [(1, 2)]),
            ("S", [(2, 3)]),
            ("T", [(3, 1)]),
        ):
            relation = db.create(rel, ("X", "Y"))
            for key in keys:
                identifier = f"{rel}{key}"
                relation.add(key, Polynomial.variable(identifier))
                names[rel] = identifier
        q = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
        out = evaluate(q, db)
        poly = out.get(())
        assert poly.degree() == 3
        assert poly.variables() == set(names.values())

    def test_insert_only_semiring_compatibility(self):
        # The insert-only engine is payload-agnostic (set semantics);
        # provenance-aware evaluation handles lineage on the side.
        q = parse_query("Q(A,B,C) = R(A,B) * S(B,C)")
        engine = InsertOnlyEngine(q)
        engine.insert("R", (1, 2))
        engine.insert("S", (2, 3))
        assert list(engine.enumerate()) == [(1, 2, 3)]
