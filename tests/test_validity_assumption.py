"""The validity assumption (Section 2), exercised from both sides.

The paper assumes update batches are *valid*: they map databases with
all-positive multiplicities to databases with all-positive
multiplicities.  These tests pin down exactly what the library promises:

* mid-batch negative multiplicities are fine — engines stay correct once
  the batch completes (commutativity);
* scalar/aggregate results are correct even for invalid final states;
* factorized *enumeration* over an invalid final state may legitimately
  skip cancelled branches — the documented limitation.
"""

from repro.data import Database, Update, permuted
from repro.delta import DeltaQueryEngine
from repro.naive import evaluate, evaluate_scalar
from repro.query import parse_query
from repro.viewtree import ViewTreeEngine

FIG3 = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")


def fresh_db():
    db = Database()
    db.create("R", ("Y", "X"))
    db.create("S", ("Y", "Z"))
    return db


class TestMidBatchInconsistency:
    def test_out_of_order_delete_then_insert(self):
        """A delete arriving before its insert leaves a transient -1 and
        resolves to the correct state."""
        db = fresh_db()
        engine = ViewTreeEngine(FIG3, db)
        engine.apply(Update("R", (1, 2), -1))  # not inserted yet!
        assert db["R"].get((1, 2)) == -1
        engine.apply(Update("R", (1, 2), 1))
        assert len(db["R"]) == 0
        assert list(engine.enumerate()) == []

    def test_any_permutation_converges(self, rng):
        batch = [
            Update("R", (1, 2), 1),
            Update("S", (1, 3), 1),
            Update("R", (1, 2), -1),
            Update("R", (1, 4), 1),
            Update("S", (1, 3), -1),
            Update("S", (1, 5), 1),
        ]
        reference = None
        for seed in range(6):
            db = fresh_db()
            engine = ViewTreeEngine(FIG3, db)
            for update in permuted(batch, seed):
                engine.apply(update)
            result = engine.output_relation().to_dict()
            if reference is None:
                reference = result
            assert result == reference
        assert reference == {(1, 4, 5): 1}


class TestInvalidFinalStates:
    def test_aggregates_still_correct(self):
        """Scalar maintenance is ring arithmetic: negative multiplicities
        are handled exactly (no validity needed)."""
        q = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
        db = Database()
        for name in ("R", "S", "T"):
            db.create(name, ("X", "Y"))
        engine = DeltaQueryEngine(q, db)
        engine.update(Update("R", (1, 2), -3))  # permanently negative
        engine.update(Update("S", (2, 3), 2))
        engine.update(Update("T", (3, 1), 1))
        assert engine.scalar() == -6 == evaluate_scalar(q, db)

    def test_factorized_enumeration_documented_limitation(self):
        """With cancel-to-zero aggregates, the factorized walk skips
        branches whose individual outputs are non-zero.  This is the
        documented boundary of the Section 2 validity assumption — the
        test asserts the behaviour so a future change is noticed."""
        db = fresh_db()
        engine = ViewTreeEngine(FIG3, db)
        engine.apply(Update("S", (1, 7), 1))
        engine.apply(Update("S", (1, 8), -1))  # invalid: negative tuple
        engine.apply(Update("R", (1, 2), 1))
        # V_Z(1) = 1 + (-1) = 0, so the y=1 branch is pruned ...
        assert dict(engine.enumerate()) == {}
        # ... although the naive evaluator sees two non-zero outputs.
        naive = evaluate(FIG3, db).to_dict()
        assert naive == {(1, 2, 7): 1, (1, 2, 8): -1}

    def test_flat_representations_not_affected(self):
        """The list representation has no such caveat: the delta engine's
        materialized output is exact even on invalid states."""
        db = fresh_db()
        engine = DeltaQueryEngine(FIG3, db)
        engine.update(Update("S", (1, 7), 1))
        engine.update(Update("S", (1, 8), -1))
        engine.update(Update("R", (1, 2), 1))
        assert engine.result().to_dict() == {(1, 2, 7): 1, (1, 2, 8): -1}
