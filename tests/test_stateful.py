"""Stateful property-based tests (hypothesis state machines).

Long random interleavings of operations against reference models:

* :class:`RelationMachine` — Relation + GroupIndex vs a plain dict;
* :class:`TriangleMachine` — TriangleCounter vs naive recount;
* :class:`ViewTreeMachine` — ViewTreeEngine vs the naive evaluator,
  with validity-preserving updates.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.data import Database, Relation, Update
from repro.ivme import TriangleCounter
from repro.naive import evaluate, evaluate_scalar
from repro.query import parse_query
from repro.viewtree import ViewTreeEngine

KEYS = st.tuples(st.integers(0, 3), st.integers(0, 3))


class RelationMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.relation = Relation("R", ("A", "B"))
        self.relation.index_on(("A",))
        self.model: dict[tuple, int] = {}

    @rule(key=KEYS, payload=st.integers(-3, 3))
    def add(self, key, payload):
        self.relation.add(key, payload)
        value = self.model.get(key, 0) + payload
        if value:
            self.model[key] = value
        else:
            self.model.pop(key, None)

    @rule(key=KEYS, payload=st.integers(-3, 3))
    def set(self, key, payload):
        self.relation.set(key, payload)
        if payload:
            self.model[key] = payload
        else:
            self.model.pop(key, None)

    @invariant()
    def data_matches(self):
        assert self.relation.to_dict() == self.model

    @invariant()
    def index_matches(self):
        for a in range(4):
            expected = sorted(k for k in self.model if k[0] == a)
            assert sorted(self.relation.group(("A",), (a,))) == expected


class TriangleMachine(RuleBasedStateMachine):
    TRIANGLE = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")

    def __init__(self):
        super().__init__()
        self.counter = TriangleCounter(epsilon=0.5)
        self.db = Database()
        for name in ("R", "S", "T"):
            self.db.create(name, ("X", "Y"))

    @rule(
        relation=st.sampled_from(["R", "S", "T"]),
        key=KEYS,
        payload=st.integers(-2, 2).filter(bool),
    )
    def update(self, relation, key, payload):
        self.counter.apply(Update(relation, key, payload))
        self.db[relation].add(key, payload)

    @rule()
    def rebalance(self):
        self.counter.rebalance()

    @invariant()
    def count_matches(self):
        assert self.counter.count == evaluate_scalar(self.TRIANGLE, self.db)


class ViewTreeMachine(RuleBasedStateMachine):
    QUERY = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")

    def __init__(self):
        super().__init__()
        self.db = Database()
        self.db.create("R", ("Y", "X"))
        self.db.create("S", ("Y", "Z"))
        self.engine = ViewTreeEngine(self.QUERY, self.db)
        self.live: dict[tuple[str, tuple], int] = {}

    @rule(relation=st.sampled_from(["R", "S"]), key=KEYS)
    def insert(self, relation, key):
        self.engine.apply(Update(relation, key, 1))
        self.live[(relation, key)] = self.live.get((relation, key), 0) + 1

    @precondition(lambda self: bool(self.live))
    @rule(data=st.data())
    def delete_existing(self, data):
        relation, key = data.draw(
            st.sampled_from(sorted(self.live, key=repr))
        )
        self.engine.apply(Update(relation, key, -1))
        self.live[(relation, key)] -= 1
        if not self.live[(relation, key)]:
            del self.live[(relation, key)]

    @invariant()
    def output_matches_naive(self):
        assert self.engine.output_relation() == evaluate(self.QUERY, self.db)


TestRelationMachine = RelationMachine.TestCase
TestRelationMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestTriangleMachine = TriangleMachine.TestCase
TestTriangleMachine.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
TestViewTreeMachine = ViewTreeMachine.TestCase
TestViewTreeMachine.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
