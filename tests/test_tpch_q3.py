"""TPC-H Q3 end-to-end: generator invariants and FD-engine correctness."""

import random

import pytest

from repro.constraints import FDEngine
from repro.data import Update
from repro.delta import DeltaQueryEngine
from repro.naive import evaluate
from repro.workloads.tpch import tpch_q3_database, tpch_queries

Q3 = next(q for q in tpch_queries() if q.name == "Q3")


class TestGenerator:
    def test_fds_hold_by_construction(self):
        db = tpch_q3_database(customers=20, seed=1)
        seen: dict[int, tuple] = {}
        for ok, ck, odate in db["O"].keys():
            assert seen.setdefault(ok, (ck, odate)) == (ck, odate)

    def test_referential_integrity(self):
        db = tpch_q3_database(customers=15, seed=2)
        customer_keys = {key[0] for key in db["C"].keys()}
        order_keys = {key[0] for key in db["O"].keys()}
        for _ok, ck, _odate in db["O"].keys():
            assert ck in customer_keys
        for ok, _pk, _sk in db["L"].keys():
            assert ok in order_keys

    def test_sizes_scale(self):
        small = tpch_q3_database(customers=10)
        large = tpch_q3_database(customers=40)
        assert len(large) > 3 * len(small)


class TestQ3Maintenance:
    def test_fd_engine_matches_naive(self):
        db = tpch_q3_database(customers=25, seed=3)
        engine = FDEngine(Q3.query, Q3.fds, db)
        rng = random.Random(4)
        for _ in range(100):
            engine.apply(
                Update("L", (rng.randrange(125), rng.randrange(50), rng.randrange(50)), 1)
            )
        assert engine.output_relation() == evaluate(Q3.query, db)

    def test_customer_updates_match(self):
        db = tpch_q3_database(customers=15, seed=5)
        engine = FDEngine(Q3.query, Q3.fds, db)
        # Segment change for customer 3: delete then insert.
        engine.apply(Update("C", (3, "seg3"), -1))
        engine.apply(Update("C", (3, "segX"), 1))
        assert engine.output_relation() == evaluate(Q3.query, db)

    def test_agrees_with_delta_engine(self):
        db = tpch_q3_database(customers=12, seed=6)
        fd_engine = FDEngine(Q3.query, Q3.fds, db.copy())
        delta_engine = DeltaQueryEngine(Q3.query, db.copy())
        rng = random.Random(7)
        updates = [
            Update("L", (rng.randrange(60), rng.randrange(24), rng.randrange(50)), 1)
            for _ in range(50)
        ]
        for update in updates:
            fd_engine.apply(update)
            delta_engine.update(update)
        assert fd_engine.output_relation() == delta_engine.result()
