"""Facade-level fuzz: IVMEngine on random queries and valid streams."""

import random

from hypothesis import given, settings, strategies as st

from repro import Database, IVMEngine
from repro.naive import evaluate
from repro.query import Query
from tests.test_property_differential import acyclic_query, hierarchical_query


def _run_facade(query: Query, seed: int, length: int = 30):
    db = Database()
    arities = {}
    for atom in query.atoms:
        if atom.relation not in db:
            db.create(atom.relation, atom.variables)
        arities[atom.relation] = len(atom.variables)
    engine = IVMEngine(query, db)
    rng = random.Random(seed)
    live: dict[tuple, int] = {}
    for _ in range(length):
        name = rng.choice(list(arities))
        if live and rng.random() < 0.3:
            relation, key = rng.choice(sorted(live, key=repr))
            engine.delete(relation, *key)
            live[(relation, key)] -= 1
            if not live[(relation, key)]:
                del live[(relation, key)]
        else:
            key = tuple(rng.randrange(4) for _ in range(arities[name]))
            engine.insert(name, *key)
            live[(name, key)] = live.get((name, key), 0) + 1
    return engine, db


class TestFacadeFuzz:
    @given(hierarchical_query(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_hierarchical_queries(self, query, seed):
        engine, db = _run_facade(query, seed)
        got: dict[tuple, int] = {}
        for key, payload in engine.enumerate():
            got[key] = got.get(key, 0) + payload
        assert got == evaluate(query, db).to_dict()

    @given(acyclic_query(), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_acyclic_queries(self, query, seed):
        engine, db = _run_facade(query, seed, length=20)
        got: dict[tuple, int] = {}
        for key, payload in engine.enumerate():
            got[key] = got.get(key, 0) + payload
        assert got == evaluate(query, db).to_dict()

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_triangle_scalar(self, seed):
        from repro.query import parse_query

        query = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
        engine, db = _run_facade(query, seed, length=40)
        from repro.naive import evaluate_scalar

        assert engine.scalar() == evaluate_scalar(query, db)
