"""Delta enumeration (footnote 2): yield only the change to the output."""

from repro.data import Database, Update
from repro.delta import DeltaQueryEngine
from repro.query import parse_query

QUERY = parse_query("Q(A) = R(A, B) * S(B)")


def make_engine():
    db = Database()
    db.create("R", ("A", "B"))
    db.create("S", ("B",))
    return DeltaQueryEngine(QUERY, db), db


class TestDeltaEnumeration:
    def test_reports_net_change(self):
        engine, _ = make_engine()
        engine.update(Update("R", (1, 10), 1))
        engine.update(Update("S", (10,), 1))
        delta = dict(engine.enumerate_delta())
        assert delta == {(1,): 1}

    def test_resets_after_drain(self):
        engine, _ = make_engine()
        engine.update(Update("R", (1, 10), 1))
        engine.update(Update("S", (10,), 1))
        assert dict(engine.enumerate_delta()) == {(1,): 1}
        assert dict(engine.enumerate_delta()) == {}

    def test_retraction_is_negative(self):
        engine, _ = make_engine()
        engine.update(Update("R", (1, 10), 1))
        engine.update(Update("S", (10,), 1))
        list(engine.enumerate_delta())
        engine.update(Update("S", (10,), -1))
        assert dict(engine.enumerate_delta()) == {(1,): -1}

    def test_cancelling_changes_not_reported(self):
        engine, _ = make_engine()
        engine.update(Update("S", (10,), 1))
        engine.update(Update("R", (1, 10), 1))
        engine.update(Update("R", (1, 10), -1))
        assert dict(engine.enumerate_delta()) == {}

    def test_delta_accumulates_across_updates(self):
        engine, _ = make_engine()
        engine.update(Update("S", (10,), 1))
        for a in range(5):
            engine.update(Update("R", (a, 10), 1))
        delta = dict(engine.enumerate_delta())
        assert delta == {(a,): 1 for a in range(5)}

    def test_lazy_mode_delta(self):
        db = Database()
        db.create("R", ("A", "B"))
        db.create("S", ("B",))
        engine = DeltaQueryEngine(QUERY, db, eager=False)
        engine.update(Update("R", (1, 10), 1))
        engine.update(Update("S", (10,), 1))
        # refresh happens inside enumerate_delta
        assert dict(engine.enumerate_delta()) == {(1,): 1}

    def test_full_enumeration_unaffected(self):
        engine, _ = make_engine()
        engine.update(Update("R", (1, 10), 1))
        engine.update(Update("S", (10,), 1))
        list(engine.enumerate_delta())
        assert dict(engine.enumerate()) == {(1,): 1}
